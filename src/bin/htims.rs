//! `htims` — command-line front end for the HT-IMS simulation.
//!
//! ```text
//! htims print-config                       # emit the default experiment config as JSON
//! htims run --config cfg.json [--out f]    # acquire → deconvolve → features/identifications
//! htims sequence --degree 9 [--factor 2]   # gate-sequence properties and quality metrics
//! htims feasibility --degree 9 --mz 100    # FPGA resource / real-time report
//! htims pipeline --degree 6 --mz 60        # run the stage graph, emit PipelineReport JSON
//! htims trace --out trace.json             # traced pipeline run → Chrome trace + metrics JSON
//! htims top --port 9464                    # live console over a running `htims serve` exporter
//! htims bench deconv --json                # deconvolution engine micro-bench → BENCH_deconv.json
//! ```

use htims::core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims::core::analysis::{build_library, find_features, match_library};
use htims::core::config::ExperimentConfig;
use htims::core::deconvolution::{apply_columnwise, Deconvolver};
use htims::core::parallel::deconvolve_with_threads;
use htims::core::BatchDeconvolver;
use htims::fpga::deconv::DeconvConfig;
use htims::fpga::{AccumulatorCore, DeconvCore, DmaLink, FpgaDevice, ResourceReport};
use htims::graph::GraphSpec;
use htims::physics::{Instrument, Workload};
use htims::prs::{metrics, MSequence, OversampledSequence};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "print-config" => print_config(),
        "run" => run(&args),
        "sequence" => sequence(&args),
        "feasibility" => feasibility(&args),
        "pipeline" => pipeline(&args),
        "trace" => trace(&args),
        "serve" => serve(&args),
        "top" => top(&args),
        "chaos" => chaos(&args),
        "bench" => bench(&args),
        _ => help(),
    }
}

fn help() {
    eprintln!(
        "usage:\n  htims print-config\n  htims run --config <file.json> [--out <file.json>]\n  \
         htims sequence --degree <n> [--factor <m>]\n  htims feasibility --degree <n> --mz <bins>\n  \
         htims pipeline [--degree <n>] [--mz <bins>] [--frames <per-block>] [--blocks <n>]\n    \
         [--depth <channel depth>] [--backend fpga|naive|software] [--threads <n>]\n    \
         [--coarse <bins>] [--executor threaded|scheduled|inline] [--seed <n>]\n    \
         [--out <file.json>] [--faults <dma.bitflip=1e-5,frame.drop=1e-4,...>]\n    \
         [--stall-timeout <250ms>] [--sparse] [--slo <p99=5ms,completeness=0.999>]\n    \
         [--flight-dir <dir>] [--profile <dir>]\n  \
         htims trace [pipeline flags] [--out <trace.json>] [--metrics <metrics.json>]\n  \
         htims serve [pipeline flags] [--duration <2s|500ms>] [--port <n>]\n    \
         [--sample-ms <n>] [--series <file.jsonl>] [--sessions <n>] [--max-sessions <n>]\n  \
         htims top [--host <addr>] [--port <n>] [--interval <1s|500ms>] [--iterations <n>]\n  \
         htims chaos [pipeline flags] [--seeds <a,b,...>] [--matrix <spec;spec;...>]\n    \
         [--out <survival.json>] [--strict]\n  \
         htims bench deconv [--quick] [--json] [--out <file.json>]\n    \
         [--threads <a,b,...>] [--sparse]\n  \
         htims bench compare <baseline.json> <candidate.json> [--max-regress-pct <n>]\n    \
         [--out <verdict.json>]\n\n\
         pipeline|trace|serve|bench append a run summary to RUNS.jsonl\n\
         (override with --ledger <path>, disable with --no-ledger)"
    );
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Process-wide shutdown flag, flipped by SIGINT/SIGTERM so the long-
/// running modes (`serve`, `top`) can stop admission, drain in-flight
/// sessions, and flush their sampler/ledger sinks instead of dying
/// mid-write.
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: a single relaxed store, nothing else.
    SHUTDOWN.store(true, std::sync::atomic::Ordering::Relaxed);
}

fn shutdown_requested() -> bool {
    SHUTDOWN.load(std::sync::atomic::Ordering::Relaxed)
}

/// Installs the SIGINT/SIGTERM handlers via the C runtime's `signal` —
/// the one libc entry point that needs no external crate.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(2, on_signal); // SIGINT
        signal(15, on_signal); // SIGTERM
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Writes the continuous profile (`profile.folded` + `profile.json`)
/// into the spec's `--profile` directory, if one was given. Best-effort:
/// a failed write warns and moves on, like the ledger.
fn maybe_write_profile(spec: &GraphSpec) {
    let Some(dir) = &spec.profile_dir else { return };
    match ims_obs::prof::write_profile(std::path::Path::new(dir)) {
        Ok(snap) => eprintln!(
            "profile written to {dir}/profile.folded and {dir}/profile.json \
             ({} tags at {} Hz{})",
            snap.tags.len(),
            snap.hz,
            if snap.hz == 0 {
                "; HTIMS_PROF_HZ=0, sampler off"
            } else {
                ""
            }
        ),
        Err(e) => eprintln!("cannot write profile to {dir}: {e}"),
    }
}

/// Starts a `--profile` window: clears any previously accumulated
/// tallies so the dump covers exactly this invocation's runs.
fn maybe_reset_profile(spec: &GraphSpec) {
    if spec.profile_dir.is_some() {
        ims_obs::prof::reset();
    }
}

fn print_config() {
    println!("{}", ExperimentConfig::default().to_json());
}

fn run(args: &[String]) {
    let path = flag(args, "--config").unwrap_or_else(|| {
        eprintln!("--config <file.json> is required (try `htims print-config`)");
        std::process::exit(2);
    });
    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let config = ExperimentConfig::from_json(&json).unwrap_or_else(|e| {
        eprintln!("invalid config: {e}");
        std::process::exit(2);
    });

    let (instrument, workload, schedule, options) = config.build();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    eprintln!(
        "acquiring {} frames of '{}' with schedule {}…",
        config.frames,
        workload.name,
        schedule.name()
    );
    let data = acquire(
        &instrument,
        &workload,
        &schedule,
        config.frames,
        options,
        &mut rng,
    );
    eprintln!(
        "ion utilization {:.1}%, max packet {:.3e} e",
        100.0 * data.ion_utilization,
        data.packet_charges
    );
    let method = Deconvolver::Weighted { lambda: 1e-6 };
    let map = method.deconvolve(&schedule, &data);
    let features = find_features(&map, 8.0);
    let library = build_library(&instrument, &workload);
    let ids = match_library(&features, &library, 3, 2);
    eprintln!(
        "{} features; {}/{} species identified",
        features.len(),
        ids.len(),
        library.len()
    );

    let report = serde_json::json!({
        "config": config,
        "ion_utilization": data.ion_utilization,
        "packet_charges": data.packet_charges,
        "n_features": features.len(),
        "library_size": library.len(),
        "identifications": ids,
    });
    match flag(args, "--out") {
        Some(out) => {
            std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).unwrap_or_else(
                |e| {
                    eprintln!("cannot write {out}: {e}");
                    std::process::exit(2);
                },
            );
            eprintln!("report written to {out}");
        }
        None => println!("{}", serde_json::to_string_pretty(&report).unwrap()),
    }
}

fn sequence(args: &[String]) {
    let degree: u32 = flag(args, "--degree")
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    let factor: usize = flag(args, "--factor")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let seq = MSequence::new(degree);
    println!(
        "m-sequence: degree {degree}, N = {}, polynomial {}",
        seq.len(),
        seq.poly().to_poly_string()
    );
    let (bits, label): (Vec<bool>, &str) = if factor > 1 {
        let o = OversampledSequence::modified_default(seq.clone(), factor);
        println!(
            "oversampled x{factor}: length {}, {} added pulses at {:?}",
            o.len(),
            o.added_pulses().len(),
            o.added_pulses()
        );
        (o.bits().to_vec(), "modified-oversampled")
    } else {
        (seq.bits().to_vec(), "base")
    };
    let m = metrics::analyze(&bits);
    println!(
        "{label}: duty cycle {:.3}, pulses/period {}, autocorrelation contrast {:.1} dB,\n\
         condition number {:.2}, inverse noise gain {:.4}",
        m.duty_cycle,
        m.pulse_count,
        m.autocorrelation_contrast_db,
        m.condition_number,
        m.noise_gain
    );
}

/// Overrides a [`GraphSpec`]'s defaults with any flags present in `args`
/// (the flag set shared by `htims pipeline|trace|serve`, including
/// `--seed` so traces and ledger lines are reproducible end-to-end).
fn parse_graph(mut spec: GraphSpec, args: &[String]) -> GraphSpec {
    if let Some(v) = flag(args, "--degree").and_then(|v| v.parse().ok()) {
        spec.degree = v;
    }
    if let Some(v) = flag(args, "--mz").and_then(|v| v.parse().ok()) {
        spec.mz = v;
    }
    if let Some(v) = flag(args, "--frames").and_then(|v| v.parse().ok()) {
        spec.frames = v;
    }
    if let Some(v) = flag(args, "--blocks").and_then(|v| v.parse::<usize>().ok()) {
        spec.blocks = v.max(1);
    }
    if let Some(v) = flag(args, "--depth").and_then(|v| v.parse().ok()) {
        spec.depth = v;
    }
    if let Some(v) = flag(args, "--backend") {
        spec.backend = v;
    }
    if let Some(v) = flag(args, "--threads").and_then(|v| v.parse().ok()) {
        spec.threads = v;
    }
    spec.coarse = flag(args, "--coarse").and_then(|v| v.parse().ok());
    if let Some(v) = flag(args, "--executor") {
        spec.executor = v;
    }
    if let Some(v) = flag(args, "--seed").and_then(|v| v.parse().ok()) {
        spec.seed = v;
    }
    if let Some(v) = flag(args, "--faults") {
        spec.faults = (!v.is_empty()).then_some(v);
    }
    if let Some(v) = flag(args, "--stall-timeout") {
        let d = parse_duration(&v).unwrap_or_else(|| {
            eprintln!("bad --stall-timeout '{v}' (use e.g. 250ms or 2s)");
            std::process::exit(2);
        });
        spec.stall_timeout_ms = Some(d.as_millis() as u64);
    }
    if args.iter().any(|a| a == "--sparse") {
        spec.sparse = true;
    }
    if let Some(v) = flag(args, "--slo") {
        spec.slo = (!v.is_empty()).then_some(v);
    }
    if let Some(v) = flag(args, "--flight-dir") {
        spec.flight_dir = (!v.is_empty()).then_some(v);
    }
    if let Some(v) = flag(args, "--profile") {
        spec.profile_dir = (!v.is_empty()).then_some(v);
    }
    if let Some(v) = flag(args, "--shards").and_then(|v| v.parse().ok()) {
        spec.shards = v;
    }
    if let Some(v) = flag(args, "--capture-log") {
        spec.capture_log = (!v.is_empty()).then_some(v);
    }
    spec
}

/// Runs a parsed spec, exiting with the library's message on bad input.
fn run_graph(spec: &GraphSpec) -> htims::core::pipeline::PipelineOutput {
    spec.run().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// The ledger sink for this invocation: `--ledger <path>` overrides the
/// default `RUNS.jsonl`; `--no-ledger` disables the append.
fn ledger_path(args: &[String]) -> Option<String> {
    if args.iter().any(|a| a == "--no-ledger") {
        return None;
    }
    Some(flag(args, "--ledger").unwrap_or_else(|| "RUNS.jsonl".into()))
}

/// Appends `record` to the invocation's ledger. Best-effort: a read-only
/// working directory degrades to one warning plus the
/// `obs.ledger.append_failed` counter, never a failed run.
fn append_ledger(args: &[String], record: &ims_obs::LedgerRecord) {
    let Some(path) = ledger_path(args) else {
        return;
    };
    if ims_obs::ledger::append_best_effort(&path, record) {
        eprintln!("ledger line appended to {path}");
    }
}

/// Builds the ledger line for one stage-graph run.
fn graph_ledger_record(
    tool: &str,
    spec: &GraphSpec,
    report: &htims::core::pipeline::PipelineReport,
) -> ims_obs::LedgerRecord {
    let provenance = htims::obs::Provenance::collect(
        spec.resolved_threads(),
        htims::core::deconv_batch::DEFAULT_PANEL_WIDTH,
    )
    .with_simd(&report.simd)
    .with_sparse(if report.sparse_blocks > 0 {
        "sparse"
    } else {
        "dense"
    });
    let mut rec = ims_obs::LedgerRecord::new(tool, &provenance, spec.fingerprint());
    rec.wall_seconds = report.wall_seconds;
    rec.frames = report.frames;
    rec.blocks = report.blocks;
    rec.stage_latency = report
        .stages
        .iter()
        .filter_map(|s| {
            s.latency_ns
                .as_ref()
                .map(|l| ims_obs::ledger::StageQuantiles {
                    stage: s.name.clone(),
                    p50_ns: l.p50,
                    p99_ns: l.p99,
                })
        })
        .collect();
    rec.mcells_per_second = report.deconv_mcells_per_second;
    rec.outcome = Some(report.outcome.as_str().to_string());
    rec.slo = run_slo_summary(spec, report);
    rec.flight_dump = report.flight_dump.clone();
    rec
}

/// One-shot SLO evaluation of a single finished run against the spec's
/// declared targets: the whole run folds into one window bucket, so the
/// fast- and slow-window burn rates coincide. `None` without `--slo`.
fn run_slo_summary(
    spec: &GraphSpec,
    report: &htims::core::pipeline::PipelineReport,
) -> Option<ims_obs::SloSummary> {
    let slo = spec.slo_spec().ok()??;
    let mut engine = ims_obs::SloEngine::new(slo);
    engine.observe(0, run_slo_delta(spec, report));
    let status = engine.status(0);
    Some(engine.summarize(&status))
}

/// Folds one run's report into an SLO window delta: frames over the p99
/// latency target count against the latency objective; dropped and
/// quarantined frames count against completeness.
fn run_slo_delta(
    spec: &GraphSpec,
    report: &htims::core::pipeline::PipelineReport,
) -> ims_obs::SloDelta {
    let expected = spec.frames * spec.blocks as u64;
    let delivered = report
        .frames
        .saturating_sub(report.faults.frames_dropped)
        .saturating_sub(report.frames_quarantined);
    ims_obs::SloDelta {
        frames_observed: delivered,
        frames_slow: report.frames_over_latency_slo,
        frames_expected: expected,
        frames_delivered: delivered,
    }
}

/// Feeds one finished run into its session's sliding-window SLO engine,
/// publishes the `slo.burn_rate#session=…` gauges, and returns the
/// summary for the session table / ledger. No-op without `--slo`.
fn observe_slo(
    slo: &Option<ims_obs::SloSpec>,
    engines: &mut std::collections::HashMap<String, ims_obs::SloEngine>,
    label: &str,
    now_s: u64,
    spec: &GraphSpec,
    report: &htims::core::pipeline::PipelineReport,
) -> Option<ims_obs::SloSummary> {
    let slo = slo.as_ref()?;
    let engine = engines
        .entry(label.to_string())
        .or_insert_with(|| ims_obs::SloEngine::new(slo.clone()));
    engine.observe(now_s, run_slo_delta(spec, report));
    let status = engine.status(now_s);
    engine.publish(label, &status);
    Some(engine.summarize(&status))
}

/// Runs the unified hybrid stage graph (source → link → [binner] →
/// accumulate → deconvolve) and emits the run's `PipelineReport` as JSON:
/// per-stage busy/blocked time, queue high-water marks, cycle totals, and
/// simulated link time.
fn pipeline(args: &[String]) {
    if let Some(dir) = flag(args, "--replay") {
        replay_pipeline(&dir, args);
        return;
    }
    let spec = parse_graph(GraphSpec::small(), args);
    maybe_reset_profile(&spec);
    let out = run_graph(&spec);
    maybe_write_profile(&spec);
    eprintln!(
        "{} executor, backend {}: {} frames -> {} blocks in {:.1} ms \
         (simulated link {:.3} ms, capture {} cycles, deconvolve {} cycles)",
        out.report.executor,
        out.report.backend,
        out.report.frames,
        out.report.blocks,
        out.report.wall_seconds * 1e3,
        out.report.simulated_link_seconds * 1e3,
        out.report.capture_cycles,
        out.report.deconv_cycles,
    );
    let json = serde_json::to_string_pretty(&out.report).unwrap();
    match flag(args, "--out") {
        Some(path) => {
            std::fs::write(&path, json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("report written to {path}");
        }
        None => println!("{json}"),
    }
    append_ledger(args, &graph_ledger_record("pipeline", &spec, &out.report));
}

/// `htims pipeline --replay <dir>`: re-runs a captured run from its frame
/// log and holds the output to the manifest's FNV. A mismatch is a
/// determinism bug (or a tampered log) and exits nonzero so CI can gate
/// on it.
fn replay_pipeline(dir: &str, args: &[String]) {
    let outcome = htims::graph::replay(dir).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let json = serde_json::to_string_pretty(&outcome.output.report).unwrap();
    match flag(args, "--out") {
        Some(path) => {
            std::fs::write(&path, json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("report written to {path}");
        }
        None => println!("{json}"),
    }
    if outcome.matches() {
        eprintln!(
            "replay OK: output FNV 0x{:016x} matches the captured run ({} frames -> {} blocks)",
            outcome.actual_fnv, outcome.output.report.frames, outcome.output.report.blocks,
        );
    } else {
        eprintln!(
            "replay MISMATCH: output FNV 0x{:016x}, captured run recorded 0x{:016x}",
            outcome.actual_fnv, outcome.expected_fnv,
        );
        std::process::exit(3);
    }
}

/// `htims trace`: runs the hybrid stage graph under an `ims_obs`
/// `TraceSession` and writes two artifacts:
///
/// * `--out` (default `trace.json`) — a Chrome trace-event array with one
///   named track per pipeline thread (spans for every stage iteration,
///   recv/send waits, deconv panels, queue-depth counter tracks). Open it
///   at <https://ui.perfetto.dev> or `chrome://tracing`.
/// * `--metrics` (default `metrics.json`) — the full `ObsReport`:
///   provenance (schema version, git describe, threads, panel width),
///   every counter/gauge, and per-stage latency histograms (p50/p90/p99).
///
/// Accepts all `htims pipeline` flags (including `--seed`, so a trace is
/// reproducible end-to-end); the defaults are the E3 throughput workload
/// (degree 9, 1000 m/z columns, software backend).
fn trace(args: &[String]) {
    let spec = parse_graph(GraphSpec::e3(), args);
    let session = htims::obs::TraceSession::start(
        htims::obs::Provenance::collect(
            spec.resolved_threads(),
            htims::core::deconv_batch::DEFAULT_PANEL_WIDTH,
        )
        .with_simd(htims::signal::simd::active_name())
        .with_sparse(if spec.sparse { "sparse" } else { "dense" }),
    );
    maybe_reset_profile(&spec);
    let out = run_graph(&spec);
    maybe_write_profile(&spec);
    let mut report = session.finish();
    report.slo = run_slo_summary(&spec, &out.report);
    eprintln!(
        "{} executor, backend {}: {} frames -> {} blocks in {:.1} ms; \
         {} spans on {} threads",
        out.report.executor,
        out.report.backend,
        out.report.frames,
        out.report.blocks,
        out.report.wall_seconds * 1e3,
        report.spans.len(),
        report.threads.len(),
    );

    let trace_path = flag(args, "--out").unwrap_or_else(|| "trace.json".into());
    let mut trace_text = report.chrome_trace_json();
    trace_text.push('\n');
    std::fs::write(&trace_path, trace_text).unwrap_or_else(|e| {
        eprintln!("cannot write {trace_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("chrome trace written to {trace_path} (open at https://ui.perfetto.dev)");

    let metrics_path = flag(args, "--metrics").unwrap_or_else(|| "metrics.json".into());
    let combined = serde_json::json!({
        "obs": report,
        "pipeline": out.report,
    });
    let mut metrics_text = serde_json::to_string_pretty(&combined).unwrap();
    metrics_text.push('\n');
    std::fs::write(&metrics_path, metrics_text).unwrap_or_else(|e| {
        eprintln!("cannot write {metrics_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("metrics snapshot written to {metrics_path}");
    append_ledger(args, &graph_ledger_record("trace", &spec, &out.report));
}

/// `htims serve`: the continuous-telemetry mode. Runs the E3-shaped
/// streaming pipeline in a loop for `--duration` while four live
/// endpoints are up on `--port` (loopback):
///
/// * `GET /metrics` — Prometheus text exposition of every counter, gauge,
///   and histogram (`_bucket`/`_sum`/`_count` from the log-linear table);
///   with `--sessions N > 1` every pipeline series additionally carries a
///   `session="sK"` label per tenant;
/// * `GET /sessions` — the session multiplexer's table: every tenant's
///   seed, config fingerprint, state, and final `RunOutcome`/output
///   fingerprint;
/// * `GET /report.json` — the current `ObsReport` (live snapshot);
/// * `GET /profile?seconds=N` — a windowed snapshot from the continuous
///   CPU profiler: folded stacks plus per-(session, stage, method) tag
///   tallies over the window;
/// * `GET /healthz` — liveness JSON: uptime, schema versions, build.
///
/// `--sessions N` multiplexes N independent sessions per batch onto the
/// shared work-stealing pool (`min(cores, 8)` workers): session `sK` runs
/// seed `session_seed(--seed, K)`, so the whole fleet is reproducible
/// from one CLI seed. `--max-sessions` bounds concurrently admitted
/// sessions (admission control; default: the batch size).
///
/// A background sampler snapshots the registry every `--sample-ms` into
/// an in-memory ring and, with `--series <file.jsonl>`, an append-only
/// JSONL time series (counter deltas, gauge values, histogram summaries).
/// On exit one ledger line summarizing the whole window is appended —
/// plus, when multiplexing, one session-labeled line per tenant of the
/// final batch. SIGINT/SIGTERM trigger the same exit path early:
/// admission stops, in-flight sessions drain, and every sink (sampler
/// series, ledger, `--profile` dump) is flushed before the process ends.
fn serve(args: &[String]) {
    let spec = parse_graph(GraphSpec::e3(), args);
    // Graceful shutdown: SIGINT/SIGTERM stop admission at the next loop
    // check; in-flight sessions drain, then the sampler, ledger, and any
    // `--profile` dump flush exactly as on a timed exit.
    install_signal_handlers();
    let duration = flag(args, "--duration")
        .map(|v| {
            parse_duration(&v).unwrap_or_else(|| {
                eprintln!("cannot parse --duration '{v}' (try 2s, 500ms, 1.5s)");
                std::process::exit(2);
            })
        })
        .unwrap_or(std::time::Duration::from_secs(10));
    let port: u16 = flag(args, "--port")
        .and_then(|v| v.parse().ok())
        .unwrap_or(9464);
    let sample_ms: u64 = flag(args, "--sample-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let sessions: usize = flag(args, "--sessions")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let max_sessions: usize = flag(args, "--max-sessions")
        .and_then(|v| v.parse().ok())
        .unwrap_or(sessions)
        .max(1);
    let provenance = htims::obs::Provenance::collect(
        spec.resolved_threads(),
        htims::core::deconv_batch::DEFAULT_PANEL_WIDTH,
    )
    .with_simd(htims::signal::simd::active_name())
    .with_sparse(if spec.sparse { "sparse" } else { "dense" });
    // Parsed once up front so a bad `--slo` dies before the listener is
    // up; per-session engines accumulate sliding windows across runs.
    let slo_spec = spec.slo_spec().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let mut slo_engines: std::collections::HashMap<String, ims_obs::SloEngine> =
        std::collections::HashMap::new();

    ims_obs::metrics::reset();
    maybe_reset_profile(&spec);
    // Register the serve-level counters *before* the listener is up: a
    // scrape that lands before the first pipeline run still sees a
    // non-empty, well-formed exposition instead of an empty body.
    let runs_total = ims_obs::metrics::counter("serve.runs_total");
    let frames_total = ims_obs::metrics::counter("serve.frames_total");
    let blocks_total = ims_obs::metrics::counter("serve.blocks_total");

    let scheduler = htims::core::pipeline::Scheduler::global().clone();
    let manager = std::sync::Arc::new(htims::core::pipeline::SessionManager::new(
        scheduler,
        max_sessions,
    ));
    let sessions_provider: ims_obs::SessionsProvider = {
        let mgr = manager.clone();
        std::sync::Arc::new(move || mgr.summary_json())
    };
    let server = ims_obs::ObsServer::start_with_sessions(
        &format!("127.0.0.1:{port}"),
        provenance.clone(),
        sessions_provider,
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot bind 127.0.0.1:{port}: {e}");
        std::process::exit(2);
    });
    // Stdout, not stderr: scripts capture the bound port (`--port 0`).
    println!(
        "serving http://{}/metrics (also /sessions, /report.json, /profile, /healthz)",
        server.local_addr()
    );
    let sampler = ims_obs::Sampler::start(ims_obs::SamplerConfig {
        interval: std::time::Duration::from_millis(sample_ms.max(1)),
        ring_capacity: 4096,
        jsonl_path: flag(args, "--series").map(Into::into),
    })
    .unwrap_or_else(|e| {
        eprintln!("cannot open --series sink: {e}");
        std::process::exit(2);
    });

    let started = std::time::Instant::now();
    let mut runs = 0u64;
    let mut batches = 0u64;
    let mut frames = 0u64;
    let mut blocks = 0u64;
    let mut last_report = None;
    let mut last_batch: Vec<(GraphSpec, htims::core::pipeline::PipelineReport)> = Vec::new();
    while started.elapsed() < duration && !shutdown_requested() {
        if sessions == 1 {
            // Single-tenant: the PR-4 serve loop, bit-for-bit (unlabeled
            // metric names, the spec's own executor and seed).
            let out = run_graph(&spec);
            runs += 1;
            frames += out.report.frames;
            blocks += out.report.blocks;
            runs_total.incr();
            frames_total.add(out.report.frames);
            blocks_total.add(out.report.blocks);
            observe_slo(
                &slo_spec,
                &mut slo_engines,
                "main",
                started.elapsed().as_secs(),
                &spec,
                &out.report,
            );
            last_report = Some(out.report);
            continue;
        }
        // One batch: admit every tenant onto the shared pool, then join
        // them all. Labels are reused across batches (the table keeps the
        // latest state per label; history goes to the ledger).
        batches += 1;
        last_batch.clear();
        let mut handles = std::collections::VecDeque::new();
        for i in 0..sessions {
            let tenant = GraphSpec {
                seed: htims::core::fault::session_seed(spec.seed, i as u64),
                executor: "scheduled".into(),
                ..spec.clone()
            };
            let pipeline = tenant.build().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            let config = htims::core::pipeline::SessionConfig {
                label: format!("s{i}"),
                seed: tenant.seed,
                fingerprint: tenant.fingerprint(),
                fault_spec: tenant.faults.clone(),
            };
            let mut admit = manager.admit(config, pipeline);
            // Admission control: a full table sheds load by joining the
            // oldest running tenant, then retries once.
            if let Err((err, pipeline)) = admit {
                eprintln!("session s{i} not admitted ({err}); draining one");
                let Some((spec_done, handle)) = handles.pop_front() else {
                    eprintln!("session s{i} rejected with nothing to drain");
                    std::process::exit(2);
                };
                finish_session(
                    spec_done,
                    handle,
                    &mut runs,
                    &mut frames,
                    &mut blocks,
                    runs_total,
                    frames_total,
                    blocks_total,
                    &mut last_batch,
                    &slo_spec,
                    &mut slo_engines,
                    &manager,
                    started.elapsed().as_secs(),
                );
                admit = manager.admit(
                    htims::core::pipeline::SessionConfig {
                        label: format!("s{i}"),
                        seed: tenant.seed,
                        fingerprint: tenant.fingerprint(),
                        fault_spec: tenant.faults.clone(),
                    },
                    pipeline,
                );
            }
            match admit {
                Ok(handle) => handles.push_back((tenant, handle)),
                Err((err, _)) => {
                    eprintln!("session s{i} rejected twice ({err})");
                    std::process::exit(2);
                }
            }
        }
        while let Some((tenant, handle)) = handles.pop_front() {
            finish_session(
                tenant,
                handle,
                &mut runs,
                &mut frames,
                &mut blocks,
                runs_total,
                frames_total,
                blocks_total,
                &mut last_batch,
                &slo_spec,
                &mut slo_engines,
                &manager,
                started.elapsed().as_secs(),
            );
        }
        if let Some((_, report)) = last_batch.last() {
            last_report = Some(report.clone());
        }
    }
    if shutdown_requested() {
        eprintln!("signal received: admission stopped, sessions drained; flushing");
    }
    let samples = sampler.stop();
    server.stop();
    maybe_write_profile(&spec);

    let wall = started.elapsed().as_secs_f64();
    // A signal can land before the first run completes; there is nothing
    // to summarize, but the sampler/series sinks have already flushed.
    let Some(last) = last_report else {
        eprintln!(
            "served {:.2} s: stopped before the first run completed ({} samples at {sample_ms} ms)",
            wall,
            samples.len(),
        );
        return;
    };
    if sessions > 1 {
        eprintln!(
            "served {:.2} s: {batches} batches x {sessions} sessions on {} pool workers \
             ({runs} session runs, {frames} frames -> {blocks} blocks), {} samples at {sample_ms} ms",
            wall,
            manager.pool_threads(),
            samples.len(),
        );
        // One session-labeled ledger line per tenant of the final batch:
        // the durable per-tenant history (`/sessions` only keeps the
        // latest state per label).
        for (tenant, report) in &last_batch {
            let mut rec = graph_ledger_record("serve", tenant, report);
            rec.session = report.session.clone();
            append_ledger(args, &rec);
        }
    } else {
        eprintln!(
            "served {:.2} s: {runs} pipeline runs ({frames} frames -> {blocks} blocks), \
             {} samples at {sample_ms} ms, deconv {:.2} Mcells/s",
            wall,
            samples.len(),
            last.deconv_mcells_per_second,
        );
    }
    let mut rec = graph_ledger_record("serve", &spec, &last);
    rec.wall_seconds = wall;
    rec.frames = frames;
    rec.blocks = blocks;
    append_ledger(args, &rec);
}

/// Joins one admitted session and folds its run into the serve-level
/// aggregates, its per-tenant SLO engine (burn-rate gauges plus the
/// `/sessions` row), and the final-batch ledger buffer.
#[allow(clippy::too_many_arguments)]
fn finish_session(
    tenant: GraphSpec,
    handle: htims::core::pipeline::SessionHandle,
    runs: &mut u64,
    frames: &mut u64,
    blocks: &mut u64,
    runs_total: &ims_obs::Counter,
    frames_total: &ims_obs::Counter,
    blocks_total: &ims_obs::Counter,
    last_batch: &mut Vec<(GraphSpec, htims::core::pipeline::PipelineReport)>,
    slo: &Option<ims_obs::SloSpec>,
    engines: &mut std::collections::HashMap<String, ims_obs::SloEngine>,
    manager: &htims::core::pipeline::SessionManager,
    now_s: u64,
) {
    let out = handle.join();
    *runs += 1;
    *frames += out.report.frames;
    *blocks += out.report.blocks;
    runs_total.incr();
    frames_total.add(out.report.frames);
    blocks_total.add(out.report.blocks);
    let label = out.report.session.clone().unwrap_or_else(|| "main".into());
    if let Some(summary) = observe_slo(slo, engines, &label, now_s, &tenant, &out.report) {
        manager.set_slo(&label, summary);
    }
    last_batch.push((tenant, out.report));
}

/// `htims top`: a live console over a running `htims serve` exporter.
///
/// Polls `GET /metrics` on `--host`:`--port` every `--interval` (default
/// 1 s) and renders deltas between consecutive scrapes:
///
/// * per-(stage, session) CPU from the continuous profiler's
///   `pipeline_cpu_ns_*` counters, as cores consumed over the window;
/// * scheduler health from the `sched_*` families — task throughput, pop
///   provenance (local / injector / steal), park and wake rates, and the
///   mean queue dwell over the window;
/// * the serve loop's run/frame/block throughput.
///
/// `--iterations <n>` bounds the loop for scripts and CI (0, the
/// default, runs until the exporter goes away or Ctrl-C). Exits 1 when
/// the exporter is unreachable on the very first poll.
fn top(args: &[String]) {
    let host = flag(args, "--host").unwrap_or_else(|| "127.0.0.1".into());
    let port: u16 = flag(args, "--port")
        .and_then(|v| v.parse().ok())
        .unwrap_or(9464);
    let interval = flag(args, "--interval")
        .map(|v| {
            parse_duration(&v).unwrap_or_else(|| {
                eprintln!("cannot parse --interval '{v}' (try 1s, 500ms)");
                std::process::exit(2);
            })
        })
        .unwrap_or(std::time::Duration::from_secs(1));
    let iterations: u64 = flag(args, "--iterations")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    install_signal_handlers();
    let addr = format!("{host}:{port}");

    let mut prev: Option<(std::time::Instant, std::collections::HashMap<String, f64>)> = None;
    let mut polls = 0u64;
    loop {
        let text = match http_get(&addr, "/metrics") {
            Ok(t) => t,
            Err(e) => {
                if polls == 0 {
                    eprintln!("exporter at http://{addr}/metrics unreachable: {e}");
                    std::process::exit(1);
                }
                eprintln!("exporter at http://{addr}/metrics went away: {e}");
                return;
            }
        };
        let now = std::time::Instant::now();
        let series = parse_prometheus(&text);
        // Clear screen + home. Harmless noise when piped to a file.
        print!("\x1b[2J\x1b[H");
        print!(
            "{}",
            render_top(
                &addr,
                &series,
                prev.as_ref().map(|(t, s)| (now.duration_since(*t), s)),
            )
        );
        prev = Some((now, series));
        polls += 1;
        if (iterations > 0 && polls >= iterations) || shutdown_requested() {
            return;
        }
        std::thread::sleep(interval);
    }
}

/// One plain-text GET against a loopback exporter; returns the response
/// body (everything after the header/body separator).
fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    Ok(raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default())
}

/// Parses a Prometheus text exposition into `full series → value`; the
/// key keeps its label set (e.g. `pipeline_cpu_ns_deconvolve{session="s0"}`)
/// so per-session series stay distinct.
fn parse_prometheus(text: &str) -> std::collections::HashMap<String, f64> {
    let mut out = std::collections::HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if let Some((series, value)) = line.rsplit_once(' ') {
            if let Ok(v) = value.parse::<f64>() {
                out.insert(series.to_string(), v);
            }
        }
    }
    out
}

/// Renders one `htims top` frame from the delta between two scrapes.
/// `window` is `None` on the first poll (nothing to difference yet).
/// Pure text in, text out (no terminal control), so it unit-tests.
fn render_top(
    addr: &str,
    series: &std::collections::HashMap<String, f64>,
    window: Option<(std::time::Duration, &std::collections::HashMap<String, f64>)>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let Some((elapsed, prev)) = window else {
        let _ = writeln!(
            out,
            "htims top — http://{addr}/metrics — first scrape, collecting a window…"
        );
        return out;
    };
    // Two scrapes can land within the same clock tick (coarse timers,
    // suspended VMs); clamp the window to 1 ms so a zero-width window
    // inflates rates by at most 1000×, not 10^9× as the old 1 ns floor
    // allowed — that printed astronomic rates that read like corruption.
    let secs = elapsed.as_secs_f64().max(0.001);
    let delta = |key: &str| -> f64 {
        (series.get(key).copied().unwrap_or(0.0) - prev.get(key).copied().unwrap_or(0.0)).max(0.0)
    };
    let rate = |key: &str| delta(key) / secs;

    let _ = writeln!(out, "htims top — http://{addr}/metrics — window {secs:.1}s");

    // CPU rows: `pipeline_cpu_ns_<stage>{session="…"}` counters from the
    // profiler; cores consumed = Δcpu_ns / Δt / 1e9.
    let mut cpu: Vec<(String, String, f64)> = Vec::new();
    for key in series.keys() {
        let Some(rest) = key.strip_prefix("pipeline_cpu_ns_") else {
            continue;
        };
        let (stage, labels) = match rest.split_once('{') {
            Some((s, l)) => (s, l.trim_end_matches('}')),
            None => (rest, ""),
        };
        if stage.ends_with("_high_water") {
            continue;
        }
        let session = labels
            .strip_prefix("session=\"")
            .and_then(|l| l.split('"').next())
            .unwrap_or("-");
        let cores = delta(key) / secs / 1e9;
        if cores > 0.0 {
            cpu.push((stage.to_string(), session.to_string(), cores));
        }
    }
    cpu.sort_by(|a, b| b.2.total_cmp(&a.2));
    let total_cores: f64 = cpu.iter().map(|r| r.2).sum();
    let _ = writeln!(
        out,
        "\n  {:<14} {:<10} {:>7} {:>6}",
        "STAGE", "SESSION", "CORES", "CPU%"
    );
    if cpu.is_empty() {
        let _ = writeln!(
            out,
            "  (no pipeline.cpu_ns deltas this window — profiler off or pipeline idle)"
        );
    }
    for (stage, session, cores) in cpu.iter().take(16) {
        let _ = writeln!(
            out,
            "  {:<14} {:<10} {:>7.2} {:>5.1}%",
            stage,
            session,
            cores,
            if total_cores > 0.0 {
                cores / total_cores * 100.0
            } else {
                0.0
            }
        );
    }

    // Scheduler health: rates over the window, plus the mean queue dwell
    // from the histogram's `_sum`/`_count` deltas.
    let dwell_count = delta("sched_queue_dwell_ns_count");
    let dwell_mean_us = if dwell_count > 0.0 {
        delta("sched_queue_dwell_ns_sum") / dwell_count / 1e3
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "\n  sched: {:.0} tasks/s (local {:.0}, injector {:.0}, steals {:.0}), \
         parks {:.0}/s, wakes {:.0}/s, queue dwell mean {dwell_mean_us:.1} us",
        rate("sched_executed_total"),
        rate("sched_local_pops_total"),
        rate("sched_injector_pops_total"),
        rate("sched_steals_total"),
        rate("sched_parks_total"),
        rate("sched_wakes_total"),
    );
    let _ = writeln!(
        out,
        "  serve: {:.1} runs/s, {:.0} frames/s -> {:.1} blocks/s",
        rate("serve_runs_total"),
        rate("serve_frames_total"),
        rate("serve_blocks_total"),
    );
    out
}

/// `htims chaos`: soaks the hybrid stage graph under a deterministic
/// fault matrix and emits a schema-versioned survival report.
///
/// Every `(fault spec, seed)` cell runs **twice**; because injection is a
/// pure function of `(seed, spec)`, the runs must agree bit for bit —
/// divergence is reported as `reproducible: false`. `--matrix` overrides
/// the default fault matrix with `;`-separated specs (an empty entry is
/// the clean control), `--seeds` crosses the matrix with several seeds,
/// and `--strict` exits nonzero unless every cell reproduced and none
/// failed outright.
fn chaos(args: &[String]) {
    // Chaos defaults: the small graph shape with the watchdog armed (2 s —
    // far above the matrix's injected stalls, so only real wedges trip it).
    let mut base = parse_graph(
        GraphSpec {
            frames: 8,
            blocks: 2,
            stall_timeout_ms: Some(2_000),
            ..GraphSpec::small()
        },
        args,
    );
    base.faults = None; // the matrix supplies each cell's spec
    if base.shards == 0 {
        // Shard the accumulator so the matrix's `shard.kill` cells have
        // several independent victims (merged output is bit-identical, so
        // every other cell is unaffected). `--shards` overrides.
        base.shards = 4;
    }
    let seeds: Vec<u64> = match flag(args, "--seeds") {
        Some(list) => list
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    eprintln!("bad --seeds entry '{s}' (use e.g. --seeds 7,8,9)");
                    std::process::exit(2);
                })
            })
            .collect(),
        None => vec![base.seed],
    };
    let matrix: Vec<String> = match flag(args, "--matrix") {
        Some(list) => list.split(';').map(|s| s.trim().to_string()).collect(),
        None => htims::chaos::default_matrix(),
    };
    let report = htims::chaos::run_matrix(&base, &matrix, &seeds).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    eprintln!(
        "chaos soak: {} cells ({} completed, {} degraded, {} failed, {} irreproducible); \
         shards: {} rebuilt from capture, {} lost",
        report.cells.len(),
        report.summary.completed,
        report.summary.degraded,
        report.summary.failed,
        report.summary.irreproducible,
        report.cells.iter().map(|c| c.shard_rebuilds).sum::<u64>(),
        report.cells.iter().map(|c| c.shards_lost).sum::<u64>(),
    );
    let json = serde_json::to_string_pretty(&report).unwrap();
    match flag(args, "--out") {
        Some(path) => {
            std::fs::write(&path, json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("survival report written to {path}");
        }
        None => println!("{json}"),
    }
    let provenance = htims::obs::Provenance::collect(
        base.resolved_threads(),
        htims::core::deconv_batch::DEFAULT_PANEL_WIDTH,
    )
    .with_simd(htims::signal::simd::active_name());
    let mut rec = ims_obs::LedgerRecord::new("chaos", &provenance, base.fingerprint());
    rec.wall_seconds = report.cells.iter().map(|c| c.wall_seconds).sum();
    rec.blocks = report.cells.iter().map(|c| c.blocks).sum();
    rec.outcome = Some(
        if report.survived() {
            "survived"
        } else {
            "failed"
        }
        .to_string(),
    );
    append_ledger(args, &rec);
    if args.iter().any(|a| a == "--strict") && !report.survived() {
        eprintln!("chaos soak FAILED (see the survival report)");
        std::process::exit(1);
    }
}

/// Parses `2s` / `500ms` / bare seconds (`1.5`) into a `Duration`.
fn parse_duration(text: &str) -> Option<std::time::Duration> {
    let t = text.trim();
    let (number, scale) = if let Some(ms) = t.strip_suffix("ms") {
        (ms, 1e-3)
    } else if let Some(s) = t.strip_suffix('s') {
        (s, 1.0)
    } else {
        (t, 1.0)
    };
    let secs: f64 = number.trim().parse().ok()?;
    (secs.is_finite() && secs >= 0.0).then(|| std::time::Duration::from_secs_f64(secs * scale))
}

/// `htims bench deconv`: times the scalar per-column reference against the
/// batched panel engine on the E3 block (511 drift × 1000 m/z) and emits a
/// machine-readable report (`BENCH_deconv.json` with `--json`).
///
/// Engines:
/// * `scalar-column` — gather each strided column, run the per-column
///   solver (fresh allocations per column), scatter back: the baseline;
/// * `batched` — [`BatchDeconvolver`] panels on one thread, by panel width;
/// * `batched-parallel` — panel slabs distributed over the work-stealing
///   scheduler, by threads (`--threads 1,2,4` overrides the sweep);
/// * `sparse-scalar` / `sparse-batched` / `sparse-skip` (with `--sparse`)
///   — the same engines plus the CSR skip-zero path on a background-free
///   block.
///
/// All engines produce bit-identical output; only the schedule of the
/// arithmetic differs. `speedup_vs_scalar` is relative to the same method's
/// scalar-column row (sparse rows: the sparse block's own scalar row).
fn bench(args: &[String]) {
    match args.get(1).map(String::as_str) {
        Some("deconv") => bench_deconv(args),
        Some("compare") => bench_compare(args),
        other => {
            eprintln!(
                "unknown bench target {:?} (use `deconv` or `compare`)",
                other.unwrap_or("<none>")
            );
            std::process::exit(2);
        }
    }
}

fn bench_deconv(args: &[String]) {
    let bench_started = std::time::Instant::now();
    let quick = args.iter().any(|a| a == "--quick");
    let degree = 9u32;
    let n = (1usize << degree) - 1;
    let mz_bins = if quick { 200 } else { 1000 };
    let frames: u64 = if quick { 5 } else { 20 };
    let repeats = if quick { 2 } else { 3 };

    let mut inst = Instrument::with_drift_bins(n);
    inst.tof.n_bins = mz_bins;
    let workload = Workload::three_peptide_mix();
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    eprintln!("acquiring bench block ({n} drift x {mz_bins} m/z, {frames} frames)…");
    let data = acquire(
        &inst,
        &workload,
        &schedule,
        frames,
        AcquireOptions::default(),
        &mut rng,
    );

    let cells = (n * mz_bins) as f64;
    let mut rows: Vec<serde_json::Value> = Vec::new();
    let mut record =
        |method: &str, engine: &str, threads: usize, width: usize, secs: f64, scalar_secs: f64| {
            eprintln!(
                "{method:<12} {engine:<16} threads {threads:>2} panel {width:>4}: \
             {:>8.2} ms/block  {:>7.2} Mcells/s  {:.2}x",
                secs * 1e3,
                cells / secs / 1e6,
                scalar_secs / secs
            );
            rows.push(serde_json::json!({
                "method": method,
                "engine": engine,
                "threads": threads,
                "panel_width": width,
                // Joins this row with ledger lines and compare verdicts.
                "fingerprint": ims_obs::config_fingerprint(&ims_obs::FingerprintParts {
                    drift_bins: n,
                    mz_bins,
                    method,
                    engine,
                    threads,
                    panel_width: width,
                }),
                "ms_per_block": secs * 1e3,
                "blocks_per_second": 1.0 / secs,
                "mcells_per_second": cells / secs / 1e6,
                "speedup_vs_scalar": scalar_secs / secs,
            }));
        };

    let widths: &[usize] = if quick { &[32] } else { &[8, 32, 128] };
    let threads: Vec<usize> = match flag(args, "--threads") {
        Some(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("bad --threads entry '{s}' (use e.g. --threads 1,2,4)");
                        std::process::exit(2);
                    })
            })
            .collect(),
        None => thread_sweep(quick),
    };

    // Floating-point software methods: weighted circulant + simplex FWHT.
    for method in [
        Deconvolver::Weighted { lambda: 1e-6 },
        Deconvolver::SimplexFast,
    ] {
        let name = match &method {
            Deconvolver::Weighted { .. } => "weighted",
            _ => "simplex-fast",
        };
        let solver = method.column_solver(&schedule, &data);
        let scalar_secs = best_secs(repeats, || {
            std::hint::black_box(apply_columnwise(&data.accumulated, |col| solver(col)));
        });
        record(name, "scalar-column", 1, 1, scalar_secs, scalar_secs);
        for &width in widths {
            let engine = BatchDeconvolver::new(&method, &schedule, &data).with_panel_width(width);
            let secs = best_secs(repeats, || {
                std::hint::black_box(engine.deconvolve_map(&data.accumulated));
            });
            record(name, "batched", 1, width, secs, scalar_secs);
        }
        let panel_width = BatchDeconvolver::new(&method, &schedule, &data).panel_width();
        for &t in &threads {
            let secs = (0..repeats)
                .map(|_| deconvolve_with_threads(&method, &schedule, &data, t).1)
                .fold(f64::INFINITY, f64::min);
            record(name, "batched-parallel", t, panel_width, secs, scalar_secs);
        }
    }

    // The integer fixed-point datapath (the FPGA-model kernel the software
    // pipeline backend runs).
    let seq = MSequence::new(degree);
    let core = DeconvCore::new(&seq, DeconvConfig::default());
    let block: Vec<u64> = data
        .accumulated
        .data()
        .iter()
        .map(|&v| v.round() as u64)
        .collect();
    let scalar_secs = best_secs(repeats, || {
        let mut out = vec![0i64; n * mz_bins];
        let mut column = vec![0u64; n];
        for mz in 0..mz_bins {
            for (d, c) in column.iter_mut().enumerate() {
                *c = block[d * mz_bins + mz];
            }
            for (d, v) in core.deconvolve_column(&column).into_iter().enumerate() {
                out[d * mz_bins + mz] = v;
            }
        }
        std::hint::black_box(out);
    });
    record(
        "fixed-point",
        "scalar-column",
        1,
        1,
        scalar_secs,
        scalar_secs,
    );
    for &width in widths {
        let secs = best_secs(repeats, || {
            let mut out = vec![0i64; n * mz_bins];
            let mut panel: Vec<u64> = Vec::new();
            let mut solved: Vec<i64> = Vec::new();
            let mut work: Vec<i64> = Vec::new();
            let mut c0 = 0;
            while c0 < mz_bins {
                let w = width.min(mz_bins - c0);
                panel.clear();
                panel.reserve(n * w);
                for d in 0..n {
                    panel.extend_from_slice(&block[d * mz_bins + c0..d * mz_bins + c0 + w]);
                }
                solved.resize(n * w, 0);
                core.deconvolve_panel_into(&panel, w, &mut solved, &mut work);
                for d in 0..n {
                    out[d * mz_bins + c0..d * mz_bins + c0 + w]
                        .copy_from_slice(&solved[d * w..(d + 1) * w]);
                }
                c0 += w;
            }
            std::hint::black_box(out);
        });
        record("fixed-point", "batched", 1, width, secs, scalar_secs);
    }
    // Threaded rows for the integer path too: the pipeline's software
    // backend (scheduler slabs over a private pool), bit-identical to the
    // scalar loop above at every thread count.
    let fp_width = htims::signal::FIXED_POINT_PANEL_WIDTH;
    for &t in &threads {
        let secs = best_secs(repeats, || {
            std::hint::black_box(htims::core::pipeline::software_deconvolve_block(
                &core, &block, mz_bins, t, fp_width,
            ));
        });
        record(
            "fixed-point",
            "batched-parallel",
            t,
            fp_width,
            secs,
            scalar_secs,
        );
    }

    // Sparse rows (`--sparse`): a background-free acquisition of the same
    // shape, so only the peptide peaks occupy cells. Each engine is timed
    // against a scalar-column reference *on the sparse block*; the
    // `sparse-skip` rows run the CSR skip-zero path (bit-identical to
    // dense, priced per occupied column).
    let sparse_enabled = args.iter().any(|a| a == "--sparse");
    let mut sparse_occupancy = serde_json::Value::Null;
    if sparse_enabled {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        eprintln!("acquiring sparse bench block (background 0)…");
        let sparse_data = acquire(
            &inst,
            &workload,
            &schedule,
            frames,
            AcquireOptions {
                background_mean: 0.0,
                ..AcquireOptions::default()
            },
            &mut rng,
        );
        let occupied = sparse_data
            .accumulated
            .data()
            .iter()
            .filter(|v| v.to_bits() != 0)
            .count();
        let occupancy = occupied as f64 / cells;
        sparse_occupancy = serde_json::json!(occupancy);
        eprintln!(
            "sparse block occupancy: {occupied}/{} cells ({:.2}%)",
            cells as usize,
            occupancy * 100.0
        );

        for method in [
            Deconvolver::Weighted { lambda: 1e-6 },
            Deconvolver::SimplexFast,
        ] {
            let name = match &method {
                Deconvolver::Weighted { .. } => "weighted",
                _ => "simplex-fast",
            };
            let solver = method.column_solver(&schedule, &sparse_data);
            let scalar_secs = best_secs(repeats, || {
                std::hint::black_box(apply_columnwise(&sparse_data.accumulated, |col| {
                    solver(col)
                }));
            });
            record(name, "sparse-scalar", 1, 1, scalar_secs, scalar_secs);
            let engine = BatchDeconvolver::new(&method, &schedule, &sparse_data);
            let width = engine.panel_width();
            let secs = best_secs(repeats, || {
                std::hint::black_box(engine.deconvolve_map(&sparse_data.accumulated));
            });
            record(name, "sparse-batched", 1, width, secs, scalar_secs);
            let secs = best_secs(repeats, || {
                std::hint::black_box(engine.deconvolve_map_sparse(&sparse_data.accumulated));
            });
            record(name, "sparse-skip", 1, width, secs, scalar_secs);
        }

        // Integer path: CSR-of-runs block through the FWHT core's
        // skip-zero entry point.
        let sparse_block: Vec<u64> = sparse_data
            .accumulated
            .data()
            .iter()
            .map(|&v| v.round() as u64)
            .collect();
        let scalar_secs = best_secs(repeats, || {
            let mut out = vec![0i64; n * mz_bins];
            let mut column = vec![0u64; n];
            for mz in 0..mz_bins {
                for (d, c) in column.iter_mut().enumerate() {
                    *c = sparse_block[d * mz_bins + mz];
                }
                for (d, v) in core.deconvolve_column(&column).into_iter().enumerate() {
                    out[d * mz_bins + mz] = v;
                }
            }
            std::hint::black_box(out);
        });
        record(
            "fixed-point",
            "sparse-scalar",
            1,
            1,
            scalar_secs,
            scalar_secs,
        );
        let csr = htims::fpga::SparseBlock::from_dense(&sparse_block, n, mz_bins);
        let mut sparse_core = DeconvCore::new(&seq, DeconvConfig::default());
        let secs = best_secs(repeats, || {
            std::hint::black_box(sparse_core.deconvolve_block_sparse(&csr));
        });
        record("fixed-point", "sparse-skip", 1, fp_width, secs, scalar_secs);
    }

    // Schema v3: `provenance` (with the dispatched SIMD backend and the
    // sparse/dense decision) makes BENCH_*.json files comparable across
    // PRs — which tree built the binary, which kernels actually ran.
    let report = serde_json::json!({
        "schema_version": htims::obs::OBS_SCHEMA_VERSION,
        "provenance": htims::obs::Provenance::collect(
            threads.last().copied().unwrap_or(1),
            htims::core::deconv_batch::DEFAULT_PANEL_WIDTH,
        )
        .with_simd(htims::signal::simd::active_name())
        .with_sparse(if sparse_enabled { "sparse+dense" } else { "dense" }),
        "block": serde_json::json!({
            "drift_bins": n,
            "mz_bins": mz_bins,
            "frames": frames,
            "sparse_occupancy": sparse_occupancy,
        }),
        "rows": rows,
    });
    if args.iter().any(|a| a == "--json") || flag(args, "--out").is_some() {
        let path = flag(args, "--out").unwrap_or_else(|| "BENCH_deconv.json".into());
        let mut text = serde_json::to_string_pretty(&report).unwrap();
        text.push('\n');
        std::fs::write(&path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("bench report written to {path}");
    }

    // One ledger line for the whole suite: fingerprinted on the block
    // shape, best observed throughput as the headline number.
    let suite_threads = threads.last().copied().unwrap_or(1);
    let provenance = htims::obs::Provenance::collect(
        suite_threads,
        htims::core::deconv_batch::DEFAULT_PANEL_WIDTH,
    )
    .with_simd(htims::signal::simd::active_name())
    .with_sparse(if sparse_enabled {
        "sparse+dense"
    } else {
        "dense"
    });
    let fingerprint = ims_obs::config_fingerprint(&ims_obs::FingerprintParts {
        drift_bins: n,
        mz_bins,
        method: "deconv-suite",
        engine: "bench",
        threads: suite_threads,
        panel_width: htims::core::deconv_batch::DEFAULT_PANEL_WIDTH,
    });
    let mut rec = ims_obs::LedgerRecord::new("bench", &provenance, fingerprint);
    rec.wall_seconds = bench_started.elapsed().as_secs_f64();
    rec.frames = frames;
    rec.mcells_per_second = rows
        .iter()
        .filter_map(|r| r.field("mcells_per_second").as_f64())
        .fold(0.0, f64::max);
    append_ledger(args, &rec);
}

/// `htims bench compare <baseline.json> <candidate.json>`: the perf
/// regression gate. Rows are matched by (method, engine, threads,
/// panel_width); each match's `mcells_per_second` delta is printed, a
/// machine-readable verdict is emitted (stdout, or `--out <file>`), and
/// the exit code is 1 when any matched row regresses by more than
/// `--max-regress-pct` (default 10).
fn bench_compare(args: &[String]) {
    let positional: Vec<&String> = {
        // Skip flag names and their values; what remains are the two
        // report paths.
        let mut out = Vec::new();
        let mut i = 2;
        while i < args.len() {
            let a = &args[i];
            if a == "--max-regress-pct" || a == "--out" || a == "--ledger" {
                i += 2;
                continue;
            }
            if a.starts_with("--") {
                i += 1;
                continue;
            }
            out.push(a);
            i += 1;
        }
        out
    };
    let [baseline_path, candidate_path] = positional.as_slice() else {
        eprintln!("usage: htims bench compare <baseline.json> <candidate.json> [--max-regress-pct <n>] [--out <verdict.json>]");
        std::process::exit(2);
    };
    let max_regress_pct: f64 = flag(args, "--max-regress-pct")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);

    let baseline = load_bench_rows(baseline_path);
    let candidate = load_bench_rows(candidate_path);

    eprintln!(
        "{:<12} {:<16} {:>7} {:>5} {:>12} {:>12} {:>8}  verdict",
        "method", "engine", "threads", "panel", "base Mc/s", "cand Mc/s", "delta%"
    );
    let mut verdict_rows: Vec<serde_json::Value> = Vec::new();
    let mut regressions = 0usize;
    let mut matched = 0usize;
    for row in &baseline.rows {
        let Some(cand) = candidate.rows.iter().find(|c| c.key == row.key) else {
            eprintln!(
                "{:<12} {:<16} {:>7} {:>5} {:>12.2} {:>12} {:>8}  missing in candidate",
                row.key.0, row.key.1, row.key.2, row.key.3, row.mcells, "-", "-"
            );
            continue;
        };
        matched += 1;
        let delta_pct = if row.mcells > 0.0 {
            (cand.mcells - row.mcells) / row.mcells * 100.0
        } else {
            0.0
        };
        let regressed = delta_pct < -max_regress_pct;
        if regressed {
            regressions += 1;
        }
        eprintln!(
            "{:<12} {:<16} {:>7} {:>5} {:>12.2} {:>12.2} {:>+8.2}  {}",
            row.key.0,
            row.key.1,
            row.key.2,
            row.key.3,
            row.mcells,
            cand.mcells,
            delta_pct,
            if regressed { "REGRESSED" } else { "ok" }
        );
        verdict_rows.push(serde_json::json!({
            "method": row.key.0,
            "engine": row.key.1,
            "threads": row.key.2,
            "panel_width": row.key.3,
            "fingerprint": row.fingerprint,
            "baseline_mcells_per_second": row.mcells,
            "candidate_mcells_per_second": cand.mcells,
            "delta_pct": delta_pct,
            "regressed": regressed,
        }));
    }
    if matched == 0 {
        eprintln!("no comparable rows between {baseline_path} and {candidate_path}");
        std::process::exit(2);
    }

    let ok = regressions == 0;
    // The verdict names its inputs: which files were judged and which
    // schema generation each declared, so an archived verdict is
    // self-describing without the original paths' contents.
    let verdict = serde_json::json!({
        "schema_version": htims::obs::OBS_SCHEMA_VERSION,
        "baseline": serde_json::json!({
            "path": baseline_path.as_str(),
            "schema_version": baseline.schema_version,
        }),
        "candidate": serde_json::json!({
            "path": candidate_path.as_str(),
            "schema_version": candidate.schema_version,
        }),
        "max_regress_pct": max_regress_pct,
        "matched_rows": matched,
        "regressions": regressions,
        "ok": ok,
        "rows": verdict_rows,
    });
    let mut text = serde_json::to_string_pretty(&verdict).unwrap();
    text.push('\n');
    match flag(args, "--out") {
        Some(path) => {
            std::fs::write(&path, text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("verdict written to {path}");
        }
        None => print!("{text}"),
    }
    eprintln!(
        "{matched} rows compared against {baseline_path} (schema v{}), \
         {regressions} regressed beyond {max_regress_pct}% -> {}",
        baseline.schema_version,
        if ok { "PASS" } else { "FAIL" }
    );
    if !ok {
        std::process::exit(1);
    }
}

/// One comparable bench row: the match key plus throughput.
struct BenchRow {
    key: (String, String, u64, u64),
    fingerprint: String,
    mcells: f64,
}

/// A loaded bench report: block shape (for fingerprint recomputation when
/// older reports lack one), its declared schema version, and its rows.
struct BenchReport {
    /// The report's own `schema_version` (0 when the file predates it) —
    /// echoed into compare verdicts so a verdict names exactly which
    /// baseline generation it judged against.
    schema_version: u64,
    rows: Vec<BenchRow>,
}

/// Reads a `BENCH_deconv.json`-shaped report, dying with a usable message
/// on malformed input.
fn load_bench_rows(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let value: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not valid JSON: {e}");
        std::process::exit(2);
    });
    let schema_version = value.field("schema_version").as_u64().unwrap_or(0);
    let drift_bins = value
        .field("block")
        .field("drift_bins")
        .as_u64()
        .unwrap_or(0) as usize;
    let mz_bins = value.field("block").field("mz_bins").as_u64().unwrap_or(0) as usize;
    let serde_json::Value::Array(raw_rows) = value.field("rows") else {
        eprintln!("{path} has no `rows` array (is it a bench report?)");
        std::process::exit(2);
    };
    let mut rows = Vec::new();
    for raw in raw_rows {
        let (Some(method), Some(engine)) =
            (raw.field("method").as_str(), raw.field("engine").as_str())
        else {
            eprintln!("{path}: row without method/engine");
            std::process::exit(2);
        };
        let threads = raw.field("threads").as_u64().unwrap_or(0);
        let panel_width = raw.field("panel_width").as_u64().unwrap_or(0);
        let Some(mcells) = raw.field("mcells_per_second").as_f64() else {
            eprintln!("{path}: row without mcells_per_second");
            std::process::exit(2);
        };
        // Pre-PR-4 reports carry no fingerprint; recompute from the key
        // so old baselines stay comparable.
        let fingerprint = raw
            .field("fingerprint")
            .as_str()
            .map(str::to_string)
            .unwrap_or_else(|| {
                ims_obs::config_fingerprint(&ims_obs::FingerprintParts {
                    drift_bins,
                    mz_bins,
                    method,
                    engine,
                    threads: threads as usize,
                    panel_width: panel_width as usize,
                })
            });
        rows.push(BenchRow {
            key: (method.to_string(), engine.to_string(), threads, panel_width),
            fingerprint,
            mcells,
        });
    }
    BenchReport {
        schema_version,
        rows,
    }
}

/// Best-of-`repeats` wall time of `f`, in seconds.
fn best_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Thread counts for the parallel rows: powers of two up to the machine
/// width but at least up to 4 (always including 1 for the serial-overhead
/// comparison).
fn thread_sweep(quick: bool) -> Vec<usize> {
    let machine = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4);
    if quick {
        return vec![machine.min(4)];
    }
    // Sweep to at least 4 even on narrow machines: the multi-thread rows
    // (threads = 2, 4) are part of the published baseline and the pool
    // oversubscribes gracefully.
    let max = machine.max(4);
    let mut counts = vec![1usize];
    let mut t = 2;
    while t <= max {
        counts.push(t);
        t *= 2;
    }
    counts
}

fn feasibility(args: &[String]) {
    let degree: u32 = flag(args, "--degree")
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    let mz: usize = flag(args, "--mz")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let n = (1usize << degree) - 1;
    let seq = MSequence::new(degree);
    let acc = AccumulatorCore::new(n, mz, 32);
    let deconv = DeconvCore::new(&seq, DeconvConfig::default());
    for device in [
        FpgaDevice::xc2vp50(),
        FpgaDevice::xc4vlx160(),
        FpgaDevice::instrument_board(),
    ] {
        let report = ResourceReport::evaluate(
            &device,
            &acc,
            &deconv,
            &DmaLink::rapidarray(),
            50,
            0.02 * n as f64 / 511.0,
        );
        println!(
            "{:<26} BRAM {:>4}/{:<4} DSP {:>3}/{:<3} fits={:<5} rt-margin {:>8.1}x viable={}",
            report.device,
            report.bram_used,
            report.bram_available,
            report.dsp_used,
            report.dsp_available,
            report.fits,
            report.realtime_margin,
            report.viable()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::render_top;
    use std::collections::HashMap;
    use std::time::Duration;

    fn series(pairs: &[(&str, f64)]) -> HashMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn first_scrape_renders_a_banner_not_rates() {
        let now = series(&[("serve_runs_total", 3.0)]);
        let frame = render_top("127.0.0.1:9100", &now, None);
        assert!(frame.contains("first scrape"), "{frame}");
        assert!(!frame.contains("runs/s"), "{frame}");
    }

    #[test]
    fn zero_width_window_stays_finite() {
        // Two scrapes inside one clock tick: the old 1 ns clamp printed
        // rates inflated by 10^9; the 1 ms floor keeps them readable and
        // the frame free of NaN/inf artifacts.
        let prev = series(&[("serve_frames_total", 100.0)]);
        let now = series(&[("serve_frames_total", 101.0)]);
        let frame = render_top("127.0.0.1:9100", &now, Some((Duration::ZERO, &prev)));
        assert!(!frame.contains("NaN") && !frame.contains("inf"), "{frame}");
        // 1 frame over the clamped 1 ms window = 1000 frames/s, not 1e9.
        assert!(frame.contains("1000 frames/s"), "{frame}");
    }

    #[test]
    fn cpu_rows_are_sorted_and_percentaged() {
        let prev = series(&[
            ("pipeline_cpu_ns_deconvolve{session=\"a\"}", 0.0),
            ("pipeline_cpu_ns_accumulate{session=\"a\"}", 0.0),
        ]);
        let now = series(&[
            ("pipeline_cpu_ns_deconvolve{session=\"a\"}", 3e9),
            ("pipeline_cpu_ns_accumulate{session=\"a\"}", 1e9),
        ]);
        let frame = render_top("h:1", &now, Some((Duration::from_secs(2), &prev)));
        let deconv = frame.find("deconvolve").unwrap();
        let accum = frame.find("accumulate").unwrap();
        assert!(deconv < accum, "hotter stage first:\n{frame}");
        assert!(frame.contains("75.0%"), "{frame}");
        assert!(frame.contains("25.0%"), "{frame}");
    }
}
