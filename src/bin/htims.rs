//! `htims` — command-line front end for the HT-IMS simulation.
//!
//! ```text
//! htims print-config                       # emit the default experiment config as JSON
//! htims run --config cfg.json [--out f]    # acquire → deconvolve → features/identifications
//! htims sequence --degree 9 [--factor 2]   # gate-sequence properties and quality metrics
//! htims feasibility --degree 9 --mz 100    # FPGA resource / real-time report
//! htims pipeline --degree 6 --mz 60        # run the stage graph, emit PipelineReport JSON
//! htims trace --out trace.json             # traced pipeline run → Chrome trace + metrics JSON
//! htims bench deconv --json                # deconvolution engine micro-bench → BENCH_deconv.json
//! ```

use htims::core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims::core::analysis::{build_library, find_features, match_library};
use htims::core::config::ExperimentConfig;
use htims::core::deconvolution::{apply_columnwise, Deconvolver};
use htims::core::hybrid::{hybrid_pipeline, FrameGenerator, HybridConfig};
use htims::core::parallel::deconvolve_with_threads;
use htims::core::pipeline::DeconvBackend;
use htims::core::BatchDeconvolver;
use htims::fpga::deconv::DeconvConfig;
use htims::fpga::{AccumulatorCore, DeconvCore, DmaLink, FpgaDevice, MzBinner, ResourceReport};
use htims::physics::{Instrument, Workload};
use htims::prs::{metrics, MSequence, OversampledSequence};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "print-config" => print_config(),
        "run" => run(&args),
        "sequence" => sequence(&args),
        "feasibility" => feasibility(&args),
        "pipeline" => pipeline(&args),
        "trace" => trace(&args),
        "bench" => bench(&args),
        _ => help(),
    }
}

fn help() {
    eprintln!(
        "usage:\n  htims print-config\n  htims run --config <file.json> [--out <file.json>]\n  \
         htims sequence --degree <n> [--factor <m>]\n  htims feasibility --degree <n> --mz <bins>\n  \
         htims pipeline [--degree <n>] [--mz <bins>] [--frames <per-block>] [--blocks <n>]\n    \
         [--depth <channel depth>] [--backend fpga|naive|software] [--threads <n>]\n    \
         [--coarse <bins>] [--executor threaded|inline] [--out <file.json>]\n  \
         htims trace [pipeline flags] [--out <trace.json>] [--metrics <metrics.json>]\n  \
         htims bench deconv [--quick] [--json] [--out <file.json>]"
    );
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn print_config() {
    println!("{}", ExperimentConfig::default().to_json());
}

fn run(args: &[String]) {
    let path = flag(args, "--config").unwrap_or_else(|| {
        eprintln!("--config <file.json> is required (try `htims print-config`)");
        std::process::exit(2);
    });
    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let config = ExperimentConfig::from_json(&json).unwrap_or_else(|e| {
        eprintln!("invalid config: {e}");
        std::process::exit(2);
    });

    let (instrument, workload, schedule, options) = config.build();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    eprintln!(
        "acquiring {} frames of '{}' with schedule {}…",
        config.frames,
        workload.name,
        schedule.name()
    );
    let data = acquire(
        &instrument,
        &workload,
        &schedule,
        config.frames,
        options,
        &mut rng,
    );
    eprintln!(
        "ion utilization {:.1}%, max packet {:.3e} e",
        100.0 * data.ion_utilization,
        data.packet_charges
    );
    let method = Deconvolver::Weighted { lambda: 1e-6 };
    let map = method.deconvolve(&schedule, &data);
    let features = find_features(&map, 8.0);
    let library = build_library(&instrument, &workload);
    let ids = match_library(&features, &library, 3, 2);
    eprintln!(
        "{} features; {}/{} species identified",
        features.len(),
        ids.len(),
        library.len()
    );

    let report = serde_json::json!({
        "config": config,
        "ion_utilization": data.ion_utilization,
        "packet_charges": data.packet_charges,
        "n_features": features.len(),
        "library_size": library.len(),
        "identifications": ids,
    });
    match flag(args, "--out") {
        Some(out) => {
            std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).unwrap_or_else(
                |e| {
                    eprintln!("cannot write {out}: {e}");
                    std::process::exit(2);
                },
            );
            eprintln!("report written to {out}");
        }
        None => println!("{}", serde_json::to_string_pretty(&report).unwrap()),
    }
}

fn sequence(args: &[String]) {
    let degree: u32 = flag(args, "--degree")
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    let factor: usize = flag(args, "--factor")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let seq = MSequence::new(degree);
    println!(
        "m-sequence: degree {degree}, N = {}, polynomial {}",
        seq.len(),
        seq.poly().to_poly_string()
    );
    let (bits, label): (Vec<bool>, &str) = if factor > 1 {
        let o = OversampledSequence::modified_default(seq.clone(), factor);
        println!(
            "oversampled x{factor}: length {}, {} added pulses at {:?}",
            o.len(),
            o.added_pulses().len(),
            o.added_pulses()
        );
        (o.bits().to_vec(), "modified-oversampled")
    } else {
        (seq.bits().to_vec(), "base")
    };
    let m = metrics::analyze(&bits);
    println!(
        "{label}: duty cycle {:.3}, pulses/period {}, autocorrelation contrast {:.1} dB,\n\
         condition number {:.2}, inverse noise gain {:.4}",
        m.duty_cycle,
        m.pulse_count,
        m.autocorrelation_contrast_db,
        m.condition_number,
        m.noise_gain
    );
}

/// Flags shared by `htims pipeline` and `htims trace`: the shape of one
/// hybrid stage-graph run. The two subcommands differ only in defaults
/// (`trace` defaults to the E3 workload) and in what they emit.
struct GraphOpts {
    degree: u32,
    mz: usize,
    frames: u64,
    blocks: usize,
    depth: usize,
    backend: String,
    threads: usize,
    coarse: Option<usize>,
    executor: String,
}

impl GraphOpts {
    /// Defaults of `htims pipeline`: a small, fast smoke graph.
    fn small() -> Self {
        Self {
            degree: 6,
            mz: 60,
            frames: 16,
            blocks: 2,
            depth: 4,
            backend: "fpga".into(),
            threads: 0,
            coarse: None,
            executor: "threaded".into(),
        }
    }

    /// Defaults of `htims trace`: the E3 throughput workload (511 drift
    /// bins × 1000 m/z, software backend) so traces answer the bench's
    /// "why is this configuration slow" question.
    fn e3() -> Self {
        Self {
            degree: 9,
            mz: 1000,
            frames: 20,
            blocks: 2,
            depth: 4,
            backend: "software".into(),
            threads: 0,
            coarse: None,
            executor: "threaded".into(),
        }
    }

    /// Overrides the defaults with any flags present in `args`.
    fn parse(mut self, args: &[String]) -> Self {
        if let Some(v) = flag(args, "--degree").and_then(|v| v.parse().ok()) {
            self.degree = v;
        }
        if let Some(v) = flag(args, "--mz").and_then(|v| v.parse().ok()) {
            self.mz = v;
        }
        if let Some(v) = flag(args, "--frames").and_then(|v| v.parse().ok()) {
            self.frames = v;
        }
        if let Some(v) = flag(args, "--blocks").and_then(|v| v.parse::<usize>().ok()) {
            self.blocks = v.max(1);
        }
        if let Some(v) = flag(args, "--depth").and_then(|v| v.parse().ok()) {
            self.depth = v;
        }
        if let Some(v) = flag(args, "--backend") {
            self.backend = v;
        }
        if let Some(v) = flag(args, "--threads").and_then(|v| v.parse().ok()) {
            self.threads = v;
        }
        self.coarse = flag(args, "--coarse").and_then(|v| v.parse().ok());
        if let Some(c) = self.coarse {
            if c < 1 || c > self.mz {
                eprintln!("--coarse must be in 1..={} (the m/z bin count)", self.mz);
                std::process::exit(2);
            }
        }
        if let Some(v) = flag(args, "--executor") {
            self.executor = v;
        }
        self
    }

    /// Builds and runs the hybrid stage graph these options describe.
    fn run(&self) -> htims::core::pipeline::PipelineOutput {
        let n = (1usize << self.degree) - 1;
        let mut inst = Instrument::with_drift_bins(n);
        inst.tof.n_bins = self.mz;
        let workload = Workload::three_peptide_mix();
        let schedule = GateSchedule::multiplexed(self.degree);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let data = acquire(
            &inst,
            &workload,
            &schedule,
            1,
            AcquireOptions::default(),
            &mut rng,
        );
        let seq = match schedule {
            GateSchedule::Multiplexed { seq } => seq,
            _ => unreachable!(),
        };
        let generator = FrameGenerator::new(&data, &inst.adc, 1234);
        let cfg = HybridConfig {
            frames: self.frames,
            channel_depth: self.depth,
            binner: self.coarse.map(|c| MzBinner::uniform(self.mz, c)),
            ..Default::default()
        };
        let backend = DeconvBackend::from_name(&self.backend, &seq, cfg.deconv, self.threads)
            .unwrap_or_else(|| {
                eprintln!(
                    "unknown backend '{}' (use fpga | naive | software)",
                    self.backend
                );
                std::process::exit(2);
            });

        let graph = hybrid_pipeline(
            &generator,
            &seq,
            &cfg,
            self.frames * self.blocks as u64,
            self.frames,
            false,
            backend,
        );
        match self.executor.as_str() {
            "inline" => graph.run_inline(),
            "threaded" => graph.run_threaded(),
            other => {
                eprintln!("unknown executor '{other}' (use threaded | inline)");
                std::process::exit(2);
            }
        }
    }
}

/// Runs the unified hybrid stage graph (source → link → [binner] →
/// accumulate → deconvolve) and emits the run's `PipelineReport` as JSON:
/// per-stage busy/blocked time, queue high-water marks, cycle totals, and
/// simulated link time.
fn pipeline(args: &[String]) {
    let out = GraphOpts::small().parse(args).run();
    eprintln!(
        "{} executor, backend {}: {} frames -> {} blocks in {:.1} ms \
         (simulated link {:.3} ms, capture {} cycles, deconvolve {} cycles)",
        out.report.executor,
        out.report.backend,
        out.report.frames,
        out.report.blocks,
        out.report.wall_seconds * 1e3,
        out.report.simulated_link_seconds * 1e3,
        out.report.capture_cycles,
        out.report.deconv_cycles,
    );
    let json = serde_json::to_string_pretty(&out.report).unwrap();
    match flag(args, "--out") {
        Some(path) => {
            std::fs::write(&path, json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("report written to {path}");
        }
        None => println!("{json}"),
    }
}

/// `htims trace`: runs the hybrid stage graph under an `ims_obs`
/// `TraceSession` and writes two artifacts:
///
/// * `--out` (default `trace.json`) — a Chrome trace-event array with one
///   named track per pipeline thread (spans for every stage iteration,
///   recv/send waits, deconv panels, queue-depth counter tracks). Open it
///   at <https://ui.perfetto.dev> or `chrome://tracing`.
/// * `--metrics` (default `metrics.json`) — the full `ObsReport`:
///   provenance (schema version, git describe, threads, panel width),
///   every counter/gauge, and per-stage latency histograms (p50/p90/p99).
///
/// Accepts all `htims pipeline` flags; the defaults are the E3 throughput
/// workload (degree 9, 1000 m/z columns, software backend).
fn trace(args: &[String]) {
    let opts = GraphOpts::e3().parse(args);
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    } else {
        opts.threads
    };
    let session = htims::obs::TraceSession::start(htims::obs::Provenance::collect(
        threads,
        htims::core::deconv_batch::DEFAULT_PANEL_WIDTH,
    ));
    let out = opts.run();
    let report = session.finish();
    eprintln!(
        "{} executor, backend {}: {} frames -> {} blocks in {:.1} ms; \
         {} spans on {} threads",
        out.report.executor,
        out.report.backend,
        out.report.frames,
        out.report.blocks,
        out.report.wall_seconds * 1e3,
        report.spans.len(),
        report.threads.len(),
    );

    let trace_path = flag(args, "--out").unwrap_or_else(|| "trace.json".into());
    let mut trace_text = report.chrome_trace_json();
    trace_text.push('\n');
    std::fs::write(&trace_path, trace_text).unwrap_or_else(|e| {
        eprintln!("cannot write {trace_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("chrome trace written to {trace_path} (open at https://ui.perfetto.dev)");

    let metrics_path = flag(args, "--metrics").unwrap_or_else(|| "metrics.json".into());
    let combined = serde_json::json!({
        "obs": report,
        "pipeline": out.report,
    });
    let mut metrics_text = serde_json::to_string_pretty(&combined).unwrap();
    metrics_text.push('\n');
    std::fs::write(&metrics_path, metrics_text).unwrap_or_else(|e| {
        eprintln!("cannot write {metrics_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("metrics snapshot written to {metrics_path}");
}

/// `htims bench deconv`: times the scalar per-column reference against the
/// batched panel engine on the E3 block (511 drift × 1000 m/z) and emits a
/// machine-readable report (`BENCH_deconv.json` with `--json`).
///
/// Engines:
/// * `scalar-column` — gather each strided column, run the per-column
///   solver (fresh allocations per column), scatter back: the baseline;
/// * `batched` — [`BatchDeconvolver`] panels on one thread, by panel width;
/// * `batched-parallel` — panels distributed over a rayon pool, by threads.
///
/// All engines produce bit-identical output; only the schedule of the
/// arithmetic differs. `speedup_vs_scalar` is relative to the same method's
/// scalar-column row.
fn bench(args: &[String]) {
    match args.get(1).map(String::as_str) {
        Some("deconv") => {}
        other => {
            eprintln!(
                "unknown bench target {:?} (only `deconv` is available)",
                other.unwrap_or("<none>")
            );
            std::process::exit(2);
        }
    }
    let quick = args.iter().any(|a| a == "--quick");
    let degree = 9u32;
    let n = (1usize << degree) - 1;
    let mz_bins = if quick { 200 } else { 1000 };
    let frames: u64 = if quick { 5 } else { 20 };
    let repeats = if quick { 2 } else { 3 };

    let mut inst = Instrument::with_drift_bins(n);
    inst.tof.n_bins = mz_bins;
    let workload = Workload::three_peptide_mix();
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    eprintln!("acquiring bench block ({n} drift x {mz_bins} m/z, {frames} frames)…");
    let data = acquire(
        &inst,
        &workload,
        &schedule,
        frames,
        AcquireOptions::default(),
        &mut rng,
    );

    let cells = (n * mz_bins) as f64;
    let mut rows: Vec<serde_json::Value> = Vec::new();
    let mut record =
        |method: &str, engine: &str, threads: usize, width: usize, secs: f64, scalar_secs: f64| {
            eprintln!(
                "{method:<12} {engine:<16} threads {threads:>2} panel {width:>4}: \
             {:>8.2} ms/block  {:>7.2} Mcells/s  {:.2}x",
                secs * 1e3,
                cells / secs / 1e6,
                scalar_secs / secs
            );
            rows.push(serde_json::json!({
                "method": method,
                "engine": engine,
                "threads": threads,
                "panel_width": width,
                "ms_per_block": secs * 1e3,
                "blocks_per_second": 1.0 / secs,
                "mcells_per_second": cells / secs / 1e6,
                "speedup_vs_scalar": scalar_secs / secs,
            }));
        };

    let widths: &[usize] = if quick { &[32] } else { &[8, 32, 128] };
    let threads = thread_sweep(quick);

    // Floating-point software methods: weighted circulant + simplex FWHT.
    for method in [
        Deconvolver::Weighted { lambda: 1e-6 },
        Deconvolver::SimplexFast,
    ] {
        let name = match &method {
            Deconvolver::Weighted { .. } => "weighted",
            _ => "simplex-fast",
        };
        let solver = method.column_solver(&schedule, &data);
        let scalar_secs = best_secs(repeats, || {
            std::hint::black_box(apply_columnwise(&data.accumulated, |col| solver(col)));
        });
        record(name, "scalar-column", 1, 1, scalar_secs, scalar_secs);
        for &width in widths {
            let engine = BatchDeconvolver::new(&method, &schedule, &data).with_panel_width(width);
            let secs = best_secs(repeats, || {
                std::hint::black_box(engine.deconvolve_map(&data.accumulated));
            });
            record(name, "batched", 1, width, secs, scalar_secs);
        }
        let panel_width = BatchDeconvolver::new(&method, &schedule, &data).panel_width();
        for &t in &threads {
            let secs = (0..repeats)
                .map(|_| deconvolve_with_threads(&method, &schedule, &data, t).1)
                .fold(f64::INFINITY, f64::min);
            record(name, "batched-parallel", t, panel_width, secs, scalar_secs);
        }
    }

    // The integer fixed-point datapath (the FPGA-model kernel the software
    // pipeline backend runs).
    let seq = MSequence::new(degree);
    let core = DeconvCore::new(&seq, DeconvConfig::default());
    let block: Vec<u64> = data
        .accumulated
        .data()
        .iter()
        .map(|&v| v.round() as u64)
        .collect();
    let scalar_secs = best_secs(repeats, || {
        let mut out = vec![0i64; n * mz_bins];
        let mut column = vec![0u64; n];
        for mz in 0..mz_bins {
            for (d, c) in column.iter_mut().enumerate() {
                *c = block[d * mz_bins + mz];
            }
            for (d, v) in core.deconvolve_column(&column).into_iter().enumerate() {
                out[d * mz_bins + mz] = v;
            }
        }
        std::hint::black_box(out);
    });
    record(
        "fixed-point",
        "scalar-column",
        1,
        1,
        scalar_secs,
        scalar_secs,
    );
    for &width in widths {
        let secs = best_secs(repeats, || {
            let mut out = vec![0i64; n * mz_bins];
            let mut panel: Vec<u64> = Vec::new();
            let mut solved: Vec<i64> = Vec::new();
            let mut work: Vec<i64> = Vec::new();
            let mut c0 = 0;
            while c0 < mz_bins {
                let w = width.min(mz_bins - c0);
                panel.clear();
                panel.reserve(n * w);
                for d in 0..n {
                    panel.extend_from_slice(&block[d * mz_bins + c0..d * mz_bins + c0 + w]);
                }
                solved.resize(n * w, 0);
                core.deconvolve_panel_into(&panel, w, &mut solved, &mut work);
                for d in 0..n {
                    out[d * mz_bins + c0..d * mz_bins + c0 + w]
                        .copy_from_slice(&solved[d * w..(d + 1) * w]);
                }
                c0 += w;
            }
            std::hint::black_box(out);
        });
        record("fixed-point", "batched", 1, width, secs, scalar_secs);
    }

    // Schema v2: adds `provenance` so BENCH_*.json files are comparable
    // across PRs (which tree built the binary, how wide the machine was).
    let report = serde_json::json!({
        "schema_version": htims::obs::OBS_SCHEMA_VERSION,
        "provenance": htims::obs::Provenance::collect(
            thread_sweep(quick).last().copied().unwrap_or(1),
            htims::core::deconv_batch::DEFAULT_PANEL_WIDTH,
        ),
        "block": serde_json::json!({ "drift_bins": n, "mz_bins": mz_bins, "frames": frames }),
        "rows": rows,
    });
    if args.iter().any(|a| a == "--json") || flag(args, "--out").is_some() {
        let path = flag(args, "--out").unwrap_or_else(|| "BENCH_deconv.json".into());
        let mut text = serde_json::to_string_pretty(&report).unwrap();
        text.push('\n');
        std::fs::write(&path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("bench report written to {path}");
    }
}

/// Best-of-`repeats` wall time of `f`, in seconds.
fn best_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Thread counts for the parallel rows: powers of two up to the machine
/// width (always including 1 for the serial-overhead comparison).
fn thread_sweep(quick: bool) -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4);
    if quick {
        return vec![max.min(4)];
    }
    let mut counts = vec![1usize];
    let mut t = 2;
    while t <= max {
        counts.push(t);
        t *= 2;
    }
    counts
}

fn feasibility(args: &[String]) {
    let degree: u32 = flag(args, "--degree")
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    let mz: usize = flag(args, "--mz")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let n = (1usize << degree) - 1;
    let seq = MSequence::new(degree);
    let acc = AccumulatorCore::new(n, mz, 32);
    let deconv = DeconvCore::new(&seq, DeconvConfig::default());
    for device in [
        FpgaDevice::xc2vp50(),
        FpgaDevice::xc4vlx160(),
        FpgaDevice::instrument_board(),
    ] {
        let report = ResourceReport::evaluate(
            &device,
            &acc,
            &deconv,
            &DmaLink::rapidarray(),
            50,
            0.02 * n as f64 / 511.0,
        );
        println!(
            "{:<26} BRAM {:>4}/{:<4} DSP {:>3}/{:<3} fits={:<5} rt-margin {:>8.1}x viable={}",
            report.device,
            report.bram_used,
            report.bram_available,
            report.dsp_used,
            report.dsp_available,
            report.fits,
            report.realtime_margin,
            report.viable()
        );
    }
}
