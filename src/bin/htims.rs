//! `htims` — command-line front end for the HT-IMS simulation.
//!
//! ```text
//! htims print-config                       # emit the default experiment config as JSON
//! htims run --config cfg.json [--out f]    # acquire → deconvolve → features/identifications
//! htims sequence --degree 9 [--factor 2]   # gate-sequence properties and quality metrics
//! htims feasibility --degree 9 --mz 100    # FPGA resource / real-time report
//! htims pipeline --degree 6 --mz 60        # run the stage graph, emit PipelineReport JSON
//! ```

use htims::core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims::core::analysis::{build_library, find_features, match_library};
use htims::core::config::ExperimentConfig;
use htims::core::deconvolution::Deconvolver;
use htims::core::hybrid::{hybrid_pipeline, FrameGenerator, HybridConfig};
use htims::core::pipeline::DeconvBackend;
use htims::fpga::deconv::DeconvConfig;
use htims::fpga::{AccumulatorCore, DeconvCore, DmaLink, FpgaDevice, MzBinner, ResourceReport};
use htims::physics::{Instrument, Workload};
use htims::prs::{metrics, MSequence, OversampledSequence};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "print-config" => print_config(),
        "run" => run(&args),
        "sequence" => sequence(&args),
        "feasibility" => feasibility(&args),
        "pipeline" => pipeline(&args),
        _ => help(),
    }
}

fn help() {
    eprintln!(
        "usage:\n  htims print-config\n  htims run --config <file.json> [--out <file.json>]\n  \
         htims sequence --degree <n> [--factor <m>]\n  htims feasibility --degree <n> --mz <bins>\n  \
         htims pipeline [--degree <n>] [--mz <bins>] [--frames <per-block>] [--blocks <n>]\n    \
         [--depth <channel depth>] [--backend fpga|naive|software] [--threads <n>]\n    \
         [--coarse <bins>] [--executor threaded|inline] [--out <file.json>]"
    );
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn print_config() {
    println!("{}", ExperimentConfig::default().to_json());
}

fn run(args: &[String]) {
    let path = flag(args, "--config").unwrap_or_else(|| {
        eprintln!("--config <file.json> is required (try `htims print-config`)");
        std::process::exit(2);
    });
    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let config = ExperimentConfig::from_json(&json).unwrap_or_else(|e| {
        eprintln!("invalid config: {e}");
        std::process::exit(2);
    });

    let (instrument, workload, schedule, options) = config.build();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    eprintln!(
        "acquiring {} frames of '{}' with schedule {}…",
        config.frames,
        workload.name,
        schedule.name()
    );
    let data = acquire(
        &instrument,
        &workload,
        &schedule,
        config.frames,
        options,
        &mut rng,
    );
    eprintln!(
        "ion utilization {:.1}%, max packet {:.3e} e",
        100.0 * data.ion_utilization,
        data.packet_charges
    );
    let method = Deconvolver::Weighted { lambda: 1e-6 };
    let map = method.deconvolve(&schedule, &data);
    let features = find_features(&map, 8.0);
    let library = build_library(&instrument, &workload);
    let ids = match_library(&features, &library, 3, 2);
    eprintln!(
        "{} features; {}/{} species identified",
        features.len(),
        ids.len(),
        library.len()
    );

    let report = serde_json::json!({
        "config": config,
        "ion_utilization": data.ion_utilization,
        "packet_charges": data.packet_charges,
        "n_features": features.len(),
        "library_size": library.len(),
        "identifications": ids,
    });
    match flag(args, "--out") {
        Some(out) => {
            std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap()).unwrap_or_else(
                |e| {
                    eprintln!("cannot write {out}: {e}");
                    std::process::exit(2);
                },
            );
            eprintln!("report written to {out}");
        }
        None => println!("{}", serde_json::to_string_pretty(&report).unwrap()),
    }
}

fn sequence(args: &[String]) {
    let degree: u32 = flag(args, "--degree")
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    let factor: usize = flag(args, "--factor")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let seq = MSequence::new(degree);
    println!(
        "m-sequence: degree {degree}, N = {}, polynomial {}",
        seq.len(),
        seq.poly().to_poly_string()
    );
    let (bits, label): (Vec<bool>, &str) = if factor > 1 {
        let o = OversampledSequence::modified_default(seq.clone(), factor);
        println!(
            "oversampled x{factor}: length {}, {} added pulses at {:?}",
            o.len(),
            o.added_pulses().len(),
            o.added_pulses()
        );
        (o.bits().to_vec(), "modified-oversampled")
    } else {
        (seq.bits().to_vec(), "base")
    };
    let m = metrics::analyze(&bits);
    println!(
        "{label}: duty cycle {:.3}, pulses/period {}, autocorrelation contrast {:.1} dB,\n\
         condition number {:.2}, inverse noise gain {:.4}",
        m.duty_cycle,
        m.pulse_count,
        m.autocorrelation_contrast_db,
        m.condition_number,
        m.noise_gain
    );
}

/// Runs the unified hybrid stage graph (source → link → [binner] →
/// accumulate → deconvolve) and emits the run's `PipelineReport` as JSON:
/// per-stage busy/blocked time, queue high-water marks, cycle totals, and
/// simulated link time.
fn pipeline(args: &[String]) {
    let degree: u32 = flag(args, "--degree")
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let mz: usize = flag(args, "--mz")
        .and_then(|v| v.parse().ok())
        .unwrap_or(60);
    let frames: u64 = flag(args, "--frames")
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let blocks: usize = flag(args, "--blocks")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
        .max(1);
    let depth: usize = flag(args, "--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let backend_name = flag(args, "--backend").unwrap_or_else(|| "fpga".into());
    let threads: usize = flag(args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let coarse: Option<usize> = flag(args, "--coarse").and_then(|v| v.parse().ok());
    if let Some(c) = coarse {
        if c < 1 || c > mz {
            eprintln!("--coarse must be in 1..={mz} (the m/z bin count)");
            std::process::exit(2);
        }
    }
    let executor = flag(args, "--executor").unwrap_or_else(|| "threaded".into());

    let n = (1usize << degree) - 1;
    let mut inst = Instrument::with_drift_bins(n);
    inst.tof.n_bins = mz;
    let workload = Workload::three_peptide_mix();
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let data = acquire(
        &inst,
        &workload,
        &schedule,
        1,
        AcquireOptions::default(),
        &mut rng,
    );
    let seq = match schedule {
        GateSchedule::Multiplexed { seq } => seq,
        _ => unreachable!(),
    };
    let generator = FrameGenerator::new(&data, &inst.adc, 1234);
    let cfg = HybridConfig {
        frames,
        channel_depth: depth,
        binner: coarse.map(|c| MzBinner::uniform(mz, c)),
        ..Default::default()
    };
    let backend = DeconvBackend::from_name(&backend_name, &seq, cfg.deconv, threads)
        .unwrap_or_else(|| {
            eprintln!("unknown backend '{backend_name}' (use fpga | naive | software)");
            std::process::exit(2);
        });

    let graph = hybrid_pipeline(
        &generator,
        &seq,
        &cfg,
        frames * blocks as u64,
        frames,
        false,
        backend,
    );
    let out = match executor.as_str() {
        "inline" => graph.run_inline(),
        "threaded" => graph.run_threaded(),
        other => {
            eprintln!("unknown executor '{other}' (use threaded | inline)");
            std::process::exit(2);
        }
    };
    eprintln!(
        "{} executor, backend {}: {} frames -> {} blocks in {:.1} ms \
         (simulated link {:.3} ms, capture {} cycles, deconvolve {} cycles)",
        out.report.executor,
        out.report.backend,
        out.report.frames,
        out.report.blocks,
        out.report.wall_seconds * 1e3,
        out.report.simulated_link_seconds * 1e3,
        out.report.capture_cycles,
        out.report.deconv_cycles,
    );
    let json = serde_json::to_string_pretty(&out.report).unwrap();
    match flag(args, "--out") {
        Some(path) => {
            std::fs::write(&path, json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("report written to {path}");
        }
        None => println!("{json}"),
    }
}

fn feasibility(args: &[String]) {
    let degree: u32 = flag(args, "--degree")
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    let mz: usize = flag(args, "--mz")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let n = (1usize << degree) - 1;
    let seq = MSequence::new(degree);
    let acc = AccumulatorCore::new(n, mz, 32);
    let deconv = DeconvCore::new(&seq, DeconvConfig::default());
    for device in [
        FpgaDevice::xc2vp50(),
        FpgaDevice::xc4vlx160(),
        FpgaDevice::instrument_board(),
    ] {
        let report = ResourceReport::evaluate(
            &device,
            &acc,
            &deconv,
            &DmaLink::rapidarray(),
            50,
            0.02 * n as f64 / 511.0,
        );
        println!(
            "{:<26} BRAM {:>4}/{:<4} DSP {:>3}/{:<3} fits={:<5} rt-margin {:>8.1}x viable={}",
            report.device,
            report.bram_used,
            report.bram_available,
            report.dsp_used,
            report.dsp_available,
            report.fits,
            report.realtime_margin,
            report.viable()
        );
    }
}
