//! The hybrid stage-graph runner behind `htims pipeline|trace|serve`.
//!
//! A [`GraphSpec`] is the full, reproducible description of one run:
//! graph shape (PRS degree, m/z bins, frames, blocks, channel depth,
//! optional coarse binning), backend/executor selection, thread count,
//! and the RNG seed that drives both the acquisition and the frame
//! stream. The CLI parses flags into one; the integration tests build
//! them directly — two runs of an identical spec produce bit-identical
//! blocks and identical deterministic metrics counts.

use crate::core::acquisition::{acquire, AcquireOptions, GateSchedule};
use crate::core::capture::{CaptureLog, CAPTURE_SCHEMA_VERSION};
use crate::core::deconv_batch::DEFAULT_PANEL_WIDTH;
use crate::core::fault::{FaultInjector, FaultSpec};
use crate::core::hybrid::{hybrid_pipeline, FrameGenerator, HybridConfig};
use crate::core::pipeline::{
    output_fingerprint, DeconvBackend, Pipeline, PipelineOutput, SupervisorConfig,
};
use crate::fpga::MzBinner;
use crate::physics::{Instrument, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One reproducible stage-graph run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSpec {
    /// PRS degree (drift bins = 2^degree − 1).
    pub degree: u32,
    /// m/z bins per frame.
    pub mz: usize,
    /// Frames folded into each block.
    pub frames: u64,
    /// Blocks to produce.
    pub blocks: usize,
    /// Bounded-channel depth (threaded executor back-pressure).
    pub depth: usize,
    /// Deconvolution backend: `fpga` | `naive` | `software`.
    pub backend: String,
    /// Worker threads for the software backend (0 = machine width).
    pub threads: usize,
    /// Coarse m/z bin count for the on-chip binner stage, if any.
    pub coarse: Option<usize>,
    /// Executor: `threaded` | `scheduled` | `inline` (the first two are
    /// the same work-stealing runtime under different report tags).
    pub executor: String,
    /// Seed for the acquisition RNG and the frame stream — the whole run
    /// is a pure function of the spec including this.
    pub seed: u64,
    /// Compact fault spec (e.g. `dma.bitflip=1e-5,frame.drop=1e-4`) armed
    /// on the run, or `None` for the clean path. Chaotic runs stay a pure
    /// function of `(spec, seed)` — same spec, same faults, same blocks.
    pub faults: Option<String>,
    /// Watchdog stall timeout in milliseconds; `None` leaves the watchdog
    /// off (threaded executor only).
    pub stall_timeout_ms: Option<u64>,
    /// When set, the accumulate stage attaches a CSR sidecar to
    /// low-occupancy blocks and FWHT-capable backends skip the empty
    /// columns (bit-identical output; `report.sparse_blocks` counts how
    /// many blocks took the sparse path).
    pub sparse: bool,
    /// Declarative SLO targets (`p99=5ms,completeness=0.999`); the p99
    /// target arms per-frame end-to-end latency tracking on the run.
    /// Observability-only: not part of the config fingerprint.
    pub slo: Option<String>,
    /// Directory for flight-recorder black-box dumps; a run that ends
    /// Degraded/Failed writes `flight_<fingerprint>.jsonl` there.
    /// Observability-only: not part of the config fingerprint.
    pub flight_dir: Option<String>,
    /// Directory for the continuous-profiler dump (`profile.folded` +
    /// `profile.json`) written after the run by `htims
    /// pipeline|trace|serve --profile <dir>`.
    /// Observability-only: not part of the config fingerprint.
    pub profile_dir: Option<String>,
    /// m/z-range shards the accumulate stage splits its RAM into (0 and 1
    /// both mean the monolithic fast path). Merged output is bit-identical
    /// for every count, so this is not part of the config fingerprint.
    #[serde(default)]
    pub shards: usize,
    /// Directory for the frame capture log: every sourced frame is
    /// appended (pre-corruption), a `manifest.json` carrying this spec and
    /// the output FNV is written after the run, and [`replay`] reproduces
    /// the run bit-for-bit from the pair. While the run is live the same
    /// log rebuilds shards killed by the `shard.kill` fault site.
    /// Observability-only: not part of the config fingerprint.
    #[serde(default)]
    pub capture_log: Option<String>,
}

impl GraphSpec {
    /// Defaults of `htims pipeline`: a small, fast smoke graph.
    pub fn small() -> Self {
        Self {
            degree: 6,
            mz: 60,
            frames: 16,
            blocks: 2,
            depth: 4,
            backend: "fpga".into(),
            threads: 0,
            coarse: None,
            executor: "threaded".into(),
            seed: 7,
            faults: None,
            stall_timeout_ms: None,
            sparse: false,
            slo: None,
            flight_dir: None,
            profile_dir: None,
            shards: 0,
            capture_log: None,
        }
    }

    /// Defaults of `htims trace` and `htims serve`: the E3 throughput
    /// workload (511 drift bins × 1000 m/z, software backend) so traces
    /// and live series answer the bench's "why is this configuration
    /// slow" question.
    pub fn e3() -> Self {
        Self {
            degree: 9,
            mz: 1000,
            frames: 20,
            blocks: 2,
            depth: 4,
            backend: "software".into(),
            threads: 0,
            coarse: None,
            executor: "threaded".into(),
            seed: 7,
            faults: None,
            stall_timeout_ms: None,
            sparse: false,
            slo: None,
            flight_dir: None,
            profile_dir: None,
            shards: 0,
            capture_log: None,
        }
    }

    /// Drift-time bins: the PRS length `2^degree − 1`.
    pub fn drift_bins(&self) -> usize {
        (1usize << self.degree) - 1
    }

    /// `threads` with 0 resolved to the machine width.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// The run's config fingerprint (see [`ims_obs::ledger`]): joins the
    /// ledger line this run appends with bench rows of the same shape.
    pub fn fingerprint(&self) -> String {
        ims_obs::config_fingerprint(&ims_obs::FingerprintParts {
            drift_bins: self.drift_bins(),
            mz_bins: self.mz,
            method: &self.backend,
            engine: &self.executor,
            threads: self.resolved_threads(),
            panel_width: DEFAULT_PANEL_WIDTH,
        })
    }

    /// Builds and runs the graph. Errors (unknown backend/executor,
    /// out-of-range coarse bins) are returned, not printed — the CLI
    /// decides how to die. When `capture_log` is set, the log is fsynced
    /// and a `manifest.json` (spec + output FNV) is written next to the
    /// segments after the run, closing the replay contract.
    pub fn run(&self) -> Result<PipelineOutput, String> {
        let (graph, capture) = self.build_inner()?;
        let out = run_on_executor(&self.executor, graph)?;
        if let Some(log) = capture {
            log.finish()
                .map_err(|e| format!("cannot finish capture log: {e}"))?;
            let manifest = CaptureManifest {
                schema_version: CAPTURE_SCHEMA_VERSION,
                output_fnv: output_fingerprint(&out.blocks),
                spec: self.clone(),
            };
            let text = serde_json::to_string_pretty(&manifest)
                .map_err(|e| format!("cannot serialise capture manifest: {e}"))?;
            std::fs::write(log.dir().join("manifest.json"), text)
                .map_err(|e| format!("cannot write capture manifest: {e}"))?;
        }
        Ok(out)
    }

    /// Builds the pipeline without running it — what the session
    /// multiplexer uses to admit many specs onto one scheduler. The
    /// executor field is validated here too, so a bad spec fails at
    /// admission rather than mid-run.
    pub fn build(&self) -> Result<crate::core::pipeline::Pipeline, String> {
        self.build_inner().map(|(graph, _)| graph)
    }

    /// [`build`](Self::build) plus the writable capture-log handle when
    /// the spec asks for one, so [`run`](Self::run) can finish the log
    /// and stamp the manifest after the executor drains.
    fn build_inner(&self) -> Result<(Pipeline, Option<CaptureLog>), String> {
        if !matches!(self.executor.as_str(), "inline" | "threaded" | "scheduled") {
            return Err(format!(
                "unknown executor '{}' (use threaded | scheduled | inline)",
                self.executor
            ));
        }
        if let Some(c) = self.coarse {
            if c < 1 || c > self.mz {
                return Err(format!(
                    "coarse bins must be in 1..={} (the m/z bin count), got {c}",
                    self.mz
                ));
            }
        }
        let n = self.drift_bins();
        let mut inst = Instrument::with_drift_bins(n);
        inst.tof.n_bins = self.mz;
        let workload = Workload::three_peptide_mix();
        let schedule = GateSchedule::multiplexed(self.degree);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let data = acquire(
            &inst,
            &workload,
            &schedule,
            1,
            AcquireOptions::default(),
            &mut rng,
        );
        let seq = match schedule {
            GateSchedule::Multiplexed { seq } => seq,
            _ => unreachable!(),
        };
        // Frame-stream seed derived from the run seed (offset keeps the
        // historical default stream: seed 7 → generator seed 1234).
        let generator = FrameGenerator::new(&data, &inst.adc, self.seed.wrapping_add(1227));
        let cfg = HybridConfig {
            frames: self.frames,
            channel_depth: self.depth,
            binner: self.coarse.map(|c| MzBinner::uniform(self.mz, c)),
            sparse: self.sparse,
            shards: self.shards,
            ..Default::default()
        };
        let backend = DeconvBackend::from_name(&self.backend, &seq, cfg.deconv, self.threads)
            .ok_or_else(|| {
                format!(
                    "unknown backend '{}' (use fpga | naive | software)",
                    self.backend
                )
            })?;

        let mut graph = hybrid_pipeline(
            &generator,
            &seq,
            &cfg,
            self.frames * self.blocks as u64,
            self.frames,
            false,
            backend,
        );
        if let Some(text) = &self.faults {
            let spec = FaultSpec::parse(text).map_err(|e| format!("bad --faults spec: {e}"))?;
            graph = graph.with_faults(FaultInjector::new(self.seed, spec));
        }
        if self.stall_timeout_ms.is_some() {
            graph = graph.with_supervisor(SupervisorConfig {
                stall_timeout: self.stall_timeout_ms.map(std::time::Duration::from_millis),
                ..Default::default()
            });
        }
        if let Some(spec) = self.slo_spec()? {
            if let Some(p99) = spec.p99_ns {
                graph = graph.with_latency_slo(p99);
            }
        }
        if let Some(dir) = &self.flight_dir {
            graph = graph.with_flight_dump(dir, &self.fingerprint());
        }
        let mut capture = None;
        if let Some(dir) = &self.capture_log {
            let log = CaptureLog::create(Path::new(dir))
                .map_err(|e| format!("cannot create capture log in {dir}: {e}"))?;
            graph = graph.with_capture_log(log.clone());
            capture = Some(log);
        }
        Ok((graph, capture))
    }

    /// Parsed `--slo` targets, or `None` when no SLO was declared.
    pub fn slo_spec(&self) -> Result<Option<ims_obs::SloSpec>, String> {
        match &self.slo {
            Some(text) => ims_obs::SloSpec::parse(text)
                .map(Some)
                .map_err(|e| format!("bad --slo spec: {e}")),
            None => Ok(None),
        }
    }
}

/// Runs a built pipeline on the named executor.
fn run_on_executor(executor: &str, graph: Pipeline) -> Result<PipelineOutput, String> {
    match executor {
        "inline" => Ok(graph.run_inline()),
        "threaded" => Ok(graph.run_threaded()),
        "scheduled" => Ok(graph.run_scheduled()),
        other => Err(format!(
            "unknown executor '{other}' (use threaded | scheduled | inline)"
        )),
    }
}

/// The `manifest.json` written next to a capture log's segments: the spec
/// that produced the log plus the run's output FNV, which [`replay`] must
/// reproduce bit-for-bit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaptureManifest {
    /// Capture-log schema version the segments were written under.
    pub schema_version: u32,
    /// FNV-1a 64 fingerprint of the captured run's deconvolved blocks.
    pub output_fnv: u64,
    /// The full spec of the captured run.
    pub spec: GraphSpec,
}

/// A replayed run and the fingerprint contract it was held to.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The replayed run's output.
    pub output: PipelineOutput,
    /// The captured run's output FNV, from the manifest.
    pub expected_fnv: u64,
    /// The replayed run's output FNV.
    pub actual_fnv: u64,
}

impl ReplayOutcome {
    /// Did the replay reproduce the captured output bit-for-bit?
    pub fn matches(&self) -> bool {
        self.expected_fnv == self.actual_fnv
    }
}

/// Replays a captured run from `dir` (segments + `manifest.json`) and
/// checks the output FNV against the manifest — `htims pipeline --replay`.
///
/// Source-side fault sites (`frame.drop`, `source.stall`) are stripped
/// before the run: frames those sites consumed were never logged, so
/// re-arming them would fault surviving frames twice. Downstream sites are
/// keyed by seq number / block index and re-fire exactly as captured.
pub fn replay(dir: &str) -> Result<ReplayOutcome, String> {
    let manifest_path = Path::new(dir).join("manifest.json");
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let manifest: CaptureManifest =
        serde_json::from_str(&text).map_err(|e| format!("bad capture manifest: {e}"))?;
    if manifest.schema_version != CAPTURE_SCHEMA_VERSION {
        return Err(format!(
            "capture log schema v{} is not the supported v{CAPTURE_SCHEMA_VERSION}",
            manifest.schema_version
        ));
    }
    let mut spec = manifest.spec.clone();
    spec.capture_log = None;
    if let Some(text) = &spec.faults {
        let parsed =
            FaultSpec::parse(text).map_err(|e| format!("bad fault spec in manifest: {e}"))?;
        let stripped = parsed.without_source_sites();
        spec.faults = if stripped.is_zero() {
            None
        } else {
            Some(stripped.to_string())
        };
    }
    let log = CaptureLog::open(Path::new(dir))
        .map_err(|e| format!("cannot open capture log in {dir}: {e}"))?;
    let packets = log
        .read_all()
        .map_err(|e| format!("cannot read capture log in {dir}: {e}"))?;
    // The read-only log rides along so `shard.kill` rebuilds re-fire in
    // the replay exactly as they did in the captured run (appends from
    // the replaying source are no-ops on a read-only log).
    let graph = spec
        .build()?
        .with_replay_source(packets)
        .with_capture_log(log);
    let output = run_on_executor(&spec.executor, graph)?;
    let actual_fnv = output_fingerprint(&output.blocks);
    Ok(ReplayOutcome {
        output,
        expected_fnv: manifest.output_fnv,
        actual_fnv,
    })
}
