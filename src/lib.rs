//! Umbrella crate for the HT-IMS data-processing simulation.
//!
//! Re-exports the workspace crates so the examples and integration tests can
//! use a single dependency. Downstream users should depend on the individual
//! crates (`htims-core`, `ims-physics`, …) directly.

pub mod chaos;
pub mod graph;

pub use htims_core as core;
pub use ims_fpga as fpga;
pub use ims_obs as obs;
pub use ims_physics as physics;
pub use ims_prs as prs;
pub use ims_signal as signal;
