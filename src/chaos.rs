//! The fault-matrix soak behind `htims chaos`.
//!
//! A chaos run takes one [`GraphSpec`] shape, crosses it with a matrix of
//! fault specs and seeds, and runs every cell **twice**: because injected
//! faults are a pure function of `(seed, spec)`, the two runs must agree
//! on the output hash, the fault counts, and the verdict — any divergence
//! is flagged as `reproducible: false` and fails the soak. The result is
//! a schema-versioned survival report suitable for CI gating.

use crate::core::fault::{FaultCounts, FaultSpec};
use crate::core::pipeline::{PipelineError, PipelineOutput, RunOutcome};
use crate::graph::GraphSpec;
use serde::{Deserialize, Serialize};

/// Version of the survival-report JSON schema. Bump on breaking change.
pub const CHAOS_SCHEMA_VERSION: u32 = 1;

/// The default fault matrix: a clean control plus one cell per injection
/// site, plus one compound cell mixing all of them. Rates are sized for a
/// small graph — high enough that every site demonstrably fires, low
/// enough that the run still produces output.
pub fn default_matrix() -> Vec<String> {
    vec![
        String::new(), // clean control: must complete untouched
        "frame.drop=0.05".into(),
        "dma.bitflip=2e-5".into(),
        "deconv.fail=1".into(),
        "source.stall=2ms@0.2".into(),
        "shard.kill=0.5".into(),
        "frame.drop=0.02,dma.bitflip=1e-5,deconv.fail=0.25,source.stall=1ms@0.05".into(),
    ]
}

/// One `(fault spec, seed)` cell of the soak, run twice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosCell {
    /// The compact fault spec this cell armed (empty = clean control).
    pub faults: String,
    /// The seed shared by the acquisition, the frame stream, and the
    /// injector.
    pub seed: u64,
    /// Verdict of the first run (`completed` | `degraded` | `failed`).
    pub outcome: String,
    /// Structured fatal errors from the first run.
    #[serde(default)]
    pub errors: Vec<PipelineError>,
    /// Injected-fault counts from the first run.
    #[serde(default)]
    pub fault_counts: FaultCounts,
    /// Frames quarantined by integrity checks in the first run.
    #[serde(default)]
    pub frames_quarantined: u64,
    /// Blocks recovered through the software deconv fallback.
    #[serde(default)]
    pub deconv_fallbacks: u64,
    /// Whether this cell ran with a frame capture log armed. A spec with
    /// `shard.kill` produces **two** cells per seed — one with the log
    /// (kills rebuild, run completes) and one without (shards lost, run
    /// degrades) — distinguishable by this flag.
    #[serde(default)]
    pub capture: bool,
    /// Accumulator shards killed and rebuilt from the capture log.
    #[serde(default)]
    pub shard_rebuilds: u64,
    /// Accumulator shards lost for good (killed with no log to rebuild
    /// from); their m/z ranges drain zeros.
    #[serde(default)]
    pub shards_lost: u64,
    /// Output blocks produced.
    pub blocks: u64,
    /// FNV-1a hash over all output blocks (index, frames, and every data
    /// word) — the bit-identity token the repeat run must match.
    pub output_fnv: u64,
    /// Whether the repeat run reproduced the hash, counts, and verdict
    /// (and, when flight dumps are armed, the dump contents).
    pub reproducible: bool,
    /// Wall time of the first run, seconds.
    pub wall_seconds: f64,
    /// Flight-recorder dump of the first run, when the soak was launched
    /// with `--flight-dir` and the cell degraded or failed.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub flight_dump: Option<String>,
    /// Whether both runs' flight dumps were byte-identical after
    /// timestamp normalisation. `None` when no dump was expected.
    #[serde(default)]
    #[serde(skip_serializing_if = "Option::is_none")]
    pub dump_reproducible: Option<bool>,
}

/// Tallies over all cells of a soak.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosSummary {
    /// Cells whose first run completed clean.
    pub completed: u64,
    /// Cells that degraded but survived.
    pub degraded: u64,
    /// Cells whose run failed (structured errors, partial output).
    pub failed: u64,
    /// Cells whose repeat run diverged — always a bug.
    pub irreproducible: u64,
}

/// The schema-versioned survival report emitted by `htims chaos`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SurvivalReport {
    /// Schema version ([`CHAOS_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Config fingerprint of the graph shape (see `ims_obs::ledger`).
    pub fingerprint: String,
    /// Executor the soak ran under.
    pub executor: String,
    /// Deconvolution backend of the graph shape.
    pub backend: String,
    /// Seeds crossed with the fault matrix.
    pub seeds: Vec<u64>,
    /// One entry per `(faults, seed)` cell.
    pub cells: Vec<ChaosCell>,
    /// Tallies over the cells.
    pub summary: ChaosSummary,
}

impl SurvivalReport {
    /// The CI gate: every cell reproduced, and the only failures are ones
    /// the matrix *asked* for (a cell is allowed to fail only if its spec
    /// makes failure unavoidable; with the default matrix and fallback
    /// enabled, none do).
    pub fn survived(&self) -> bool {
        self.summary.irreproducible == 0 && self.summary.failed == 0
    }
}

/// Hashes a run's output blocks into a single FNV-1a token: block index,
/// frame count, and every deconvolved word, all little-endian.
pub fn output_fingerprint(out: &PipelineOutput) -> u64 {
    crate::core::pipeline::output_fingerprint(&out.blocks)
}

/// Compares the flight dumps of a cell's two runs after timestamp
/// normalisation. Returns the first run's dump path (for the report) and
/// the byte-identity verdict; `(None, None)` when neither run dumped.
fn compare_dumps(a: &Option<String>, b: &Option<String>) -> (Option<String>, Option<bool>) {
    match (a, b) {
        (Some(a), Some(b)) => {
            let norm = |path: &str| {
                std::fs::read_to_string(path)
                    .ok()
                    .map(|text| ims_obs::flight::strip_timestamps(&text))
            };
            let (na, nb) = (norm(a), norm(b));
            (Some(a.clone()), Some(na.is_some() && na == nb))
        }
        (None, None) => (None, None),
        // One run dumped and the other did not — irreproducible by itself.
        _ => (a.clone(), Some(false)),
    }
}

/// Runs the full `(spec, seed)` matrix over `base`'s graph shape, running
/// each cell twice to check determinism. A spec arming `shard.kill` fans
/// out into a capture/no-capture cell pair per seed: the capture variant
/// must rebuild every killed shard and complete, the bare variant must
/// degrade with the lost ranges blamed. Errors (a malformed fault spec,
/// an unknown backend) abort the whole soak.
pub fn run_matrix(
    base: &GraphSpec,
    matrix: &[String],
    seeds: &[u64],
) -> Result<SurvivalReport, String> {
    let mut cells = Vec::with_capacity(matrix.len() * seeds.len());
    let mut summary = ChaosSummary::default();
    let mut cell_idx = 0usize;
    // Capture logs land under `--capture-log` when given (CI keeps them
    // as artifacts), else under a per-process temp dir cleaned up below.
    let capture_base = base.capture_log.clone();
    let temp_capture = std::env::temp_dir().join(format!("htims_chaos_cap_{}", std::process::id()));
    for faults in matrix {
        let parsed = FaultSpec::parse(faults).map_err(|e| format!("bad --faults spec: {e}"))?;
        let variants: &[bool] = if parsed.shard_kill > 0.0 {
            &[true, false]
        } else {
            &[false]
        };
        for &seed in seeds {
            for &capture in variants {
                let mut spec = base.clone();
                spec.seed = seed;
                spec.faults = (!faults.is_empty()).then(|| faults.clone());
                spec.capture_log = None;
                // Both runs of a cell write `flight_<fingerprint>.jsonl`
                // (and, when capturing, a frame log), so give each run its
                // own subdirectory to keep the pair comparable.
                let mut spec_b = spec.clone();
                if let Some(dir) = &base.flight_dir {
                    spec.flight_dir = Some(format!("{dir}/cell{cell_idx}_a"));
                    spec_b.flight_dir = Some(format!("{dir}/cell{cell_idx}_b"));
                }
                if capture {
                    let root = capture_base
                        .clone()
                        .unwrap_or_else(|| temp_capture.display().to_string());
                    spec.capture_log = Some(format!("{root}/cell{cell_idx}_a"));
                    spec_b.capture_log = Some(format!("{root}/cell{cell_idx}_b"));
                }
                cell_idx += 1;
                let first = spec.run()?;
                let second = spec_b.run()?;
                let fnv = output_fingerprint(&first);
                let (flight_dump, dump_reproducible) =
                    compare_dumps(&first.report.flight_dump, &second.report.flight_dump);
                let reproducible = fnv == output_fingerprint(&second)
                    && first.report.faults == second.report.faults
                    && first.report.outcome == second.report.outcome
                    && first.report.frames_quarantined == second.report.frames_quarantined
                    && first.report.deconv_fallbacks == second.report.deconv_fallbacks
                    && first.report.shard_rebuilds == second.report.shard_rebuilds
                    && first.report.shards_lost == second.report.shards_lost
                    && first.report.lost_mz_ranges == second.report.lost_mz_ranges
                    && dump_reproducible.unwrap_or(true);
                match first.report.outcome {
                    RunOutcome::Completed => summary.completed += 1,
                    RunOutcome::Degraded => summary.degraded += 1,
                    RunOutcome::Failed => summary.failed += 1,
                }
                if !reproducible {
                    summary.irreproducible += 1;
                }
                cells.push(ChaosCell {
                    faults: faults.clone(),
                    seed,
                    outcome: first.report.outcome.as_str().to_string(),
                    errors: first.report.errors.clone(),
                    fault_counts: first.report.faults,
                    frames_quarantined: first.report.frames_quarantined,
                    deconv_fallbacks: first.report.deconv_fallbacks,
                    capture,
                    shard_rebuilds: first.report.shard_rebuilds,
                    shards_lost: first.report.shards_lost,
                    blocks: first.report.blocks,
                    output_fnv: fnv,
                    reproducible,
                    wall_seconds: first.report.wall_seconds,
                    flight_dump,
                    dump_reproducible,
                });
            }
        }
    }
    if capture_base.is_none() {
        let _ = std::fs::remove_dir_all(&temp_capture);
    }
    Ok(SurvivalReport {
        schema_version: CHAOS_SCHEMA_VERSION,
        fingerprint: base.fingerprint(),
        executor: base.executor.clone(),
        backend: base.backend.clone(),
        seeds: seeds.to_vec(),
        cells,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GraphSpec {
        GraphSpec {
            frames: 4,
            blocks: 1,
            stall_timeout_ms: Some(2_000),
            ..GraphSpec::small()
        }
    }

    #[test]
    fn clean_and_faulty_cells_reproduce() {
        let matrix = vec![String::new(), "frame.drop=0.5,deconv.fail=1".into()];
        let report = run_matrix(&tiny(), &matrix, &[7]).unwrap();
        assert_eq!(report.schema_version, CHAOS_SCHEMA_VERSION);
        assert_eq!(report.cells.len(), 2);
        assert!(report.cells.iter().all(|c| c.reproducible));
        assert_eq!(report.cells[0].outcome, "completed");
        assert_eq!(report.cells[1].outcome, "degraded");
        assert!(report.cells[1].fault_counts.total() > 0);
        assert!(report.survived(), "{:?}", report.summary);
        // The report round-trips through its JSON schema.
        let json = serde_json::to_string(&report).unwrap();
        let back: SurvivalReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cells.len(), 2);
        assert_eq!(back.cells[1].output_fnv, report.cells[1].output_fnv);
    }

    #[test]
    fn faulty_cells_emit_byte_identical_dumps() {
        let dir = std::env::temp_dir().join(format!("htims_chaos_dumps_{}", std::process::id()));
        let mut base = tiny();
        base.flight_dir = Some(dir.display().to_string());
        let matrix = vec![String::new(), "dma.bitflip=1e-3,deconv.fail=1".into()];
        let report = run_matrix(&base, &matrix, &[7]).unwrap();
        // The clean control completes, so no dump is expected for it.
        assert_eq!(report.cells[0].flight_dump, None);
        assert_eq!(report.cells[0].dump_reproducible, None);
        // The faulty cell degrades; both runs dump, byte-identical modulo
        // timestamps, and the dump parses against the flight schema.
        let cell = &report.cells[1];
        assert_eq!(cell.outcome, "degraded");
        assert_eq!(cell.dump_reproducible, Some(true), "{cell:?}");
        assert!(cell.reproducible);
        let text = std::fs::read_to_string(cell.flight_dump.as_ref().unwrap()).unwrap();
        let (header, events) = ims_obs::flight::parse_dump(&text).unwrap();
        assert_eq!(header.schema_version, ims_obs::FLIGHT_SCHEMA_VERSION);
        assert!(!events.is_empty());
        assert!(
            !header.quarantined_frames.is_empty() || header.fault_site_count("deconv.fail") > 0,
            "{header:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_kill_cells_pair_rebuild_with_loss() {
        let flight = std::env::temp_dir().join(format!("htims_chaos_shard_{}", std::process::id()));
        let mut base = tiny();
        base.shards = 4;
        base.flight_dir = Some(flight.display().to_string());
        let matrix = vec![String::new(), "shard.kill=1".into()];
        let report = run_matrix(&base, &matrix, &[7]).unwrap();
        // The kill spec fans out into a capture/no-capture pair.
        assert_eq!(report.cells.len(), 3);
        let (control, rebuilt, lost) = (&report.cells[0], &report.cells[1], &report.cells[2]);
        assert!(rebuilt.capture && !lost.capture && !control.capture);

        // With the log armed every kill rebuilds: the run completes and
        // the output is bit-identical to the clean control's.
        assert_eq!(rebuilt.outcome, "completed");
        assert!(rebuilt.fault_counts.shard_kills > 0);
        assert_eq!(rebuilt.shard_rebuilds, rebuilt.fault_counts.shard_kills);
        assert_eq!(rebuilt.shards_lost, 0);
        assert_eq!(
            rebuilt.output_fnv, control.output_fnv,
            "rebuild is bit-transparent"
        );

        // Without it the same kills are terminal: the run degrades and the
        // flight dump blames the shard loss.
        assert_eq!(lost.outcome, "degraded");
        assert!(lost.shards_lost > 0);
        assert_eq!(lost.shard_rebuilds, 0);
        assert_ne!(lost.output_fnv, control.output_fnv);
        assert_eq!(lost.dump_reproducible, Some(true), "{lost:?}");
        let text = std::fs::read_to_string(lost.flight_dump.as_ref().unwrap()).unwrap();
        assert!(text.contains("shard_loss"), "{text}");

        assert!(report.cells.iter().all(|c| c.reproducible));
        assert!(report.survived(), "{:?}", report.summary);
        let _ = std::fs::remove_dir_all(&flight);
    }

    #[test]
    fn bad_fault_spec_aborts_the_soak() {
        let err = run_matrix(&tiny(), &["dma.bitflip=nope".into()], &[7]).unwrap_err();
        assert!(err.contains("bad --faults spec"), "{err}");
    }
}
