//! The hybrid pipeline of the paper: a producer thread streams raw frames
//! over a simulated RapidArray link into the FPGA model (capture →
//! accumulate → integer Hadamard deconvolution), then verifies the result
//! bit-for-bit against the single-threaded software reference and prints
//! the cycle/feasibility report.
//!
//! ```text
//! cargo run --release --example fpga_pipeline
//! ```

use htims::core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims::core::hybrid::{run_hybrid, run_software_reference, FrameGenerator, HybridConfig};
use htims::fpga::deconv::DeconvConfig;
use htims::fpga::{AccumulatorCore, DmaLink, FpgaDevice, ResourceReport};
use htims::physics::{Instrument, Workload};
use htims::prs::MSequence;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let degree = 8u32;
    let n = (1usize << degree) - 1;
    let mz_bins = 100; // what fits on the XD1 FPGA (see experiment E4)

    let mut instrument = Instrument::with_drift_bins(n);
    instrument.tof.n_bins = mz_bins;
    let workload = Workload::three_peptide_mix();
    let schedule = GateSchedule::multiplexed(degree);

    // The expectation drives the deterministic frame generator.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let data = acquire(
        &instrument,
        &workload,
        &schedule,
        1,
        AcquireOptions::default(),
        &mut rng,
    );
    let generator = FrameGenerator::new(&data, &instrument.adc, 2007);
    let seq = MSequence::new(degree);

    let config = HybridConfig {
        frames: 64,
        channel_depth: 4,
        deconv: DeconvConfig::default(),
        link: DmaLink::rapidarray(),
        binner: None,
        sparse: false,
        shards: 0,
    };

    println!(
        "streaming {} frames of {} bytes through the hybrid pipeline…",
        config.frames,
        generator.frame_bytes()
    );
    let hybrid = run_hybrid(&generator, &seq, &config);
    let reference = run_software_reference(&generator, &seq, config.frames, config.deconv);

    assert_eq!(
        hybrid.deconvolved_raw, reference,
        "FPGA component must match the software component bit-for-bit"
    );
    println!(
        "FPGA output == software reference: bit-exact over {} words ✓",
        reference.len()
    );
    println!(
        "capture cycles: {}, deconvolution cycles: {}, simulated link time: {:.2} ms, wall: {:.0} ms",
        hybrid.capture_cycles,
        hybrid.deconv_cycles,
        hybrid.simulated_link_seconds * 1e3,
        hybrid.wall_seconds * 1e3
    );

    // Binned mode: full-resolution frames folded 100→20 on chip, still
    // bit-exact against the binned software reference.
    let binner = htims::fpga::MzBinner::uniform(mz_bins, 20);
    let binned_cfg = HybridConfig {
        binner: Some(binner.clone()),
        ..config.clone()
    };
    let binned = run_hybrid(&generator, &seq, &binned_cfg);
    let binned_ref = htims::core::hybrid::run_software_reference_binned(
        &generator,
        &seq,
        binned_cfg.frames,
        binned_cfg.deconv,
        &binner,
    );
    assert_eq!(binned.deconvolved_raw, binned_ref);
    println!(
        "binned mode ({mz_bins}→20 on chip): bit-exact over {} words ✓",
        binned_ref.len()
    );

    // Would this design fit and keep up on the Cray XD1's FPGA?
    let acc = AccumulatorCore::new(n, mz_bins, 32);
    let deconv = htims::fpga::DeconvCore::new(&seq, config.deconv);
    let report = ResourceReport::evaluate(
        &FpgaDevice::xc2vp50(),
        &acc,
        &deconv,
        &config.link,
        config.frames,
        instrument.frame_duration_s(),
    );
    println!(
        "XC2VP50 feasibility: BRAM {}/{}, DSP {}/{}, fits={}, real-time margin {:.0}x, viable={}",
        report.bram_used,
        report.bram_available,
        report.dsp_used,
        report.dsp_available,
        report.fits,
        report.realtime_margin,
        report.viable()
    );
}
