//! Multiplexed CID tandem MS: fragment every drift-separated precursor
//! simultaneously, deconvolve, and identify peptides by correlating
//! fragment drift profiles with their precursors — with a reversed-decoy
//! FDR estimate.
//!
//! ```text
//! cargo run --release --example tandem_msms
//! ```

use htims::core::acquisition::{AcquireOptions, GateSchedule};
use htims::core::deconvolution::Deconvolver;
use htims::core::msms::{acquire_msms, fdr, search, MsMsSample, MsMsSearch};
use htims::physics::fragment::{by_ladder, CidCell};
use htims::physics::peptide::spike_peptides;
use htims::physics::Instrument;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let degree = 8u32;
    let n = (1usize << degree) - 1;
    let peptides = spike_peptides();
    println!("sample: {} peptides", peptides.len());
    for p in &peptides {
        let ladder = by_ladder(p);
        let strongest = ladder
            .iter()
            .max_by(|a, b| a.intensity.partial_cmp(&b.intensity).unwrap())
            .unwrap();
        println!(
            "  {:<18} M = {:9.4} Da, {} fragments, strongest {} at m/z {:.3}",
            p.sequence,
            p.monoisotopic_mass(),
            ladder.len(),
            strongest.label(),
            strongest.mz
        );
    }

    let mut instrument = Instrument::with_drift_bins(n);
    instrument.tof.n_bins = 1800;
    instrument.tof.mz_min = 100.0;
    let sample = MsMsSample::uniform(peptides.clone(), 1.0);
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(18);

    println!("\nacquiring 80 multiplexed frames with all-precursor CID…");
    let data = acquire_msms(
        &instrument,
        &sample,
        &CidCell::default(),
        &schedule,
        80,
        AcquireOptions::default(),
        &mut rng,
    );
    let map = Deconvolver::Weighted { lambda: 1e-6 }.deconvolve(&schedule, &data);

    let matches = search(&map, &instrument, &peptides, &MsMsSearch::default(), true);
    println!("\nidentifications (targets + reversed decoys):");
    for m in &matches {
        println!(
            "  {:<18} {:>2} fragments, mean drift correlation {:.3}{}",
            m.sequence,
            m.fragments_matched,
            m.mean_correlation,
            if m.is_decoy { "   [DECOY]" } else { "" }
        );
    }
    let targets = matches.iter().filter(|m| !m.is_decoy).count();
    println!(
        "\n{} of {} peptides identified from ONE acquisition; FDR estimate {:.1}%",
        targets,
        peptides.len(),
        100.0 * fdr(&matches)
    );
}
