//! The full LC-IMS-MS platform: a 15-minute reversed-phase gradient in
//! front of the multiplexed drift tube, sampled as a series of multiplexed
//! acquisitions — three orthogonal separation dimensions in one run.
//!
//! ```text
//! cargo run --release --example lc_ims_ms
//! ```

use htims::core::acquisition::{AcquireOptions, GateSchedule};
use htims::core::deconvolution::Deconvolver;
use htims::core::lcms::{run_lcms, LcRunConfig, LcSample};
use htims::physics::lc::LcGradient;
use htims::physics::peptide::{spike_peptides, synthetic_protein, tryptic_digest};
use htims::physics::Instrument;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Sample: spike panel + a few digested proteins.
    let mut peptides = spike_peptides();
    for p in 0..4 {
        peptides.extend(
            tryptic_digest(&synthetic_protein(60 + p, 250), 0, 7)
                .into_iter()
                .take(8),
        );
    }
    let gradient = LcGradient::default();
    println!(
        "{} peptides over a {:.0}-minute gradient (LC peak capacity {:.0}):",
        peptides.len(),
        gradient.duration_s / 60.0,
        gradient.peak_capacity()
    );
    let mut by_rt: Vec<(f64, &str)> = peptides
        .iter()
        .map(|p| (gradient.retention_time_s(p), p.sequence.as_str()))
        .collect();
    by_rt.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for (rt, seq) in by_rt.iter().take(6) {
        println!("  {seq:<20} elutes at {:6.1} s", rt);
    }
    println!("  …");

    let degree = 7u32;
    let n = (1usize << degree) - 1;
    let mut instrument = Instrument::with_drift_bins(n);
    instrument.tof.n_bins = 1000;
    let sample = LcSample::uniform(peptides, 1.0);
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(19);

    let cfg = LcRunConfig {
        lc_steps: 20,
        frames_per_step: 15,
        ..Default::default()
    };
    println!(
        "\nrunning {} LC steps × {} multiplexed frames…",
        cfg.lc_steps, cfg.frames_per_step
    );
    let result = run_lcms(
        &instrument,
        &sample,
        &gradient,
        &schedule,
        &Deconvolver::Weighted { lambda: 1e-6 },
        &cfg,
        AcquireOptions::default(),
        &mut rng,
    );

    println!(
        "identified {} unique peptide ions across {} features",
        result.unique_count(),
        result.total_features
    );
    // Identifications per LC step (the base-peak chromatogram of IDs).
    let mut per_step = vec![0usize; cfg.lc_steps];
    for id in &result.identifications {
        per_step[id.lc_step] += 1;
    }
    println!("identifications per LC step:");
    for (step, &count) in per_step.iter().enumerate() {
        if count > 0 {
            println!(
                "  t = {:>5.0} s  {}",
                (step as f64 + 0.5) * gradient.duration_s / cfg.lc_steps as f64,
                "#".repeat(count.min(60))
            );
        }
    }
}
