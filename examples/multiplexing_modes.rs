//! Compares the three acquisition modes the instrument supports — signal
//! averaging, classic Hadamard multiplexing, and modified-oversampled
//! multiplexing — on the same dilute sample at equal acquisition time,
//! reporting ion utilization and the SNR of the recovered calibrant peak.
//!
//! ```text
//! cargo run --release --example multiplexing_modes
//! ```

use htims::core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims::core::analysis::build_library;
use htims::core::deconvolution::Deconvolver;
use htims::core::metrics::species_snr;
use htims::physics::{Instrument, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let degree = 8u32;
    let n = (1usize << degree) - 1;
    let frames = 120;
    // Dilute sample: the regime where multiplexing pays.
    let workload = Workload::three_peptide_mix().scaled(2e-3);

    let modes: Vec<(&str, GateSchedule, Deconvolver, bool)> = vec![
        (
            "signal averaging (conventional)",
            GateSchedule::signal_averaging(n),
            Deconvolver::Identity,
            false,
        ),
        (
            "multiplexed (classic HT-IMS)",
            GateSchedule::multiplexed(degree),
            Deconvolver::SimplexFast,
            false,
        ),
        (
            "multiplexed + ion funnel trap",
            GateSchedule::multiplexed(degree),
            Deconvolver::Weighted { lambda: 1e-6 },
            true,
        ),
        (
            "oversampled (m=2) + trap",
            GateSchedule::oversampled(degree, 2),
            Deconvolver::Weighted { lambda: 1e-6 },
            true,
        ),
    ];

    println!(
        "{:<34} {:>10} {:>12} {:>10}",
        "mode", "duty", "utilization", "SNR"
    );
    for (i, (name, schedule, method, use_trap)) in modes.into_iter().enumerate() {
        let bins = schedule.len();
        let mut instrument = Instrument::with_drift_bins(bins);
        instrument.tof.n_bins = 400;
        let target = build_library(&instrument, &workload)
            .into_iter()
            .find(|e| e.name.contains("RPPGFSPFR/2+"))
            .expect("calibrant present");

        let mut rng = ChaCha8Rng::seed_from_u64(100 + i as u64);
        let data = acquire(
            &instrument,
            &workload,
            &schedule,
            frames,
            AcquireOptions {
                use_trap,
                background_mean: 0.05,
            },
            &mut rng,
        );
        let map = method.deconvolve(&schedule, &data);
        let snr = species_snr(&map, target.drift_bin, target.mz_bin, 3);
        println!(
            "{:<34} {:>9.2}% {:>11.1}% {:>10.1}",
            name,
            100.0 * schedule.duty_cycle(),
            100.0 * data.ion_utilization,
            snr
        );
    }
    println!("\n(equal frames per mode; dilute sample — compare the SNR column)");
}
