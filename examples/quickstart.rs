//! Quickstart: simulate one multiplexed IMS-TOF acquisition of a peptide
//! mix, deconvolve it, and identify the analytes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use htims::core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims::core::analysis::{build_library, find_features, match_library};
use htims::core::deconvolution::Deconvolver;
use htims::physics::{Instrument, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // 1. Instrument: 255 drift bins (PRS order 8), 800 m/z bins.
    let mut instrument = Instrument::with_drift_bins(255);
    instrument.tof.n_bins = 800;

    // 2. Sample: the classic three-peptide infusion mix.
    let workload = Workload::three_peptide_mix();

    // 3. Acquire 100 multiplexed frames with the ion funnel trap.
    let schedule = GateSchedule::multiplexed(8);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let data = acquire(
        &instrument,
        &workload,
        &schedule,
        100,
        AcquireOptions::default(),
        &mut rng,
    );
    println!(
        "acquired {} frames, gate duty cycle {:.1}%, ion utilization {:.1}%",
        data.frames,
        100.0 * schedule.duty_cycle(),
        100.0 * data.ion_utilization
    );

    // 4. Deconvolve with the PNNL-style weighted inverse.
    let deconvolved = Deconvolver::Weighted { lambda: 1e-6 }.deconvolve(&schedule, &data);

    // 5. Find 2-D features and match them against the predicted library.
    let features = find_features(&deconvolved, 8.0);
    let library = build_library(&instrument, &workload);
    let ids = match_library(&features, &library, 4, 3);
    println!(
        "found {} features; identified {}/{} library species:",
        features.len(),
        ids.len(),
        library.len()
    );
    for id in &ids {
        println!(
            "  {:<28} drift bin {:>3} (err {:+}), m/z bin {:>4} (err {:+}), SNR {:.0}",
            id.entry.name,
            id.feature.drift_bin,
            id.drift_error,
            id.feature.mz_bin,
            id.mz_error,
            id.feature.snr
        );
    }
}
