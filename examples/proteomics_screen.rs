//! A proteomics-style screen: digest a set of proteins in silico, run the
//! dynamically multiplexed instrument over the digest, and report how many
//! peptides are recovered — the motivating workload of the companion
//! high-throughput-proteomics papers.
//!
//! ```text
//! cargo run --release --example proteomics_screen
//! ```

use htims::core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims::core::analysis::{build_library, find_features, match_library};
use htims::core::deconvolution::Deconvolver;
use htims::physics::peptide::{tryptic_digest, UBIQUITIN};
use htims::physics::{Instrument, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // In-silico digestion: real ubiquitin + synthetic matrix proteins.
    let ubi_peptides = tryptic_digest(UBIQUITIN, 0, 6);
    println!(
        "ubiquitin digest: {} peptides ≥6 residues ({})",
        ubi_peptides.len(),
        ubi_peptides
            .iter()
            .map(|p| p.sequence.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut workload = Workload::complex_digest(11, 6, 30.0);
    for pep in &ubi_peptides {
        workload.species.extend(pep.to_species(5.0));
    }
    println!("total workload: {} ion species", workload.len());

    // Dynamically multiplexed acquisition (order 9, trap, weighted inverse).
    let degree = 9u32;
    let n = (1usize << degree) - 1;
    let mut instrument = Instrument::with_drift_bins(n);
    instrument.tof.n_bins = 1500;

    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(2008);
    let data = acquire(
        &instrument,
        &workload,
        &schedule,
        80,
        AcquireOptions::default(),
        &mut rng,
    );
    let map = Deconvolver::Weighted { lambda: 1e-6 }.deconvolve(&schedule, &data);

    // Identify.
    let features = find_features(&map, 6.0);
    let library = build_library(&instrument, &workload);
    let ids = match_library(&features, &library, 4, 3);
    let ubi_ids = ids
        .iter()
        .filter(|id| {
            ubi_peptides
                .iter()
                .any(|p| id.entry.name.starts_with(&p.sequence))
        })
        .count();
    println!(
        "features: {}; identifications: {}/{} species ({:.0}%); ubiquitin peptide ions matched: {}",
        features.len(),
        ids.len(),
        library.len(),
        100.0 * ids.len() as f64 / library.len() as f64,
        ubi_ids
    );
    let mean_drift_err = ids
        .iter()
        .map(|id| id.drift_error.abs() as f64)
        .sum::<f64>()
        / ids.len().max(1) as f64;
    println!("mean |drift error| = {mean_drift_err:.2} bins");
}
