//! Offline vendored subset of `serde_json`.
//!
//! JSON text front-end over the vendored `serde::Value` tree:
//! `to_string`/`to_string_pretty` render any `serde::Serialize` type, and
//! `from_str` parses JSON back through `serde::Deserialize`. A `json!`
//! macro builds `Value` objects from `"key": expr` literals.

// Offline stand-in shim: not held to the first-party lint bar.
#![allow(clippy::all)]

pub use serde::Value;

/// JSON serialization/deserialization error (shared with the vendored
/// `serde` core, which carries the message).
pub type Error = serde::Error;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Serializes to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize(&value)
}

/// Builds a [`Value`] from a JSON-shaped literal. Supports the object form
/// `json!({ "key": expr, ... })` (values are any `Serialize` expression,
/// including nested `json!` calls), plus `json!(null)` and bare
/// expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a `.0`/exponent so floats re-parse as floats.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null"); // JSON has no NaN/Infinity, as serde_json
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                                    let lo = u32::from_str_radix(
                                        std::str::from_utf8(lo_hex)
                                            .map_err(|_| Error::msg("bad \\u escape"))?,
                                        16,
                                    )
                                    .map_err(|_| Error::msg("bad \\u escape"))?;
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(1)),
            ("b".to_string(), Value::Float(2.5)),
            ("c".to_string(), Value::String("x\"y".to_string())),
            (
                "d".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null, Value::Int(-3)]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, Value::Float(2.0));
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "n": 3usize, "name": "block", "ok": true });
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"n\":3,\"name\":\"block\",\"ok\":true}"
        );
    }

    #[test]
    fn parses_nested_documents() {
        let v: Value = from_str(r#"{"a": [1, -2, 3.5], "b": {"c": "A"}}"#).unwrap();
        assert_eq!(v.field("b").field("c").as_str(), Some("A"));
        assert_eq!(
            v.field("a"),
            &Value::Array(vec![Value::UInt(1), Value::Int(-2), Value::Float(3.5),])
        );
    }
}
