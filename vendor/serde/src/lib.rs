//! Offline vendored subset of `serde`.
//!
//! Instead of serde's visitor-based zero-copy data model, this shim routes
//! everything through an owned [`Value`] tree: `Serialize` renders a value
//! into a `Value`, `Deserialize` rebuilds one from it. The derive macros in
//! the companion `serde_derive` crate and the JSON front-end in
//! `serde_json` both target this model, so the workspace keeps the familiar
//! `#[derive(Serialize, Deserialize)]` + `serde_json::to_string` surface
//! with no registry dependencies.

// Offline stand-in shim: not held to the first-party lint bar.
#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of serialized data (the JSON data model plus a
/// signed/unsigned integer split, mirroring `serde_json::Value`'s number
/// handling).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (always < 0; non-negative integers use `UInt`).
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key→value map (declaration order is preserved).
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Looks up `name` in an object, yielding `Null` when the key is
    /// missing or `self` is not an object (the caller's `Deserialize` then
    /// reports the type mismatch).
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// A short human-readable description of the value's type.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    fn expected(what: &str, got: &Value) -> Self {
        Self::msg(format!("expected {what}, found {}", got.kind()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// Converts to the serialized value tree.
    fn serialize(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Converts from the serialized value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::expected(stringify!($t), v))?;
                <$t>::try_from(u).map_err(|_| Error::msg(format!(
                    "integer {u} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let i = *self as i64;
                if i < 0 { Value::Int(i) } else { Value::UInt(i as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::expected(stringify!($t), v))?;
                <$t>::try_from(i).map_err(|_| Error::msg(format!(
                    "integer {i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize(v)? as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            _ => Ok(Some(T::deserialize(v)?)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize(v)?))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            _ => Err(Error::expected("2-element array", v)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
            )),
            _ => Err(Error::expected("3-element array", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        let none: Option<u32> = None;
        assert_eq!(none.serialize(), Value::Null);
        assert_eq!(Option::<u32>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::deserialize(&Value::UInt(7)).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn missing_field_reads_as_null() {
        let obj = Value::Object(vec![("a".to_string(), Value::UInt(1))]);
        assert_eq!(obj.field("a").as_u64(), Some(1));
        assert!(matches!(obj.field("b"), Value::Null));
    }

    #[test]
    fn signed_integers_split_by_sign() {
        assert_eq!((-3i64).serialize(), Value::Int(-3));
        assert_eq!(3i64.serialize(), Value::UInt(3));
        assert_eq!(i64::deserialize(&Value::UInt(3)).unwrap(), 3);
        assert_eq!(u64::deserialize(&Value::Int(-1)).ok(), None);
    }
}
