//! Offline vendored subset of `proptest`.
//!
//! Keeps the `proptest! { fn case(x in strategy) { ... } }` surface but
//! replaces the engine with deterministic random sampling (seeded per test
//! name, so runs are reproducible) and no shrinking — a failing case
//! reports the drawn inputs instead of minimising them.

// Offline stand-in shim: not held to the first-party lint bar.
#![allow(clippy::all)]

/// Deterministic RNG and test-case error types.
pub mod test_runner {
    /// Failure raised by `prop_assert!`-style macros inside a property.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// SplitMix64-based deterministic RNG (seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 uniformly random bits (SplitMix64 step).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            // Widening-multiply range reduction; bias is negligible for
            // test-case generation.
            let x = self.next_u64() as u128;
            ((x * bound as u128) >> 64) as u64
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Sampling strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test inputs. Unlike real proptest there is no value
    /// tree or shrinking — `sample` draws one value.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Full-domain strategy returned by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyStrategy<T> {
        #[doc(hidden)]
        pub _marker: std::marker::PhantomData<T>,
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain generator.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draws a value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy over the full domain of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values spanning many magnitudes.
            let mag = rng.unit_f64() * 600.0 - 300.0;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * 10f64.powf(mag)
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: an exact length or a range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element_strategy, len)` where `len` is a `usize` or a range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases drawn per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Declares property tests:
/// `proptest! { #![proptest_config(...)] #[test] fn f(x in strat) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal: expands each `fn` inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = result {
                    panic!(
                        "proptest case {case} of {} failed: {e}\ninputs: {}",
                        stringify!($name),
                        [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),+]
                            .join(", "),
                    );
                }
            }
        }
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

/// Asserts inside a property; returns a `TestCaseError` instead of
/// panicking so the runner can report the drawn inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// The `proptest::prelude::*` import surface.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..17, b in -5i64..5, x in 0.25..0.75f64) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn vec_sizes_respect_spec(
            exact in prop::collection::vec(0u32..10, 6),
            ranged in prop::collection::vec(0u32..10, 1..8),
        ) {
            prop_assert_eq!(exact.len(), 6);
            prop_assert!((1..8).contains(&ranged.len()));
        }

        #[test]
        fn any_bool_is_callable(flag in any::<bool>()) {
            prop_assert!(flag || !flag);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = 0u64..1000;
        for _ in 0..100 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
