//! Offline vendored subset of `rayon`.
//!
//! Implements the slice of the API this workspace uses — `into_par_iter()`
//! / `par_iter()` with `map(...).collect()`, plus `ThreadPoolBuilder` and
//! `ThreadPool::install` — with real data parallelism on `std::thread`
//! scoped threads. Items are split into one contiguous chunk per worker, so
//! ordering is preserved and the embarrassingly-parallel column workloads
//! this repo runs scale near-linearly, as with the real crate.

// Offline stand-in shim: not held to the first-party lint bar.
#![allow(clippy::all)]

use std::cell::Cell;

thread_local! {
    /// Thread count override installed by [`ThreadPool::install`];
    /// 0 means "use the machine default".
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of threads parallel operations will currently use.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(|t| t.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Error from building a thread pool (the vendored builder cannot fail;
/// the type exists for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle that scopes parallel operations to a fixed thread count.
///
/// The vendored pool spawns scoped threads per operation rather than
/// keeping workers alive; `install` pins the thread count used by any
/// parallel iterator invoked inside the closure.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(self.num_threads));
        let result = op();
        POOL_THREADS.with(|t| t.set(prev));
        result
    }

    /// The pool's thread count (0 = machine default).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Runs `f` over `items` in parallel, preserving order: the items are split
/// into one contiguous chunk per worker thread.
fn parallel_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::new();
    let mut items = items;
    // Split back-to-front so each drain is O(chunk).
    while !items.is_empty() {
        let at = items.len().saturating_sub(chunk);
        chunks.push(items.split_off(at));
    }
    chunks.reverse();
    let f = &f;
    let mut out: Vec<O> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<O>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// Like [`parallel_map`], but each worker thread first builds a private
/// state value with `init` and threads it through its chunk — the shim's
/// version of rayon's `map_init` (scratch arenas allocated once per worker,
/// not once per item).
fn parallel_map_init<I, O, T, INIT, F>(items: Vec<I>, init: INIT, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    INIT: Fn() -> T + Sync,
    F: Fn(&mut T, I) -> O + Sync,
{
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        let mut state = init();
        return items.into_iter().map(|i| f(&mut state, i)).collect();
    }
    let n = items.len();
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let at = items.len().saturating_sub(chunk);
        chunks.push(items.split_off(at));
    }
    chunks.reverse();
    let f = &f;
    let init = &init;
    let mut out: Vec<O> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                scope.spawn(move || {
                    let mut state = init();
                    c.into_iter().map(|i| f(&mut state, i)).collect::<Vec<O>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// Parallel iterator adapters.
pub mod iter {
    use super::{parallel_map, parallel_map_init};

    /// A materialised parallel iterator over owned items.
    pub struct ParIter<I> {
        items: Vec<I>,
    }

    /// A mapped parallel iterator, evaluated on `collect`/`for_each`.
    pub struct ParMap<I, F> {
        items: Vec<I>,
        f: F,
    }

    /// A mapped parallel iterator with per-worker state, evaluated on
    /// `collect`.
    pub struct ParMapInit<I, INIT, F> {
        items: Vec<I>,
        init: INIT,
        f: F,
    }

    /// Conversion into a parallel iterator (by value).
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Converts into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    /// Conversion into a parallel iterator over references.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type (a reference).
        type Item: Send + 'a;
        /// Parallel iterator over `&self`'s items.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> ParIter<usize> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<I: Send> ParIter<I> {
        /// Maps each item (lazily; evaluated by `collect`).
        pub fn map<O: Send, F: Fn(I) -> O + Sync>(self, f: F) -> ParMap<I, F> {
            ParMap {
                items: self.items,
                f,
            }
        }

        /// Maps each item with a per-worker state value built by `init`
        /// (lazily; evaluated by `collect`).
        pub fn map_init<T, O, INIT, F>(self, init: INIT, f: F) -> ParMapInit<I, INIT, F>
        where
            O: Send,
            INIT: Fn() -> T + Sync,
            F: Fn(&mut T, I) -> O + Sync,
        {
            ParMapInit {
                items: self.items,
                init,
                f,
            }
        }

        /// Collects the items unchanged.
        pub fn collect<C: FromIterator<I>>(self) -> C {
            self.items.into_iter().collect()
        }

        /// Applies `f` to every item in parallel.
        pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
            let _: Vec<()> = parallel_map(self.items, |i| f(i));
        }
    }

    impl<I: Send, O: Send, F: Fn(I) -> O + Sync> ParMap<I, F> {
        /// Evaluates the map in parallel and collects the results in order.
        pub fn collect<C: FromIterator<O>>(self) -> C {
            parallel_map(self.items, self.f).into_iter().collect()
        }

        /// Evaluates the map in parallel, then sums the results.
        pub fn sum<S: std::iter::Sum<O>>(self) -> S {
            parallel_map(self.items, self.f).into_iter().sum()
        }
    }

    impl<I, O, T, INIT, F> ParMapInit<I, INIT, F>
    where
        I: Send,
        O: Send,
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, I) -> O + Sync,
    {
        /// Evaluates the map in parallel (one state per worker) and
        /// collects the results in order.
        pub fn collect<C: FromIterator<O>>(self) -> C {
            parallel_map_init(self.items, self.init, self.f)
                .into_iter()
                .collect()
        }
    }
}

/// The rayon prelude: import the iterator traits.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        pool.install(|| {
            assert_eq!(crate::current_num_threads(), 3);
            let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i + 1).collect();
            assert_eq!(out[99], 100);
        });
    }

    #[test]
    fn map_init_reuses_state_and_preserves_order() {
        let out: Vec<usize> = (0..500usize)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i); // state must be usable across items
                i * 3
            })
            .collect();
        assert_eq!(out, (0..500).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![1.0f64, 2.0, 3.0];
        let out: Vec<f64> = v.par_iter().map(|x| x * 2.0).collect();
        assert_eq!(out, vec![2.0, 4.0, 6.0]);
    }
}
