//! Offline vendored ChaCha RNG.
//!
//! Stream-compatible with `rand_chacha` 0.3: the same ChaCha block function
//! (djb variant, 64-bit block counter in words 12–13, 64-bit stream id in
//! words 14–15), the same four-blocks-per-refill buffering, and the same
//! `rand_core::block::BlockRng` word-consumption order for `next_u32` /
//! `next_u64`. Together with the vendored `rand`'s `seed_from_u64`, every
//! `ChaCha8Rng::seed_from_u64(s)` in this workspace produces the exact
//! byte stream the real crates would.

// Offline stand-in shim: not held to the first-party lint bar.
#![allow(clippy::all)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
/// Blocks generated per refill (matches `rand_chacha`'s 4-block buffer).
const REFILL_BLOCKS: usize = 4;
const BUFFER_WORDS: usize = BLOCK_WORDS * REFILL_BLOCKS;

/// The ChaCha core with a compile-time round count.
#[derive(Debug, Clone)]
struct ChaChaCore<const ROUNDS: usize> {
    key: [u32; 8],
    stream: [u32; 2],
    /// 64-bit block counter of the *next* block to generate.
    counter: u64,
    buffer: [u32; BUFFER_WORDS],
    /// Next word to hand out; `BUFFER_WORDS` means "refill before use".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self {
            key,
            stream: [0, 0],
            counter: 0,
            buffer: [0; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }

    fn block(&self, counter: u64, out: &mut [u32]) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            counter as u32,
            (counter >> 32) as u32,
            self.stream[0],
            self.stream[1],
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (o, (s, i)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
            *o = s.wrapping_add(*i);
        }
    }

    fn refill(&mut self) {
        for b in 0..REFILL_BLOCKS {
            let start = b * BLOCK_WORDS;
            let counter = self.counter.wrapping_add(b as u64);
            let mut out = [0u32; BLOCK_WORDS];
            self.block(counter, &mut out);
            self.buffer[start..start + BLOCK_WORDS].copy_from_slice(&out);
        }
        self.counter = self.counter.wrapping_add(REFILL_BLOCKS as u64);
        self.index = 0;
    }

    /// `rand_core::block::BlockRng::generate_and_set(index)`.
    fn refill_and_set(&mut self, index: usize) {
        self.refill();
        self.index = index;
    }

    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // Exact port of rand_core's BlockRng::next_u64 index handling.
        let read = |buf: &[u32; BUFFER_WORDS], i: usize| -> u64 {
            (u64::from(buf[i + 1]) << 32) | u64::from(buf[i])
        };
        let index = self.index;
        if index < BUFFER_WORDS - 1 {
            self.index += 2;
            read(&self.buffer, index)
        } else if index >= BUFFER_WORDS {
            self.refill_and_set(2);
            read(&self.buffer, 0)
        } else {
            let x = u64::from(self.buffer[BUFFER_WORDS - 1]);
            self.refill_and_set(1);
            let y = u64::from(self.buffer[0]);
            (y << 32) | x
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Word-at-a-time little-endian fill (matches BlockRng's
        // fill_via_u32_chunks for whole words; tail truncates one word).
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u32().to_le_bytes();
            let n = (dest.len() - i).min(4);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];
            fn from_seed(seed: Self::Seed) -> Self {
                Self {
                    core: ChaChaCore::from_seed(seed),
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_u32()
            }
            fn next_u64(&mut self) -> u64 {
                self.core.next_u64()
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                self.core.fill_bytes(dest)
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds (the workspace's workhorse RNG)."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439-era ChaCha20 keystream, zero key, zero nonce, counter 0 —
    /// validates the block function and round structure.
    #[test]
    fn chacha20_zero_key_known_answer() {
        let core = ChaChaCore::<20>::from_seed([0u8; 32]);
        let mut out = [0u32; 16];
        core.block(0, &mut out);
        let mut bytes = Vec::new();
        for w in out {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let expected_prefix = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28,
        ];
        assert_eq!(&bytes[..16], &expected_prefix);
    }

    /// ChaCha8 keystream, zero key, zero nonce (eSTREAM/estreamy known
    /// answer) — validates the reduced-round variant.
    #[test]
    fn chacha8_zero_key_known_answer() {
        let core = ChaChaCore::<8>::from_seed([0u8; 32]);
        let mut out = [0u32; 16];
        core.block(0, &mut out);
        let mut bytes = Vec::new();
        for w in out {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let expected_prefix = [
            0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, 0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09,
            0xa5, 0xa1,
        ];
        assert_eq!(&bytes[..16], &expected_prefix);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn mixed_width_consumption_is_consistent() {
        // Crossing the refill boundary with next_u64 must not panic and
        // must keep producing words.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..63 {
            rng.next_u32();
        }
        let _ = rng.next_u64(); // straddles the boundary
        for _ in 0..200 {
            let _ = rng.next_u64();
        }
    }
}
