//! Offline vendored subset of `rand` 0.8.
//!
//! The container this workspace builds in has no network access and no
//! registry cache, so the external `rand` crate cannot be fetched. This
//! crate reimplements exactly the slice of the 0.8 API the workspace uses —
//! [`RngCore`], [`SeedableRng::seed_from_u64`] (the PCG32 seed expansion from
//! `rand_core` 0.6), the [`Rng`] extension trait with `gen::<f64>()` /
//! `gen::<u64>()` / `gen_range`, and the `Standard` float conversion — with
//! bit-identical output, so every seeded experiment in the repo reproduces
//! the same numbers the real crates would produce.

// Offline stand-in shim: not held to the first-party lint bar.
#![allow(clippy::all)]

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Seed material (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates an RNG from full seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into full seed material with the PCG32-based
    /// expansion used by `rand_core` 0.6, so streams match the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the uniform "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 `Standard` for f64: 53 high bits, scaled to [0, 1).
        let precision = 52 + 1;
        let scale = 1.0 / ((1u64 << precision) as f64);
        let value = rng.next_u64() >> (64 - precision);
        scale * value as f64
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let precision = 23 + 1;
        let scale = 1.0 / ((1u32 << precision) as f32);
        let value = rng.next_u32() >> (32 - precision);
        scale * value as f32
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8 samples a u32 and compares against 2^31.
        rng.next_u32() & (1 << 31) != 0
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait UniformRangeSample: Sized {
    /// Samples uniformly from `[low, high)` (Lemire-style widening multiply
    /// with rejection, as rand 0.8's `sample_single` does on 64-bit).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRangeSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let range = high.wrapping_sub(low) as u64;
                let ints_to_reject = (u64::MAX - range + 1) % range;
                let zone = u64::MAX - ints_to_reject;
                loop {
                    let v = rng.next_u64();
                    let wide = (v as u128) * (range as u128);
                    let hi = (wide >> 64) as u64;
                    let lo = wide as u64;
                    if lo <= zone {
                        return low.wrapping_add(hi as Self);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, i64, i32);

impl UniformRangeSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * f64::sample_standard(rng)
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a half-open range.
    fn gen_range<T: UniformRangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations (naming parity with the real crate layout).
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn f64_standard_is_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
        }
    }
}
