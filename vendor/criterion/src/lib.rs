//! Offline vendored subset of `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!` + `benchmark_group`
//! authoring surface. Run modes:
//!
//! - default (what `cargo test` does with `harness = false` bench
//!   targets): each benchmark body executes **once** as a smoke test, so
//!   test runs stay fast and a broken benchmark still fails the build;
//! - `--bench`: each benchmark is timed over its configured
//!   `measurement_time` and a mean per-iteration time is printed.

// Offline stand-in shim: not held to the first-party lint bar.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Run every benchmark body once (smoke/test mode).
    Test,
    /// Measure and report timings.
    Bench,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { mode: Mode::Test }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments (`--bench` selects
    /// measuring mode; anything else runs one-shot smoke mode).
    pub fn from_args() -> Self {
        let bench = std::env::args().any(|a| a == "--bench");
        Self {
            mode: if bench { Mode::Bench } else { Mode::Test },
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_one(
            self.mode,
            "standalone",
            &id.label,
            Duration::from_secs(1),
            |b| f(b),
        );
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the vendored harness sizes runs by
    /// `measurement_time` alone.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; the vendored harness does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets how long `--bench` mode measures each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Registers a benchmark taking a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            self.criterion.mode,
            &self.name,
            &id.label,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Registers a benchmark with no input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            self.criterion.mode,
            &self.name,
            &id.label,
            self.measurement_time,
            |b| f(b),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Passed to benchmark bodies; `iter` runs the measured routine.
pub struct Bencher {
    mode: Mode,
    measurement_time: Duration,
    /// (iterations, elapsed) recorded by `iter` in bench mode.
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Runs the routine: once in test mode, repeatedly for the configured
    /// measurement window in bench mode.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            Mode::Test => {
                std::hint::black_box(routine());
            }
            Mode::Bench => {
                let mut iters: u64 = 0;
                let start = Instant::now();
                loop {
                    std::hint::black_box(routine());
                    iters += 1;
                    if start.elapsed() >= self.measurement_time {
                        break;
                    }
                }
                self.measured = Some((iters, start.elapsed()));
            }
        }
    }
}

fn run_one(
    mode: Mode,
    group: &str,
    label: &str,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        mode,
        measurement_time,
        measured: None,
    };
    f(&mut bencher);
    match mode {
        Mode::Test => eprintln!("test {group}/{label} ... ok"),
        Mode::Bench => {
            if let Some((iters, elapsed)) = bencher.measured {
                let per_iter = elapsed.as_secs_f64() / iters.max(1) as f64;
                println!(
                    "{group}/{label}: {iters} iterations, {:.3} ms/iter",
                    per_iter * 1e3
                );
            } else {
                println!("{group}/{label}: no measurement recorded");
            }
        }
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(runs, 1);
    }
}
