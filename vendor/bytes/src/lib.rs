//! Offline vendored subset of the `bytes` crate.
//!
//! Provides [`Bytes`] (an immutable, reference-counted buffer whose clones
//! share one allocation — the zero-copy hand-off property the hybrid
//! pipeline relies on), [`BytesMut`] (a growable builder that freezes into
//! `Bytes`), and the [`Buf`]/[`BufMut`] cursor traits used by the storage
//! format codecs.

// Offline stand-in shim: not held to the first-party lint bar.
#![allow(clippy::all)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory with a read
/// cursor (consumed from the front by [`Buf`] reads).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.into(),
            start: 0,
        }
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the given sub-range as a new buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: v.into(),
            start: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// A growable byte buffer for building messages; `freeze` converts it into
/// an immutable [`Bytes`] (one copy into the shared allocation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        Self { data: v.to_vec() }
    }
}

/// Sequential reads from the front of a buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads `N` bytes into an array, advancing the cursor.
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(
            self.remaining() >= N,
            "buffer underflow: need {N} bytes, have {}",
            self.remaining()
        );
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

/// Sequential writes to the end of a buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn slice_ops_via_deref() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5, 6, 7, 8]);
        let words: Vec<u32> = b
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        assert_eq!(words.len(), 2);
    }

    #[test]
    fn buf_round_trips_builder_output() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u16_le(7);
        w.put_u64_le(u64::MAX - 1);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 2 + 8 + 4 + 8);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reads_consume_from_the_front() {
        let mut b = Bytes::from(vec![1u8, 0, 0, 0, 2, 0, 0, 0]);
        assert_eq!(b.get_u32_le(), 1);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..], &[2, 0, 0, 0]);
        assert_eq!(b.get_u32_le(), 2);
        assert!(b.is_empty());
    }
}
