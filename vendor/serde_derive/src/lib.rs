//! Offline vendored serde derive macros.
//!
//! Generates `Serialize`/`Deserialize` impls against the vendored `serde`
//! crate's `Value` data model, parsing the item's token stream directly
//! (no `syn`/`quote`). Supported shapes — which cover every derived type
//! in this workspace — are non-generic named-field structs and enums whose
//! variants are unit or named-field (externally tagged, like real serde).
//! Anything else panics at compile time with a clear message; hand-write
//! those impls instead (see `ims_fpga::fixed::Fx`).

// Offline stand-in shim: not held to the first-party lint bar.
#![allow(clippy::all)]

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// One named field and its parsed `#[serde(...)]` options.
struct Field {
    name: String,
    default: bool,
    skip_if_none: bool,
}

/// One parsed item: a struct's fields or an enum's variants.
enum Item {
    /// Named-field struct: fields in declaration order.
    Struct(Vec<Field>),
    /// Enum: `(variant_name, None)` for unit variants,
    /// `(variant_name, Some(fields))` for named-field variants.
    Enum(Vec<(String, Option<Vec<Field>>)>),
}

struct Parsed {
    name: String,
    item: Item,
}

/// The serialization statements for a list of fields: pushes
/// `(name, value)` entries onto a local `__entries` vec, honouring
/// `skip_serializing_if = "Option::is_none"` (a field whose value
/// serializes to `Null` is omitted).
fn field_pushes(fields: &[Field], access: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let n = &f.name;
            if f.skip_if_none {
                format!(
                    "match _serde::Serialize::serialize({access}{n}) {{\
                     _serde::Value::Null => {{}},\
                     __v => __entries.push((\"{n}\".to_string(), __v)), }}"
                )
            } else {
                format!(
                    "__entries.push((\"{n}\".to_string(), \
                     _serde::Serialize::serialize({access}{n})));"
                )
            }
        })
        .collect()
}

/// Derives `serde::Serialize` via the `Value` tree model.
///
/// The `serde` helper attribute is accepted; the supported forms are
/// `#[serde(default)]` (affects deserialization only) and
/// `#[serde(skip_serializing_if = "Option::is_none")]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let body = match &parsed.item {
        Item::Struct(fields) => {
            let pushes = field_pushes(fields, "&self.");
            format!(
                "{{ let mut __entries: Vec<(String, _serde::Value)> = Vec::new();\
                 {pushes} _serde::Value::Object(__entries) }}"
            )
        }
        Item::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| match fields {
                    None => format!(
                        "{n}::{v} => _serde::Value::String(\"{v}\".to_string()),",
                        n = parsed.name
                    ),
                    Some(fields) => {
                        let bind = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let pushes = field_pushes(fields, "");
                        format!(
                            "{n}::{v} {{ {bind} }} => {{\
                             let mut __entries: Vec<(String, _serde::Value)> = Vec::new();\
                             {pushes}\
                             _serde::Value::Object(vec![\
                             (\"{v}\".to_string(), _serde::Value::Object(__entries))]) }},",
                            n = parsed.name
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    wrap(
        &parsed.name,
        format!(
            "impl _serde::Serialize for {} {{\
             fn serialize(&self) -> _serde::Value {{ {body} }} }}",
            parsed.name
        ),
    )
}

/// Derives `serde::Deserialize` via the `Value` tree model.
///
/// Fields marked `#[serde(default)]` fall back to `Default::default()` when
/// the key is absent (the `Value` model reads absent keys as `Null`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let name = &parsed.name;
    let body = match &parsed.item {
        Item::Struct(fields) => {
            let inits: String = fields.iter().map(|f| field_init(f, "v")).collect();
            format!("Ok({name} {{ {inits} }})")
        }
        Item::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| f.is_none())
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|(v, f)| f.as_ref().map(|fields| (v, fields)))
                .map(|(v, fields)| {
                    let inits: String = fields.iter().map(|f| field_init(f, "inner")).collect();
                    format!("\"{v}\" => Ok({name}::{v} {{ {inits} }}),")
                })
                .collect();
            format!(
                "match v {{\
                 _serde::Value::String(s) => match s.as_str() {{\
                   {unit_arms}\
                   other => Err(_serde::Error::msg(format!(\
                     \"unknown variant `{{other}}` of `{name}`\"))),\
                 }},\
                 _serde::Value::Object(entries) if entries.len() == 1 => {{\
                   let (tag, inner) = &entries[0];\
                   match tag.as_str() {{\
                     {tagged_arms}\
                     other => Err(_serde::Error::msg(format!(\
                       \"unknown variant `{{other}}` of `{name}`\"))),\
                   }}\
                 }},\
                 _ => Err(_serde::Error::msg(\
                   format!(\"invalid shape for enum `{name}`: {{}}\", v.kind()))),\
                 }}"
            )
        }
    };
    wrap(
        name,
        format!(
            "impl _serde::Deserialize for {name} {{\
             fn deserialize(v: &_serde::Value) -> Result<Self, _serde::Error> {{ {body} }} }}"
        ),
    )
}

/// The deserialization initializer for one field of the `Value` object
/// bound to `src`.
fn field_init(f: &Field, src: &str) -> String {
    let n = &f.name;
    if f.default {
        format!(
            "{n}: match {src}.field(\"{n}\") {{\
             _serde::Value::Null => ::core::default::Default::default(),\
             other => _serde::Deserialize::deserialize(other)?, }},"
        )
    } else {
        format!("{n}: _serde::Deserialize::deserialize({src}.field(\"{n}\"))?,")
    }
}

/// Wraps generated impls in a `const` block with a hygienic serde alias
/// (the same trick real serde_derive uses).
fn wrap(name: &str, impls: String) -> TokenStream {
    let out = format!("const _: () = {{ extern crate serde as _serde; {impls} }};");
    out.parse()
        .unwrap_or_else(|e| panic!("serde derive for `{name}` generated invalid code: {e}"))
}

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found `{other}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "vendored serde derive does not support generic type `{name}`; \
             write the impls by hand"
        );
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => panic!(
            "vendored serde derive does not support tuple struct `{name}`; \
             write the impls by hand"
        ),
        other => panic!("serde derive: expected `{{` after `{name}`, found {other:?}"),
    };
    let item = match kind.as_str() {
        "struct" => Item::Struct(parse_fields(body)),
        "enum" => Item::Enum(parse_variants(body, &name)),
        other => panic!("serde derive: cannot derive for `{other} {name}`"),
    };
    Parsed { name, item }
}

/// Advances past outer attributes (`#[...]`, including doc comments) and a
/// `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Serde options found on one field.
#[derive(Default)]
struct SerdeOpts {
    default: bool,
    skip_if_none: bool,
}

/// Parses a `#[...]` attribute group if it is `serde(...)`; panics on any
/// serde option the shim does not implement (`default` and
/// `skip_serializing_if = "Option::is_none"` are the supported ones).
fn serde_attr_opts(group: &Group) -> SerdeOpts {
    let mut opts = SerdeOpts::default();
    let mut it = group.stream().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let tokens: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut i = 0;
            while i < tokens.len() {
                match &tokens[i] {
                    TokenTree::Ident(opt) if opt.to_string() == "default" => {
                        opts.default = true;
                        i += 1;
                    }
                    TokenTree::Ident(opt) if opt.to_string() == "skip_serializing_if" => {
                        let pred = match (tokens.get(i + 1), tokens.get(i + 2)) {
                            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                                if eq.as_char() == '=' =>
                            {
                                lit.to_string()
                            }
                            _ => panic!(
                                "vendored serde derive: `skip_serializing_if` needs \
                                 `= \"Option::is_none\"`"
                            ),
                        };
                        if pred != "\"Option::is_none\"" {
                            panic!(
                                "vendored serde derive supports only \
                                 `skip_serializing_if = \"Option::is_none\"`, found {pred}"
                            );
                        }
                        opts.skip_if_none = true;
                        i += 3;
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
                    other => panic!(
                        "vendored serde derive supports only `#[serde(default)]` and \
                         `#[serde(skip_serializing_if = \"Option::is_none\")]`, \
                         found serde option `{other}`"
                    ),
                }
            }
        }
        _ => {}
    }
    opts
}

/// Parses `name: Type, ...` named fields (with optional `#[serde(default)]`
/// markers), returning them in order.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Walk attributes ourselves (rather than skip_attrs_and_vis) to
        // spot `#[serde(...)]` options on the way past.
        let mut opts = SerdeOpts::default();
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        let found = serde_attr_opts(g);
                        opts.default |= found.default;
                        opts.skip_if_none |= found.skip_if_none;
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(tokens.get(i), Some(TokenTree::Group(g))
                        if g.delimiter() == Delimiter::Parenthesis)
                    {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, found `{other}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, found `{other}`"),
        }
        // Skip the type: everything up to the next comma at angle-depth 0.
        // Parens/brackets/braces arrive as single Group trees, so only
        // `<`/`>` need explicit depth tracking.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            default: opts.default,
            skip_if_none: opts.skip_if_none,
        });
    }
    fields
}

/// Parses enum variants: unit or named-field (tuple variants are rejected).
fn parse_variants(stream: TokenStream, enum_name: &str) -> Vec<(String, Option<Vec<Field>>)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                panic!("serde derive: expected variant name in `{enum_name}`, found `{other}`")
            }
        };
        i += 1;
        match tokens.get(i) {
            None => {
                variants.push((name, None));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                i += 1;
                variants.push((name, None));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push((name.clone(), Some(parse_fields(g.stream()))));
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => panic!(
                "vendored serde derive does not support tuple variant \
                 `{enum_name}::{name}`; use named fields"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                "vendored serde derive does not support explicit discriminants \
                 (`{enum_name}::{name} = ...`)"
            ),
            Some(other) => {
                panic!("serde derive: unexpected token after `{enum_name}::{name}`: `{other}`")
            }
        }
    }
    variants
}
