//! Offline vendored subset of `crossbeam`: bounded MPMC channels with the
//! blocking semantics the hybrid pipeline depends on (send blocks when the
//! queue is full — back-pressure — and disconnection is observable from
//! both ends). Implemented on `std` mutex/condvar; `len()` is exposed so
//! the pipeline executor can record queue high-water marks.

// Offline stand-in shim: not held to the first-party lint bar.
#![allow(clippy::all)]

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_full: Condvar,
        not_empty: Condvar,
        cap: usize,
    }

    /// Error returned when sending on a channel with no receivers; carries
    /// the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving on an empty channel with no senders.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a bounded channel of capacity `cap` (≥ 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "this vendored channel requires capacity >= 1");
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap),
                senders: 1,
                receivers: 1,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `msg`. Fails (returning
        /// the message) once every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                if state.queue.len() < self.inner.cap {
                    state.queue.push_back(msg);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self.inner.not_full.wait(state).unwrap();
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Fails once the queue is empty
        /// and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).unwrap();
            }
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.inner.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trips_in_order() {
            let (tx, rx) = bounded::<u32>(2);
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send(i).unwrap();
                    }
                });
                let got: Vec<u32> = rx.iter().collect();
                assert_eq!(got, (0..100).collect::<Vec<_>>());
            });
        }

        #[test]
        fn send_fails_when_receiver_gone() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn recv_fails_when_senders_gone_and_empty() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn capacity_one_backpressure() {
            let (tx, rx) = bounded::<u64>(1);
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..1000 {
                        tx.send(i).unwrap();
                    }
                });
                let mut expect = 0;
                for v in rx.iter() {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                assert_eq!(expect, 1000);
            });
        }
    }
}
