//! Electrospray ionisation source model.
//!
//! The ESI emitter turns analyte concentrations into a continuous ion
//! current. What downstream stages need is, per species, an expected ion
//! *rate* (ions/s); the absolute scale is set by the total spray current and
//! the ionisation efficiency, and the split across species follows their
//! abundances (with saturation at high total concentration — ESI response
//! is famously linear only at low concentration, which is what makes the
//! dynamic-range experiment E6 interesting).

use crate::ion::IonSpecies;
use serde::{Deserialize, Serialize};

/// An ESI source converting species abundances into ion rates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EsiSource {
    /// Total analyte ion current delivered into the funnel, in
    /// elementary charges per second.
    pub total_charges_per_s: f64,
    /// Concentration (abundance units) at which the response saturates.
    pub saturation_abundance: f64,
}

impl Default for EsiSource {
    fn default() -> Self {
        Self {
            // ~100 pA of analyte current into the funnel — typical of the
            // PNNL dual-funnel interface after losses.
            total_charges_per_s: 6.0e8,
            saturation_abundance: 100.0,
        }
    }
}

impl EsiSource {
    /// Per-species *ion* rates (ions/s) for a mixture.
    ///
    /// Each species competes for charge: the effective response of species
    /// `i` is `a_i / (1 + Σa / S)` (shared-saturation model), and the total
    /// delivered charge current is capped at `total_charges_per_s`.
    pub fn ion_rates(&self, species: &[IonSpecies]) -> Vec<f64> {
        let total_abundance: f64 = species.iter().map(|s| s.abundance).sum();
        if total_abundance <= 0.0 {
            return vec![0.0; species.len()];
        }
        let suppression = 1.0 + total_abundance / self.saturation_abundance;
        let effective: Vec<f64> = species.iter().map(|s| s.abundance / suppression).collect();
        let effective_total: f64 = effective.iter().sum();
        // Charge current splits proportionally to effective response; each
        // ion of species i carries z_i charges.
        let scale = self.total_charges_per_s
            * (effective_total / (effective_total + self.saturation_abundance))
            / effective_total.max(f64::MIN_POSITIVE);
        species
            .iter()
            .zip(effective.iter())
            .map(|(s, &e)| scale * e / s.charge as f64)
            .collect()
    }

    /// Total charge rate (charges/s) actually delivered for a mixture.
    pub fn delivered_charge_rate(&self, species: &[IonSpecies]) -> f64 {
        self.ion_rates(species)
            .iter()
            .zip(species.iter())
            .map(|(&r, s)| r * s.charge as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(abundance: f64, z: u32) -> IonSpecies {
        IonSpecies::new(format!("s{abundance}/{z}"), 1000.0, z, 300.0, abundance)
    }

    #[test]
    fn rates_proportional_to_abundance_at_low_concentration() {
        let src = EsiSource::default();
        let species = vec![mk(1.0, 1), mk(2.0, 1), mk(4.0, 1)];
        let rates = src.ion_rates(&species);
        assert!((rates[1] / rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[2] / rates[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn response_saturates_at_high_load() {
        let src = EsiSource::default();
        let lo = src.delivered_charge_rate(&[mk(1.0, 1)]);
        let hi = src.delivered_charge_rate(&[mk(10_000.0, 1)]);
        // 10⁴× the analyte gives far less than 10⁴× the current…
        assert!(hi / lo < 200.0, "gain {}", hi / lo);
        // …and never exceeds the spray current.
        assert!(hi <= src.total_charges_per_s * (1.0 + 1e-9));
    }

    #[test]
    fn higher_charge_means_fewer_ions_for_same_current() {
        let src = EsiSource::default();
        let r1 = src.ion_rates(&[mk(1.0, 1)])[0];
        let r2 = src.ion_rates(&[mk(1.0, 2)])[0];
        assert!((r1 / r2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn matrix_suppression_of_trace_analyte() {
        // The same trace analyte yields less current when a heavy matrix is
        // co-sprayed — the ESI suppression behind experiment E6.
        let src = EsiSource::default();
        let alone = src.ion_rates(&[mk(0.1, 1)])[0];
        let mut mix = vec![mk(0.1, 1)];
        mix.extend((0..50).map(|_| mk(20.0, 1)));
        let suppressed = src.ion_rates(&mix)[0];
        assert!(
            suppressed < alone,
            "suppressed {suppressed} vs alone {alone}"
        );
    }

    #[test]
    fn empty_mixture_is_silent() {
        let src = EsiSource::default();
        assert!(src.ion_rates(&[]).is_empty());
        assert_eq!(src.delivered_charge_rate(&[]), 0.0);
    }
}
