//! Isotopic envelopes via the averagine model.
//!
//! The TOF dimension of the simulated data must carry realistic isotopic
//! fine structure (the A, A+1, A+2… peaks one Dalton apart divided by the
//! charge): peak pickers and feature matchers behave very differently on
//! single sticks versus envelopes. We estimate elemental composition from
//! the averagine residue (Senko et al.) and convolve exact per-element
//! isotope distributions.

/// Averagine composition per 111.1254 Da of peptide mass.
const AVERAGINE_MASS: f64 = 111.125_4;
const AVERAGINE: [(Element, f64); 5] = [
    (Element::C, 4.9384),
    (Element::H, 7.7583),
    (Element::N, 1.3577),
    (Element::O, 1.4773),
    (Element::S, 0.0417),
];

/// The elements of the averagine model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Element {
    /// Carbon.
    C,
    /// Hydrogen.
    H,
    /// Nitrogen.
    N,
    /// Oxygen.
    O,
    /// Sulfur.
    S,
}

impl Element {
    /// Natural isotope abundances by nominal mass offset (A, A+1, A+2, …).
    fn isotopes(self) -> &'static [f64] {
        match self {
            Element::C => &[0.9893, 0.0107],
            Element::H => &[0.999_885, 0.000_115],
            Element::N => &[0.996_36, 0.003_64],
            Element::O => &[0.997_57, 0.000_38, 0.002_05],
            Element::S => &[0.9499, 0.0075, 0.0425, 0.0, 0.0001],
        }
    }
}

/// Convolves two offset distributions, truncating at `max_len`.
fn convolve(a: &[f64], b: &[f64], max_len: usize) -> Vec<f64> {
    let n = (a.len() + b.len() - 1).min(max_len);
    let mut out = vec![0.0; n];
    for (i, &av) in a.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        for (j, &bv) in b.iter().enumerate() {
            if i + j < n {
                out[i + j] += av * bv;
            }
        }
    }
    out
}

/// Distribution of `count` atoms of one element (binomial power by
/// repeated convolution with doubling).
fn element_distribution(element: Element, count: u32, max_len: usize) -> Vec<f64> {
    let mut result = vec![1.0];
    let mut base = element.isotopes().to_vec();
    let mut k = count;
    while k > 0 {
        if k & 1 == 1 {
            result = convolve(&result, &base, max_len);
        }
        base = convolve(&base, &base, max_len);
        k >>= 1;
    }
    result
}

/// Isotopic envelope (relative intensities of A, A+1, …, normalised to sum
/// 1) for a peptide-like molecule of the given monoisotopic mass.
pub fn averagine_envelope(mass_da: f64, max_peaks: usize) -> Vec<f64> {
    assert!(mass_da > 0.0, "mass must be positive");
    assert!(max_peaks >= 1);
    let units = mass_da / AVERAGINE_MASS;
    let mut dist = vec![1.0];
    for (el, per_unit) in AVERAGINE {
        let count = (per_unit * units).round().max(0.0) as u32;
        if count > 0 {
            let d = element_distribution(el, count, max_peaks);
            dist = convolve(&dist, &d, max_peaks);
        }
    }
    let total: f64 = dist.iter().sum();
    for v in dist.iter_mut() {
        *v /= total;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_peptide_is_mostly_monoisotopic() {
        let env = averagine_envelope(500.0, 6);
        assert!(env[0] > 0.7, "A = {}", env[0]);
        assert!(env[0] > env[1] && env[1] > env[2]);
    }

    #[test]
    fn kda_peptide_has_substantial_a_plus_1() {
        let env = averagine_envelope(1000.0, 8);
        // ~50 carbons → A+1/A ≈ 0.53.
        let ratio = env[1] / env[0];
        assert!(ratio > 0.4 && ratio < 0.7, "A+1/A = {ratio}");
    }

    #[test]
    fn crossover_near_1800_da() {
        // Above ~1800 Da the A+1 peak overtakes the monoisotopic peak.
        let low = averagine_envelope(1500.0, 8);
        assert!(low[0] > low[1]);
        let high = averagine_envelope(2500.0, 8);
        assert!(high[1] > high[0]);
    }

    #[test]
    fn envelope_is_normalised() {
        for mass in [300.0, 1000.0, 3000.0] {
            let env = averagine_envelope(mass, 10);
            let sum: f64 = env.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "mass {mass}: sum {sum}");
        }
    }

    #[test]
    fn element_distribution_binomial_sanity() {
        // Two carbons: P(A+1) = 2·p·(1−p).
        let d = element_distribution(Element::C, 2, 4);
        let p = 0.0107;
        assert!((d[1] - 2.0 * p * (1.0 - p)).abs() < 1e-9);
        assert!((d[2] - p * p).abs() < 1e-9);
    }

    #[test]
    fn truncation_respected() {
        let env = averagine_envelope(5000.0, 4);
        assert_eq!(env.len(), 4);
    }
}
