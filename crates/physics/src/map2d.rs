//! The 2-D drift-time × m/z intensity map — the fundamental data object of
//! the whole pipeline (truth maps, captured frames, accumulated and
//! deconvolved results all share this layout).

use serde::{Deserialize, Serialize};

/// Dense drift-major 2-D map: `data[d * mz_bins + m]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftTofMap {
    drift_bins: usize,
    mz_bins: usize,
    data: Vec<f64>,
}

impl DriftTofMap {
    /// All-zero map.
    pub fn zeros(drift_bins: usize, mz_bins: usize) -> Self {
        Self {
            drift_bins,
            mz_bins,
            data: vec![0.0; drift_bins * mz_bins],
        }
    }

    /// Builds from raw drift-major data.
    ///
    /// # Panics
    /// Panics if the data length does not match the shape.
    pub fn from_vec(drift_bins: usize, mz_bins: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), drift_bins * mz_bins, "shape mismatch");
        Self {
            drift_bins,
            mz_bins,
            data,
        }
    }

    /// Number of drift bins.
    pub fn drift_bins(&self) -> usize {
        self.drift_bins
    }

    /// Number of m/z bins.
    pub fn mz_bins(&self) -> usize {
        self.mz_bins
    }

    /// Immutable view of one drift bin's TOF spectrum.
    pub fn drift_row(&self, d: usize) -> &[f64] {
        &self.data[d * self.mz_bins..(d + 1) * self.mz_bins]
    }

    /// Mutable view of one drift bin's TOF spectrum.
    pub fn drift_row_mut(&mut self, d: usize) -> &mut [f64] {
        &mut self.data[d * self.mz_bins..(d + 1) * self.mz_bins]
    }

    /// Value at (drift, m/z).
    pub fn at(&self, d: usize, m: usize) -> f64 {
        self.data[d * self.mz_bins + m]
    }

    /// Mutable value at (drift, m/z).
    pub fn at_mut(&mut self, d: usize, m: usize) -> &mut f64 {
        &mut self.data[d * self.mz_bins + m]
    }

    /// Raw drift-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Adds `scale·drift[d]·mz[m]` to every cell (rank-one update) —
    /// depositing one species' signal.
    pub fn add_outer(&mut self, drift: &[f64], mz: &[f64], scale: f64) {
        assert_eq!(drift.len(), self.drift_bins, "drift length mismatch");
        assert_eq!(mz.len(), self.mz_bins, "mz length mismatch");
        for (d, &dv) in drift.iter().enumerate() {
            if dv == 0.0 {
                continue;
            }
            let row = self.drift_row_mut(d);
            let f = scale * dv;
            for (r, &mv) in row.iter_mut().zip(mz.iter()) {
                *r += f * mv;
            }
        }
    }

    /// Sparse rank-one update: like [`Self::add_outer`] but the m/z profile
    /// is given as `(bin, value)` pairs — the isotopic envelope of one
    /// species touches only a few dozen of the thousands of m/z bins.
    pub fn add_outer_sparse(&mut self, drift: &[f64], mz_pairs: &[(usize, f64)], scale: f64) {
        assert_eq!(drift.len(), self.drift_bins, "drift length mismatch");
        for (d, &dv) in drift.iter().enumerate() {
            if dv == 0.0 {
                continue;
            }
            let f = scale * dv;
            let row = self.drift_row_mut(d);
            for &(m, mv) in mz_pairs {
                row[m] += f * mv;
            }
        }
    }

    /// Adds another map (same shape) scaled by `scale`.
    pub fn add_scaled(&mut self, other: &DriftTofMap, scale: f64) {
        assert_eq!(self.drift_bins, other.drift_bins);
        assert_eq!(self.mz_bins, other.mz_bins);
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += scale * b;
        }
    }

    /// Multiplies every cell by `scale`.
    pub fn scale(&mut self, scale: f64) {
        for v in self.data.iter_mut() {
            *v *= scale;
        }
    }

    /// Sum over every cell.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Largest cell value.
    pub fn max(&self) -> f64 {
        self.data.iter().fold(0.0f64, |a, &b| a.max(b))
    }

    /// Extracted drift profile: sum over an inclusive m/z bin window
    /// (an extracted-ion mobilogram, XIC in the drift dimension).
    pub fn drift_profile(&self, mz_lo: usize, mz_hi: usize) -> Vec<f64> {
        assert!(mz_lo <= mz_hi && mz_hi < self.mz_bins, "bad mz window");
        (0..self.drift_bins)
            .map(|d| self.drift_row(d)[mz_lo..=mz_hi].iter().sum())
            .collect()
    }

    /// Total-ion drift profile (sum over all m/z).
    pub fn total_ion_drift_profile(&self) -> Vec<f64> {
        (0..self.drift_bins)
            .map(|d| self.drift_row(d).iter().sum())
            .collect()
    }

    /// Summed m/z spectrum over an inclusive drift window.
    pub fn mz_spectrum(&self, d_lo: usize, d_hi: usize) -> Vec<f64> {
        assert!(d_lo <= d_hi && d_hi < self.drift_bins, "bad drift window");
        let mut out = vec![0.0; self.mz_bins];
        for d in d_lo..=d_hi {
            for (o, &v) in out.iter_mut().zip(self.drift_row(d).iter()) {
                *o += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outer_product_deposits_correctly() {
        let mut m = DriftTofMap::zeros(4, 3);
        m.add_outer(&[0.0, 1.0, 0.5, 0.0], &[0.2, 0.8, 0.0], 10.0);
        assert!((m.at(1, 0) - 2.0).abs() < 1e-12);
        assert!((m.at(1, 1) - 8.0).abs() < 1e-12);
        assert!((m.at(2, 1) - 4.0).abs() < 1e-12);
        assert_eq!(m.at(0, 0), 0.0);
        assert!((m.total() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn profiles_are_marginals() {
        let mut m = DriftTofMap::zeros(3, 4);
        for d in 0..3 {
            for z in 0..4 {
                *m.at_mut(d, z) = (d * 4 + z) as f64;
            }
        }
        let drift = m.total_ion_drift_profile();
        assert_eq!(drift, vec![6.0, 22.0, 38.0]);
        let mz = m.mz_spectrum(0, 2);
        assert_eq!(mz, vec![12.0, 15.0, 18.0, 21.0]);
        let window = m.drift_profile(1, 2);
        assert_eq!(window, vec![3.0, 11.0, 19.0]);
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = DriftTofMap::zeros(2, 2);
        *a.at_mut(0, 0) = 1.0;
        let mut b = DriftTofMap::zeros(2, 2);
        *b.at_mut(1, 1) = 4.0;
        a.add_scaled(&b, 0.5);
        assert_eq!(a.at(1, 1), 2.0);
        a.scale(3.0);
        assert_eq!(a.at(0, 0), 3.0);
        assert_eq!(a.max(), 6.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_checks_shape() {
        let _ = DriftTofMap::from_vec(2, 2, vec![0.0; 5]);
    }
}
