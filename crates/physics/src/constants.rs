//! Physical constants (SI unless noted) and instrument-domain conversions.

/// Boltzmann constant, J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge, C.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Unified atomic mass unit, kg.
pub const AMU: f64 = 1.660_539_066_60e-27;

/// Loschmidt number density at 273.15 K and 760 Torr, m⁻³.
pub const LOSCHMIDT: f64 = 2.686_780_111e25;

/// Standard temperature for reduced mobility, K.
pub const STANDARD_TEMPERATURE: f64 = 273.15;

/// Standard pressure for reduced mobility, Torr.
pub const STANDARD_PRESSURE_TORR: f64 = 760.0;

/// Mass of the N₂ buffer gas molecule, Da.
pub const N2_MASS_DA: f64 = 28.013_4;

/// Mass of a proton, Da (for m/z computation of protonated species).
pub const PROTON_MASS_DA: f64 = 1.007_276_466;

/// Conversion: 1 Å² in m².
pub const A2_TO_M2: f64 = 1e-20;

/// Conversion: m²/(V·s) → cm²/(V·s).
pub const M2_TO_CM2: f64 = 1e4;

/// FWHM of a Gaussian in units of its σ.
pub const FWHM_SIGMA: f64 = 2.354_820_045;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loschmidt_is_ideal_gas_at_stp() {
        // n = P/(kB·T) with P = 101325 Pa, T = 273.15 K.
        let n = 101_325.0 / (BOLTZMANN * STANDARD_TEMPERATURE);
        assert!((n - LOSCHMIDT).abs() / LOSCHMIDT < 1e-6);
    }

    #[test]
    fn fwhm_constant() {
        assert!((FWHM_SIGMA - (8.0 * (2.0f64).ln()).sqrt()).abs() < 1e-9);
    }
}
