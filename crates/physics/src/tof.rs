//! Orthogonal time-of-flight mass analyser.
//!
//! Every IMS drift bin is sub-sampled by thousands of orthogonal TOF
//! extractions; the per-bin data the capture engine sees is a full m/z
//! spectrum. The analyser model maps species to m/z peak envelopes
//! (isotopic fine structure included) on a fixed m/z grid, with a
//! resolution-limited Gaussian profile per isotope.

use crate::constants::PROTON_MASS_DA;
use crate::ion::IonSpecies;
use crate::isotope::averagine_envelope;
use serde::{Deserialize, Serialize};

/// Systematic mass-measurement error of a (miscalibrated) TOF: the
/// measured m/z deviates from the true one by
/// `offset_ppm + slope_ppm·(m/z − 1000)/1000` parts per million — the
/// drifting-calibration model the regression-recalibration companion paper
/// removes (entry 47).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MassError {
    /// Constant error, ppm.
    pub offset_ppm: f64,
    /// m/z-dependent error, ppm per 1000 Th away from m/z 1000.
    pub slope_ppm: f64,
}

impl MassError {
    /// A perfectly calibrated analyser.
    pub fn none() -> Self {
        Self {
            offset_ppm: 0.0,
            slope_ppm: 0.0,
        }
    }

    /// The systematic error at a given true m/z, ppm.
    pub fn ppm_at(&self, mz: f64) -> f64 {
        self.offset_ppm + self.slope_ppm * (mz - 1000.0) / 1000.0
    }

    /// The measured (distorted) m/z for a true m/z.
    pub fn distort(&self, mz: f64) -> f64 {
        mz * (1.0 + self.ppm_at(mz) * 1e-6)
    }
}

impl Default for MassError {
    fn default() -> Self {
        Self::none()
    }
}

/// Orthogonal-TOF mass analyser with a uniform m/z grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TofAnalyzer {
    /// Lower edge of the m/z range, Th.
    pub mz_min: f64,
    /// Upper edge of the m/z range, Th.
    pub mz_max: f64,
    /// Number of m/z bins.
    pub n_bins: usize,
    /// Mass resolving power `m/Δm` (FWHM definition).
    pub resolving_power: f64,
    /// Maximum isotope peaks modelled per species.
    pub max_isotopes: usize,
    /// Systematic calibration error applied to every recorded m/z.
    pub mass_error: MassError,
}

impl Default for TofAnalyzer {
    fn default() -> Self {
        Self {
            mz_min: 200.0,
            mz_max: 2200.0,
            n_bins: 2000,
            resolving_power: 5000.0,
            max_isotopes: 6,
            mass_error: MassError::none(),
        }
    }
}

impl TofAnalyzer {
    /// Bin width in Th.
    pub fn bin_width(&self) -> f64 {
        (self.mz_max - self.mz_min) / self.n_bins as f64
    }

    /// Bin index for an m/z, or `None` if outside the range.
    pub fn bin_of(&self, mz: f64) -> Option<usize> {
        if mz < self.mz_min || mz >= self.mz_max {
            return None;
        }
        Some(((mz - self.mz_min) / self.bin_width()) as usize)
    }

    /// m/z at a bin centre.
    pub fn mz_of(&self, bin: usize) -> f64 {
        self.mz_min + (bin as f64 + 0.5) * self.bin_width()
    }

    /// The m/z profile of one species, normalised to unit total area
    /// (fraction of the species' ions landing per m/z bin). Species outside
    /// the range produce an all-zero profile.
    pub fn species_profile(&self, species: &IonSpecies) -> Vec<f64> {
        let mut profile = vec![0.0; self.n_bins];
        let envelope = averagine_envelope(species.mass_da, self.max_isotopes);
        let z = species.charge as f64;
        let width = self.bin_width();
        for (iso, &frac) in envelope.iter().enumerate() {
            if frac <= 0.0 {
                continue;
            }
            // Isotopes are spaced ~1.00235 Da apart (averaged C/N spacing);
            // the analyser records them at the (mis)calibrated position.
            let true_mz = (species.mass_da + iso as f64 * 1.002_35 + z * PROTON_MASS_DA) / z;
            let mz = self.mass_error.distort(true_mz);
            if mz < self.mz_min || mz >= self.mz_max {
                continue;
            }
            let sigma_mz = (mz / self.resolving_power) / crate::constants::FWHM_SIGMA;
            let sigma_bins = (sigma_mz / width).max(0.05);
            // gaussian_binned integrates over [i, i+1), so positions are in
            // bin-edge coordinates.
            let mu_bins = (mz - self.mz_min) / width;
            let peak = ims_signal::peaks::gaussian_binned(self.n_bins, mu_bins, sigma_bins, frac);
            for (p, v) in profile.iter_mut().zip(peak.iter()) {
                *p += v;
            }
        }
        profile
    }

    /// True if two species are separated by at least one FWHM in m/z.
    pub fn resolves(&self, a: &IonSpecies, b: &IonSpecies) -> bool {
        let mza = a.mz();
        let mzb = b.mz();
        let fwhm = mza.max(mzb) / self.resolving_power;
        (mza - mzb).abs() > fwhm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peptide(mass: f64, z: u32) -> IonSpecies {
        IonSpecies::new(format!("m{mass}z{z}"), mass, z, 300.0, 1.0)
    }

    #[test]
    fn profile_lands_at_the_right_mz() {
        let tof = TofAnalyzer::default();
        let sp = peptide(1000.0, 2);
        let profile = tof.species_profile(&sp);
        let (apex, _) = ims_signal::stats::argmax(&profile).unwrap();
        let apex_mz = tof.mz_of(apex);
        assert!(
            (apex_mz - sp.mz()).abs() < 2.0 * tof.bin_width(),
            "apex at {apex_mz}"
        );
    }

    #[test]
    fn profile_area_is_isotope_coverage() {
        let tof = TofAnalyzer::default();
        let sp = peptide(1000.0, 2);
        let total: f64 = tof.species_profile(&sp).iter().sum();
        // All modelled isotopes are in range, so area ≈ 1.
        assert!((total - 1.0).abs() < 0.02, "area {total}");
    }

    #[test]
    fn out_of_range_species_is_silent() {
        let tof = TofAnalyzer::default();
        let heavy = peptide(10_000.0, 1); // m/z 10001 > 2200
        assert!(tof.species_profile(&heavy).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn isotope_spacing_visible_at_high_resolution() {
        let tof = TofAnalyzer {
            resolving_power: 20_000.0,
            n_bins: 20_000,
            ..Default::default()
        };
        let sp = peptide(1200.0, 1);
        let profile = tof.species_profile(&sp);
        let peaks = ims_signal::peaks::PeakFinder::with_min_height(1e-4).find(&profile);
        assert!(peaks.len() >= 3, "found {} isotope peaks", peaks.len());
        // First two isotopes 1 Da apart.
        let mut centroids: Vec<f64> = peaks.iter().map(|p| tof.mz_of(p.apex)).collect();
        centroids.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((centroids[1] - centroids[0] - 1.0).abs() < 0.1);
    }

    #[test]
    fn resolves_follows_resolution() {
        let tof = TofAnalyzer::default();
        let a = peptide(1000.0, 1);
        let close = peptide(1000.05, 1); // Δm/z = 0.05 < FWHM 0.2
        let far = peptide(1001.0, 1);
        assert!(!tof.resolves(&a, &close));
        assert!(tof.resolves(&a, &far));
    }

    #[test]
    fn mass_error_shifts_recorded_peaks() {
        let mut tof = TofAnalyzer {
            n_bins: 20_000, // 0.1 Th bins so a 200 ppm shift is resolvable
            ..Default::default()
        };
        tof.mass_error = MassError {
            offset_ppm: 200.0,
            slope_ppm: 0.0,
        };
        let sp = peptide(1000.0, 1);
        let profile = tof.species_profile(&sp);
        let (apex, _) = ims_signal::stats::argmax(&profile).unwrap();
        let apex_mz = tof.mz_of(apex);
        let expect = sp.mz() * (1.0 + 200e-6);
        assert!(
            (apex_mz - expect).abs() < 2.0 * tof.bin_width(),
            "apex {apex_mz} vs distorted {expect}"
        );
    }

    #[test]
    fn mass_error_model_is_linear_in_mz() {
        let e = MassError {
            offset_ppm: 3.0,
            slope_ppm: 4.0,
        };
        assert!((e.ppm_at(1000.0) - 3.0).abs() < 1e-12);
        assert!((e.ppm_at(2000.0) - 7.0).abs() < 1e-12);
        assert!((e.ppm_at(500.0) - 1.0).abs() < 1e-12);
        assert_eq!(MassError::none().distort(1234.5), 1234.5);
    }

    #[test]
    fn bin_mapping_round_trips() {
        let tof = TofAnalyzer::default();
        assert_eq!(tof.bin_of(tof.mz_min - 1.0), None);
        assert_eq!(tof.bin_of(tof.mz_max + 1.0), None);
        let bin = tof.bin_of(700.0).unwrap();
        assert!((tof.mz_of(bin) - 700.0).abs() <= tof.bin_width());
    }
}
