//! MCP detector and digitiser models: ADC versus TDC.
//!
//! The companion work (Belov et al. 2008, "Dynamically Multiplexed IMS-TOF")
//! moved from time-to-digital (TDC) to analog-to-digital (ADC) detection
//! precisely because multiplexing multiplies the instantaneous ion flux:
//! a TDC registers at most one hit per bin per extraction and therefore
//! saturates, while an ADC digitises the full analog MCP pulse pile-up.
//! Experiment E10 reproduces that ablation.

use ims_signal::noise::{gaussian, poisson};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// MCP + ADC detection chain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdcDetector {
    /// Mean single-ion pulse amplitude, ADC counts.
    pub gain: f64,
    /// Relative spread of the single-ion gain (MCP gain statistics).
    pub gain_spread: f64,
    /// RMS electronic noise per bin, ADC counts.
    pub noise_sigma: f64,
    /// Effective full-scale value per drift bin per frame. Each drift bin
    /// sums many 8-bit TOF extractions on the digitiser, so the effective
    /// ceiling is far above a single conversion's 255 (here 2¹⁶ − 1).
    pub full_scale: f64,
}

impl Default for AdcDetector {
    fn default() -> Self {
        Self {
            gain: 8.0,
            gain_spread: 0.35,
            noise_sigma: 1.2,
            full_scale: 65_535.0,
        }
    }
}

impl AdcDetector {
    /// Digitises one bin: `n_ions` arrivals → ADC counts (clamped).
    pub fn digitize_bin(&self, rng: &mut impl Rng, n_ions: u64) -> f64 {
        let mut amplitude = 0.0;
        if n_ions > 0 {
            if n_ions > 1000 {
                // Gaussian limit of the summed gain distribution.
                let mean = n_ions as f64 * self.gain;
                let sigma = self.gain * self.gain_spread * (n_ions as f64).sqrt();
                amplitude = mean + sigma * gaussian(rng);
            } else {
                for _ in 0..n_ions {
                    let g = self.gain * (1.0 + self.gain_spread * gaussian(rng));
                    amplitude += g.max(0.0);
                }
            }
        }
        amplitude += self.noise_sigma * gaussian(rng);
        amplitude.clamp(0.0, self.full_scale)
    }

    /// Digitises a whole spectrum of expected ion counts: Poisson arrivals
    /// per bin, then the analog chain.
    pub fn digitize(&self, rng: &mut impl Rng, expected_ions: &[f64]) -> Vec<f64> {
        expected_ions
            .iter()
            .map(|&mean| {
                let n = poisson(rng, mean.max(0.0));
                self.digitize_bin(rng, n)
            })
            .collect()
    }

    /// Expected ADC counts for a given expected ion count (linearity
    /// reference, ignoring clamping).
    pub fn expected_response(&self, expected_ions: f64) -> f64 {
        expected_ions * self.gain
    }
}

/// Time-to-digital converter: registers at most one hit per bin per
/// extraction (non-paralyzable dead time of one bin).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TdcDetector {
    /// Detection efficiency per ion (MCP open-area × quantum efficiency).
    pub efficiency: f64,
}

impl Default for TdcDetector {
    fn default() -> Self {
        Self { efficiency: 0.6 }
    }
}

impl TdcDetector {
    /// One extraction: each bin reports 0 or 1.
    ///
    /// The probability of at least one detected ion in a bin with `mean`
    /// expected arrivals is `1 − e^{−η·mean}` — the classic TDC saturation.
    pub fn digitize_extraction(&self, rng: &mut impl Rng, expected_ions: &[f64]) -> Vec<f64> {
        expected_ions
            .iter()
            .map(|&mean| {
                let p = 1.0 - (-self.efficiency * mean.max(0.0)).exp();
                if rng.gen::<f64>() < p {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Sums `extractions` independent TDC extractions (histogram mode).
    pub fn digitize(
        &self,
        rng: &mut impl Rng,
        expected_ions_per_extraction: &[f64],
        extractions: usize,
    ) -> Vec<f64> {
        let mut acc = vec![0.0; expected_ions_per_extraction.len()];
        for _ in 0..extractions {
            for (a, v) in acc
                .iter_mut()
                .zip(self.digitize_extraction(rng, expected_ions_per_extraction))
            {
                *a += v;
            }
        }
        acc
    }

    /// Expected counts per bin after `extractions` (the saturating
    /// response curve).
    pub fn expected_response(&self, expected_ions_per_extraction: f64, extractions: usize) -> f64 {
        extractions as f64 * (1.0 - (-self.efficiency * expected_ions_per_extraction).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    #[test]
    fn adc_is_linear_in_flux() {
        let det = AdcDetector {
            full_scale: 1e9,
            ..Default::default()
        };
        let mut r = rng();
        let reps = 3000;
        let mean_response = |ions: f64, r: &mut ChaCha8Rng| -> f64 {
            (0..reps).map(|_| det.digitize(r, &[ions])[0]).sum::<f64>() / reps as f64
        };
        let low = mean_response(2.0, &mut r);
        let high = mean_response(20.0, &mut r);
        let gain_ratio = high / low;
        assert!(
            (gain_ratio - 10.0).abs() < 1.0,
            "ADC gain ratio {gain_ratio} (expected ~10)"
        );
    }

    #[test]
    fn tdc_saturates_at_high_flux() {
        let det = TdcDetector::default();
        // At 10 ions/bin/extraction the TDC can only report ~1.
        let resp_low = det.expected_response(0.1, 100);
        let resp_high = det.expected_response(10.0, 100);
        // Flux rose 100×, response rose far less.
        assert!(resp_high / resp_low < 20.0);
        assert!(resp_high <= 100.0);
    }

    #[test]
    fn tdc_monte_carlo_matches_expectation() {
        let det = TdcDetector::default();
        let mut r = rng();
        let counts = det.digitize(&mut r, &[0.5], 2000);
        let expect = det.expected_response(0.5, 2000);
        assert!(
            (counts[0] - expect).abs() < 4.0 * expect.sqrt(),
            "got {} expected {expect}",
            counts[0]
        );
    }

    #[test]
    fn adc_clamps_at_full_scale() {
        let det = AdcDetector::default();
        let mut r = rng();
        let v = det.digitize_bin(&mut r, 10_000);
        assert!(v <= det.full_scale);
    }

    #[test]
    fn zero_signal_is_noise_only() {
        let det = AdcDetector::default();
        let mut r = rng();
        let trace = det.digitize(&mut r, &vec![0.0; 5000]);
        let mean = ims_signal::stats::mean(&trace);
        // Clamped-at-zero Gaussian noise: mean ≈ σ·φ(0)⁺ ≈ 0.4σ.
        assert!(mean < det.noise_sigma, "mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let det = AdcDetector::default();
        let a = det.digitize(&mut rng(), &[5.0; 32]);
        let b = det.digitize(&mut rng(), &[5.0; 32]);
        assert_eq!(a, b);
    }
}
