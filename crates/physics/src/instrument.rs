//! The composed IMS-TOF instrument: turns a workload into the expected-rate
//! map that the acquisition engines sample from.

use crate::detector::AdcDetector;
use crate::drift::DriftTube;
use crate::esi::EsiSource;
use crate::funnel::{AgcController, IonFunnelTrap};
use crate::gate::GateModel;
use crate::map2d::DriftTofMap;
use crate::tof::TofAnalyzer;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};

/// Full instrument configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instrument {
    /// Electrospray source.
    pub esi: EsiSource,
    /// Ion funnel trap (accumulation / release).
    pub trap: IonFunnelTrap,
    /// Automated gain control for the trap.
    pub agc: AgcController,
    /// Bradbury–Nielsen gate defects.
    pub gate: GateModel,
    /// Drift tube.
    pub tube: DriftTube,
    /// TOF mass analyser.
    pub tof: TofAnalyzer,
    /// ADC detection chain.
    pub adc: AdcDetector,
    /// Number of drift-time bins per IMS frame (the fine time base).
    pub drift_bins: usize,
    /// Drift-bin width, seconds.
    pub bin_width_s: f64,
}

impl Default for Instrument {
    fn default() -> Self {
        let tube = DriftTube::default();
        // Slowest species we care about: singly-charged tryptic peptides
        // with K₀ down to ≈ 0.55 cm²/Vs. 511 fine bins.
        let drift_bins = 511;
        let bin_width_s = tube.bin_width_for(0.55, drift_bins);
        Self {
            esi: EsiSource::default(),
            trap: IonFunnelTrap::default(),
            agc: AgcController::default(),
            gate: GateModel::default(),
            tube,
            tof: TofAnalyzer::default(),
            adc: AdcDetector::default(),
            drift_bins,
            bin_width_s,
        }
    }
}

impl Instrument {
    /// Builds an instrument with a specific drift-bin count (sequence
    /// length × oversampling), keeping the frame duration constant.
    pub fn with_drift_bins(drift_bins: usize) -> Self {
        let mut inst = Self::default();
        let frame = inst.frame_duration_s();
        inst.drift_bins = drift_bins;
        inst.bin_width_s = frame / drift_bins as f64;
        inst
    }

    /// IMS frame duration (one full drift window), seconds.
    pub fn frame_duration_s(&self) -> f64 {
        self.drift_bins as f64 * self.bin_width_s
    }

    /// Expected ion-rate map: cell `(d, m)` is the expected number of ions
    /// per second of gate-open time that land in drift bin `d` and m/z bin
    /// `m`, for a packet of `packet_charges` (which sets the space-charge
    /// broadening).
    ///
    /// Species whose m/z is out of range or whose drift time exceeds the
    /// frame contribute nothing (clipped exactly as a real instrument would).
    pub fn expected_rate_map(&self, workload: &Workload, packet_charges: f64) -> DriftTofMap {
        let mut map = DriftTofMap::zeros(self.drift_bins, self.tof.n_bins);
        let rates = self.esi.ion_rates(&workload.species);
        for (species, &rate) in workload.species.iter().zip(rates.iter()) {
            if rate <= 0.0 {
                continue;
            }
            let drift = self.tube.arrival_distribution(
                species,
                packet_charges,
                self.drift_bins,
                self.bin_width_s,
            );
            let mz = self.tof.species_profile(species);
            map.add_outer(&drift, &mz, rate);
        }
        map
    }

    /// Total expected ion rate (ions/s) that actually lands on the map.
    pub fn landed_rate(&self, workload: &Workload) -> f64 {
        self.expected_rate_map(workload, 0.0).total()
    }

    /// The measured charge rate (charges/s) the AGC servo sees.
    pub fn charge_rate(&self, workload: &Workload) -> f64 {
        self.esi.delivered_charge_rate(&workload.species)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_frame_fits_slowest_peptides() {
        let inst = Instrument::default();
        // Frame should be tens of ms.
        let f = inst.frame_duration_s();
        assert!(f > 0.01 && f < 0.2, "frame {f}");
    }

    #[test]
    fn rate_map_conserves_in_range_species() {
        let inst = Instrument::default();
        let w = Workload::three_peptide_mix();
        let map = inst.expected_rate_map(&w, 0.0);
        let rates = inst.esi.ion_rates(&w.species);
        let total_rate: f64 = rates.iter().sum();
        let landed = map.total();
        // Most species are in range; allow clipping losses.
        assert!(landed > 0.5 * total_rate, "landed {landed} of {total_rate}");
        assert!(landed <= total_rate * 1.001);
    }

    #[test]
    fn species_make_distinct_drift_peaks() {
        let inst = Instrument::default();
        let w = Workload::three_peptide_mix();
        let map = inst.expected_rate_map(&w, 0.0);
        let profile = map.total_ion_drift_profile();
        let peaks =
            ims_signal::peaks::PeakFinder::with_min_height(map.max() * 0.001).find(&profile);
        assert!(peaks.len() >= 3, "found {} drift peaks", peaks.len());
    }

    #[test]
    fn space_charge_broadens_map_peaks() {
        let inst = Instrument::default();
        let w = Workload::single_calibrant();
        let clean = inst.expected_rate_map(&w, 1e3).total_ion_drift_profile();
        let loaded = inst.expected_rate_map(&w, 1e7).total_ion_drift_profile();
        let f = ims_signal::peaks::PeakFinder::default();
        let p_clean = f.find(&clean)[0];
        let p_loaded = f.find(&loaded)[0];
        assert!(p_loaded.fwhm > 1.2 * p_clean.fwhm);
    }

    #[test]
    fn with_drift_bins_keeps_frame_duration() {
        let a = Instrument::default();
        let b = Instrument::with_drift_bins(1533);
        assert!((a.frame_duration_s() - b.frame_duration_s()).abs() < 1e-12);
        assert_eq!(b.drift_bins, 1533);
    }
}
