//! Space-charge (Coulombic) effects in the drift tube.
//!
//! Tolmachev, Clowers, Belov & Smith (Anal. Chem. 2009) showed that packets
//! above ~10⁴ elementary charges expand under their own field fast enough to
//! measurably degrade IMS resolving power. The functional form below is a
//! reconstruction that preserves their reported behaviour: negligible
//! broadening below `threshold_charges`, then a packet-radius growth with a
//! cube-root dependence on charge (ballistic Coulomb expansion of a
//! spherical cloud), which adds in quadrature with diffusional broadening.

use serde::{Deserialize, Serialize};

/// Space-charge broadening model for an ion packet in the drift region.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CoulombModel {
    /// Charge count below which broadening is negligible (~10⁴ e).
    pub threshold_charges: f64,
    /// Broadening strength: the relative extra temporal spread contributed
    /// at 10× the threshold charge.
    pub strength: f64,
}

impl Default for CoulombModel {
    fn default() -> Self {
        Self {
            threshold_charges: 1.0e4,
            strength: 0.35,
        }
    }
}

impl CoulombModel {
    /// Ratio of space-charge temporal spread to the diffusional spread for
    /// a packet of `charges` (0 below threshold; ∝ q^(1/3) above).
    pub fn relative_spread(&self, charges: f64) -> f64 {
        assert!(charges >= 0.0);
        if charges <= self.threshold_charges {
            return 0.0;
        }
        // Normalised so that at 10× threshold the ratio equals `strength`:
        // s(q) = strength · ((q/threshold)^(1/3) − 1) / (10^(1/3) − 1)
        let growth = (charges / self.threshold_charges).powf(1.0 / 3.0) - 1.0;
        self.strength * growth / (10.0f64.powf(1.0 / 3.0) - 1.0)
    }

    /// Factor by which the total peak width grows: quadrature sum of
    /// diffusion (1) and space charge.
    pub fn broadening_factor(&self, charges: f64) -> f64 {
        let s = self.relative_spread(charges);
        (1.0 + s * s).sqrt()
    }

    /// Resolving power after space-charge degradation, given the
    /// diffusion-limited value.
    pub fn degraded_resolving_power(&self, r_diffusion: f64, charges: f64) -> f64 {
        r_diffusion / self.broadening_factor(charges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_threshold_no_effect() {
        let m = CoulombModel::default();
        assert_eq!(m.broadening_factor(0.0), 1.0);
        assert_eq!(m.broadening_factor(9.0e3), 1.0);
        assert_eq!(m.degraded_resolving_power(100.0, 5.0e3), 100.0);
    }

    #[test]
    fn noticeable_degradation_above_1e5() {
        let m = CoulombModel::default();
        let r = m.degraded_resolving_power(100.0, 1.0e5);
        assert!(r < 96.0, "R = {r} (should be visibly degraded)");
        assert!(r > 80.0, "R = {r} (should not collapse yet)");
    }

    #[test]
    fn severe_degradation_at_1e7() {
        let m = CoulombModel::default();
        let r = m.degraded_resolving_power(100.0, 1.0e7);
        assert!(r < 75.0, "R = {r}");
    }

    #[test]
    fn monotone_in_charge() {
        let m = CoulombModel::default();
        let mut last = m.broadening_factor(1.0e4);
        for exp in [4.5, 5.0, 5.5, 6.0, 6.5, 7.0, 8.0] {
            let f = m.broadening_factor(10.0f64.powf(exp));
            assert!(f >= last, "non-monotone at 1e{exp}");
            last = f;
        }
    }

    #[test]
    fn cube_root_asymptotics() {
        let m = CoulombModel::default();
        // At large charge, spread ratio grows as q^(1/3): 1000× the charge
        // gives 10× the spread.
        let s1 = m.relative_spread(1.0e7);
        let s2 = m.relative_spread(1.0e10);
        let ratio = s2 / s1;
        assert!(ratio > 8.0 && ratio < 12.0, "ratio {ratio}");
    }
}
