//! Peptide fragmentation: b/y ion series and the collision-induced
//! dissociation (CID) cell.
//!
//! The multiplexed-CID companion paper (Clowers et al., entry 18) fragments
//! *all* drift-separated precursors simultaneously in an rf collision cell
//! between the drift tube and the TOF: fragments inherit their precursor's
//! drift time, and the downstream software re-associates them by matching
//! drift profiles. This module provides the chemistry half of that story —
//! sequence-determined b/y fragment masses and a deterministic intensity
//! model — while `htims-core::msms` provides the acquisition and the
//! assignment algorithm.

use crate::constants::PROTON_MASS_DA;
use crate::ion::IonSpecies;
use crate::peptide::{residue_mass, Peptide, WATER};
use serde::{Deserialize, Serialize};

/// Fragment ion series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FragmentKind {
    /// N-terminal b ion (acylium), `b_i = Σ residues[..i] + proton`.
    B,
    /// C-terminal y ion, `y_i = Σ residues[len−i..] + water + proton`.
    Y,
}

/// One fragment ion of a peptide.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FragmentIon {
    /// Series.
    pub kind: FragmentKind,
    /// Series index `i` (number of residues included).
    pub index: usize,
    /// Singly-protonated m/z, Th.
    pub mz: f64,
    /// Relative intensity within the peptide's fragment spectrum (sums to 1).
    pub intensity: f64,
}

impl FragmentIon {
    /// Display label, e.g. `y7`.
    pub fn label(&self) -> String {
        match self.kind {
            FragmentKind::B => format!("b{}", self.index),
            FragmentKind::Y => format!("y{}", self.index),
        }
    }
}

/// Generates the singly-charged b/y ladder of a peptide with a
/// deterministic intensity pattern (y ions favoured ~2:1, mid-series
/// fragments strongest, a per-bond pseudo-random modulation so spectra are
/// peptide-specific). Intensities are normalised to sum 1.
pub fn by_ladder(peptide: &Peptide) -> Vec<FragmentIon> {
    let seq = peptide.sequence.as_bytes();
    let n = seq.len();
    if n < 2 {
        return Vec::new();
    }
    let masses: Vec<f64> = seq
        .iter()
        .map(|&b| residue_mass(b).expect("validated at construction"))
        .collect();
    let mut prefix = vec![0.0; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + masses[i];
    }
    let total = prefix[n];

    // Per-bond cleavage propensity: mid-chain bonds break most readily;
    // proline strongly enhances cleavage N-terminal to it, glycine slightly
    // suppresses. A deterministic hash adds peptide-specific variation.
    let mut fragments = Vec::with_capacity(2 * (n - 1));
    let mut weights_total = 0.0;
    let mut weights = Vec::with_capacity(2 * (n - 1));
    for i in 1..n {
        let centre = (i as f64 / n as f64 - 0.5).abs();
        let mut w = 1.0 - centre; // mid-series favoured
        if seq[i] == b'P' {
            w *= 3.0; // the proline effect
        }
        if seq[i] == b'G' || seq[i - 1] == b'G' {
            w *= 0.7;
        }
        let jitter = 0.6 + 0.8 * hash_unit(seq, i);
        w *= jitter;
        // y ions ~2x b ions for tryptic peptides (mobile-proton retention
        // on the C-terminal K/R).
        weights.push((i, w, 2.0 * w));
        weights_total += 3.0 * w;
    }
    for (i, wb, wy) in weights {
        fragments.push(FragmentIon {
            kind: FragmentKind::B,
            index: i,
            mz: prefix[i] + PROTON_MASS_DA,
            intensity: wb / weights_total,
        });
        fragments.push(FragmentIon {
            kind: FragmentKind::Y,
            index: n - i,
            mz: (total - prefix[i]) + WATER + PROTON_MASS_DA,
            intensity: wy / weights_total,
        });
    }
    fragments
}

/// Deterministic per-bond hash in `[0, 1)`.
fn hash_unit(seq: &[u8], bond: usize) -> f64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ (bond as u64);
    for &b in seq {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    (h % 10_000) as f64 / 10_000.0
}

/// The collision cell: converts a fraction of each precursor into its
/// fragment ladder.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CidCell {
    /// Fraction of precursor ions fragmented (0 = CID off, transmission
    /// mode; ~0.7 at optimised collision energy).
    pub efficiency: f64,
    /// Transmission of the cell for surviving precursors and fragments.
    pub transmission: f64,
}

impl Default for CidCell {
    fn default() -> Self {
        Self {
            efficiency: 0.7,
            transmission: 0.9,
        }
    }
}

impl CidCell {
    /// CID disabled (MS-only mode).
    pub fn off() -> Self {
        Self {
            efficiency: 0.0,
            transmission: 1.0,
        }
    }

    /// Product-ion population for one precursor species: `(ion, weight)`
    /// pairs where weights sum to `transmission` (the cell conserves ions
    /// up to its losses). The surviving precursor keeps its charge; each
    /// fragment is emitted singly charged with the precursor's drift time
    /// (fragmentation happens *after* mobility separation).
    pub fn products(&self, precursor: &IonSpecies, peptide: &Peptide) -> Vec<(IonSpecies, f64)> {
        assert!((0.0..=1.0).contains(&self.efficiency));
        assert!((0.0..=1.0).contains(&self.transmission));
        let mut out = Vec::new();
        let survive = (1.0 - self.efficiency) * self.transmission;
        if survive > 0.0 {
            out.push((precursor.clone(), survive));
        }
        if self.efficiency > 0.0 {
            let frag_budget = self.efficiency * self.transmission;
            for frag in by_ladder(peptide) {
                let weight = frag_budget * frag.intensity;
                if weight <= 0.0 {
                    continue;
                }
                // Fragment m/z as a mass so IonSpecies::mz() reproduces it
                // for z = 1.
                let neutral_mass = frag.mz - PROTON_MASS_DA;
                if neutral_mass <= 0.0 {
                    continue;
                }
                out.push((
                    IonSpecies::new(
                        format!("{}~{}", precursor.name, frag.label()),
                        neutral_mass,
                        1,
                        precursor.ccs_a2, // drift behaviour is the precursor's
                        precursor.abundance,
                    ),
                    weight,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bradykinin() -> Peptide {
        Peptide::new("RPPGFSPFR")
    }

    #[test]
    fn ladder_covers_every_bond_twice() {
        let p = bradykinin();
        let frags = by_ladder(&p);
        assert_eq!(frags.len(), 2 * (p.len() - 1));
        let bs = frags.iter().filter(|f| f.kind == FragmentKind::B).count();
        assert_eq!(bs, p.len() - 1);
    }

    #[test]
    fn known_bradykinin_fragments() {
        // y7 of RPPGFSPFR = PGFSPFR + H2O + H+ : residues P,G,F,S,P,F,R.
        let frags = by_ladder(&bradykinin());
        let y7 = frags
            .iter()
            .find(|f| f.kind == FragmentKind::Y && f.index == 7)
            .unwrap();
        let expect = 97.05276
            + 57.02146
            + 147.06841
            + 87.03203
            + 97.05276
            + 147.06841
            + 156.10111
            + WATER
            + PROTON_MASS_DA;
        assert!((y7.mz - expect).abs() < 1e-4, "y7 {} vs {expect}", y7.mz);
        // b2 = R + P + proton.
        let b2 = frags
            .iter()
            .find(|f| f.kind == FragmentKind::B && f.index == 2)
            .unwrap();
        assert!((b2.mz - (156.10111 + 97.05276 + PROTON_MASS_DA)).abs() < 1e-4);
    }

    #[test]
    fn b_y_pairs_sum_to_precursor() {
        // b_i + y_{n-i} = M + water + 2 protons.
        let p = bradykinin();
        let m = p.monoisotopic_mass();
        let frags = by_ladder(&p);
        for i in 1..p.len() {
            let b = frags
                .iter()
                .find(|f| f.kind == FragmentKind::B && f.index == i)
                .unwrap();
            let y = frags
                .iter()
                .find(|f| f.kind == FragmentKind::Y && f.index == p.len() - i)
                .unwrap();
            // b_i carries no water, y_{n−i} carries the C-terminal water:
            // b_i + y_{n−i} = (Σ residues + water) + 2 protons = M + 2H⁺.
            let sum = b.mz + y.mz;
            let expect = m + 2.0 * PROTON_MASS_DA;
            assert!((sum - expect).abs() < 1e-6, "bond {i}: {sum} vs {expect}");
        }
    }

    #[test]
    fn intensities_normalised_and_y_favoured() {
        let frags = by_ladder(&bradykinin());
        let total: f64 = frags.iter().map(|f| f.intensity).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let y_sum: f64 = frags
            .iter()
            .filter(|f| f.kind == FragmentKind::Y)
            .map(|f| f.intensity)
            .sum();
        assert!((y_sum - 2.0 / 3.0).abs() < 1e-9, "y share {y_sum}");
    }

    #[test]
    fn cid_conserves_ion_budget() {
        let p = bradykinin();
        let precursor = &p.to_species(1.0)[0];
        let cell = CidCell::default();
        let products = cell.products(precursor, &p);
        let total: f64 = products.iter().map(|(_, w)| w).sum();
        assert!((total - cell.transmission).abs() < 1e-9, "budget {total}");
        // Fragments inherit the precursor's CCS (drift time).
        for (sp, _) in &products[1..] {
            assert_eq!(sp.ccs_a2, precursor.ccs_a2);
            assert_eq!(sp.charge, 1);
        }
    }

    #[test]
    fn cid_off_is_transparent() {
        let p = bradykinin();
        let precursor = &p.to_species(1.0)[0];
        let products = CidCell::off().products(precursor, &p);
        assert_eq!(products.len(), 1);
        assert_eq!(products[0].1, 1.0);
        assert_eq!(products[0].0, *precursor);
    }

    #[test]
    fn dipeptide_has_single_bond() {
        let p = Peptide::new("GK");
        assert_eq!(by_ladder(&p).len(), 2);
        let p1 = Peptide::new("K");
        assert!(by_ladder(&p1).is_empty());
    }
}
