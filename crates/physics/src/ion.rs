//! Ion species: mass, charge, collision cross section, reduced mobility.

use crate::constants::*;
use serde::{Deserialize, Serialize};

/// An analyte ion species as seen by the drift tube and the TOF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IonSpecies {
    /// Human-readable name (peptide sequence, compound name…).
    pub name: String,
    /// Neutral monoisotopic mass, Da.
    pub mass_da: f64,
    /// Positive charge state `z`.
    pub charge: u32,
    /// Ion–N₂ collision cross section, Å².
    pub ccs_a2: f64,
    /// Relative molar abundance (arbitrary units; scaled by the source).
    pub abundance: f64,
}

impl IonSpecies {
    /// Creates a species; CCS must be positive and charge ≥ 1.
    pub fn new(
        name: impl Into<String>,
        mass_da: f64,
        charge: u32,
        ccs_a2: f64,
        abundance: f64,
    ) -> Self {
        assert!(mass_da > 0.0, "mass must be positive");
        assert!(charge >= 1, "charge must be at least 1");
        assert!(ccs_a2 > 0.0, "CCS must be positive");
        assert!(abundance >= 0.0, "abundance must be non-negative");
        Self {
            name: name.into(),
            mass_da,
            charge,
            ccs_a2,
            abundance,
        }
    }

    /// Mass-to-charge ratio of the protonated ion, Th.
    pub fn mz(&self) -> f64 {
        (self.mass_da + self.charge as f64 * PROTON_MASS_DA) / self.charge as f64
    }

    /// Reduced mobility `K₀` in N₂, cm²/(V·s), from the Mason–Schamp
    /// equation at the given effective temperature:
    ///
    /// ```text
    /// K₀ = (3/16)·(z·e/N₀)·√(2π/(μ·kB·T)) / Ω
    /// ```
    pub fn reduced_mobility(&self, temperature_k: f64) -> f64 {
        assert!(temperature_k > 0.0, "temperature must be positive");
        let mu = self.reduced_mass_kg();
        let omega = self.ccs_a2 * A2_TO_M2;
        let q = self.charge as f64 * ELEMENTARY_CHARGE;
        let k0_si = (3.0 / 16.0)
            * (q / LOSCHMIDT)
            * (2.0 * std::f64::consts::PI / (mu * BOLTZMANN * temperature_k)).sqrt()
            / omega;
        k0_si * M2_TO_CM2
    }

    /// Ion–buffer reduced mass, kg.
    pub fn reduced_mass_kg(&self) -> f64 {
        let m = self.mass_da * AMU;
        let big_m = N2_MASS_DA * AMU;
        m * big_m / (m + big_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical_peptide() -> IonSpecies {
        IonSpecies::new("test-peptide", 1000.0, 2, 300.0, 1.0)
    }

    #[test]
    fn mz_of_protonated_ion() {
        let s = typical_peptide();
        // (1000 + 2·1.00728)/2 = 501.007…
        assert!((s.mz() - 501.007_276).abs() < 1e-4);
    }

    #[test]
    fn reduced_mobility_in_physical_range() {
        // Tryptic peptides in N₂ have K₀ ≈ 0.9–1.6 cm²/(V·s).
        let s = typical_peptide();
        let k0 = s.reduced_mobility(305.0);
        assert!(k0 > 0.8 && k0 < 1.8, "K0 = {k0}");
    }

    #[test]
    fn bigger_ccs_means_slower() {
        let small = IonSpecies::new("s", 500.0, 1, 180.0, 1.0);
        let large = IonSpecies::new("l", 500.0, 1, 280.0, 1.0);
        assert!(small.reduced_mobility(300.0) > large.reduced_mobility(300.0));
    }

    #[test]
    fn higher_charge_means_faster() {
        let z1 = IonSpecies::new("a", 1200.0, 1, 320.0, 1.0);
        let z2 = IonSpecies::new("b", 1200.0, 2, 320.0, 1.0);
        assert!(z2.reduced_mobility(300.0) > z1.reduced_mobility(300.0));
        let ratio = z2.reduced_mobility(300.0) / z1.reduced_mobility(300.0);
        assert!(
            (ratio - 2.0).abs() < 1e-9,
            "mobility scales linearly with z"
        );
    }

    #[test]
    fn reduced_mass_approaches_buffer_mass_for_heavy_ions() {
        let heavy = IonSpecies::new("h", 1e6, 1, 5000.0, 1.0);
        let mu = heavy.reduced_mass_kg() / AMU;
        assert!((mu - N2_MASS_DA).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "CCS must be positive")]
    fn rejects_bad_ccs() {
        let _ = IonSpecies::new("bad", 100.0, 1, 0.0, 1.0);
    }
}
