//! Post-translational modifications and localization variants.
//!
//! The companion paper (entry 14, "Ultrasensitive Identification of
//! Localization Variants of Modified Peptides Using Ion Mobility
//! Spectrometry") shows that phosphopeptide *localization variants* — the
//! same sequence phosphorylated on different S/T/Y residues, hence
//! identical in mass and indistinguishable in MS¹ — often adopt different
//! gas-phase conformations and separate in the drift tube even at a modest
//! resolving power (~80), and that pre-heating the ions in the funnel trap
//! re-shuffles the conformer distribution to improve the separation.
//!
//! The model: a phosphate adds its exact mass (+79.966331 Da) everywhere,
//! and perturbs the CCS by a deterministic site- and charge-dependent few
//! percent (the conformational effect); "trap heating" scales the spread of
//! those perturbations.

use crate::ion::IonSpecies;
use crate::peptide::Peptide;
use serde::{Deserialize, Serialize};

/// Monoisotopic mass of a phosphorylation (+HPO₃), Da.
pub const PHOSPHO_MASS: f64 = 79.966_331;

/// A peptide carrying phosphorylations at specific residue indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModifiedPeptide {
    /// The unmodified sequence.
    pub base: Peptide,
    /// 0-based residue indices carrying a phosphate (each must be S/T/Y).
    pub phospho_sites: Vec<usize>,
}

impl ModifiedPeptide {
    /// Creates a phosphopeptide.
    ///
    /// # Panics
    /// Panics if a site is out of range or not S/T/Y, or sites repeat.
    pub fn new(base: Peptide, mut phospho_sites: Vec<usize>) -> Self {
        phospho_sites.sort_unstable();
        let seq = base.sequence.as_bytes();
        for w in phospho_sites.windows(2) {
            assert!(w[0] != w[1], "duplicate phospho site {}", w[0]);
        }
        for &s in &phospho_sites {
            assert!(s < seq.len(), "site {s} out of range");
            assert!(
                matches!(seq[s], b'S' | b'T' | b'Y'),
                "site {s} ({}) is not S/T/Y",
                seq[s] as char
            );
        }
        Self {
            base,
            phospho_sites,
        }
    }

    /// Display name, e.g. `RPSGFSPFR+p@2`.
    pub fn name(&self) -> String {
        if self.phospho_sites.is_empty() {
            self.base.sequence.clone()
        } else {
            let sites: Vec<String> = self.phospho_sites.iter().map(|s| s.to_string()).collect();
            format!("{}+p@{}", self.base.sequence, sites.join(","))
        }
    }

    /// Neutral monoisotopic mass, Da.
    pub fn monoisotopic_mass(&self) -> f64 {
        self.base.monoisotopic_mass() + self.phospho_sites.len() as f64 * PHOSPHO_MASS
    }

    /// CCS of the modified peptide at a charge state.
    ///
    /// The phosphate's intrinsic size adds ~1.3 % per site; the
    /// *localization-dependent* conformational effect perturbs this by up
    /// to ±`heating × 1.2 %` depending on where along the backbone the
    /// charge-phosphate interaction forms (deterministic per site/charge).
    /// `heating` = 1.0 is the default trap temperature; raising it (field
    /// heating in the funnel trap, as in the companion paper) amplifies
    /// the conformer differences.
    pub fn ccs_a2(&self, charge: u32, heating: f64) -> f64 {
        let mut ccs = self.base.ccs_a2(charge) * (1.0 + 0.013 * self.phospho_sites.len() as f64);
        let n = self.base.len() as f64;
        for &site in &self.phospho_sites {
            // Sites near the charge carriers (termini for tryptic peptides)
            // compact the ion; central sites extend it.
            let position = site as f64 / n - 0.5;
            let sign = if position.abs() < 0.25 { 1.0 } else { -1.0 };
            let magnitude = 0.012 * (1.0 - 2.0 * position.abs()).abs();
            let site_hash = site_charge_hash(&self.base.sequence, site, charge);
            ccs *= 1.0 + heating * sign * magnitude * (0.5 + 0.5 * site_hash);
        }
        ccs
    }

    /// Ion species of this variant at its dominant charge states.
    pub fn to_species(&self, abundance: f64, heating: f64) -> Vec<IonSpecies> {
        self.base
            .charge_states()
            .into_iter()
            .map(|(z, w)| {
                IonSpecies::new(
                    format!("{}/{z}+", self.name()),
                    self.monoisotopic_mass(),
                    z,
                    self.ccs_a2(z, heating),
                    abundance * w,
                )
            })
            .collect()
    }
}

/// Deterministic hash → `[0, 1)` for a (sequence, site, charge) triple.
fn site_charge_hash(seq: &str, site: usize, charge: u32) -> f64 {
    let mut h: u64 = 0xA076_1D64_78BD_642F ^ (site as u64) ^ ((charge as u64) << 32);
    for b in seq.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    (h % 10_000) as f64 / 10_000.0
}

/// All singly-phosphorylated localization variants of a peptide (one per
/// S/T/Y residue).
pub fn single_phospho_variants(base: &Peptide) -> Vec<ModifiedPeptide> {
    base.sequence
        .bytes()
        .enumerate()
        .filter(|(_, b)| matches!(b, b'S' | b'T' | b'Y'))
        .map(|(i, _)| ModifiedPeptide::new(base.clone(), vec![i]))
        .collect()
}

/// All doubly-phosphorylated variants (every pair of distinct S/T/Y sites).
pub fn double_phospho_variants(base: &Peptide) -> Vec<ModifiedPeptide> {
    let singles = single_phospho_variants(base);
    let mut out = Vec::new();
    for (i, a) in singles.iter().enumerate() {
        for b in singles.iter().skip(i + 1) {
            out.push(ModifiedPeptide::new(
                base.clone(),
                vec![a.phospho_sites[0], b.phospho_sites[0]],
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinase_substrate() -> Peptide {
        // A realistic S/T/Y-rich tryptic peptide.
        Peptide::new("LGSSEVEQVQLTAYR")
    }

    #[test]
    fn variants_share_mass_exactly() {
        let base = kinase_substrate();
        let variants = single_phospho_variants(&base);
        assert!(variants.len() >= 4, "{} variants", variants.len());
        let m0 = variants[0].monoisotopic_mass();
        for v in &variants {
            assert_eq!(v.monoisotopic_mass(), m0);
            assert!((v.monoisotopic_mass() - base.monoisotopic_mass() - PHOSPHO_MASS).abs() < 1e-9);
        }
    }

    #[test]
    fn variants_differ_in_ccs() {
        let variants = single_phospho_variants(&kinase_substrate());
        let ccs: Vec<f64> = variants.iter().map(|v| v.ccs_a2(2, 1.0)).collect();
        for (i, a) in ccs.iter().enumerate() {
            for b in ccs.iter().skip(i + 1) {
                assert!(
                    (a - b).abs() / a > 1e-4,
                    "variants {i} indistinguishable: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn heating_amplifies_conformer_spread() {
        let variants = single_phospho_variants(&kinase_substrate());
        let spread = |heating: f64| -> f64 {
            let ccs: Vec<f64> = variants.iter().map(|v| v.ccs_a2(2, heating)).collect();
            let max = ccs.iter().cloned().fold(0.0f64, f64::max);
            let min = ccs.iter().cloned().fold(f64::INFINITY, f64::min);
            (max - min) / min
        };
        assert!(spread(1.6) > spread(1.0));
        assert!(spread(1.0) > spread(0.3));
    }

    #[test]
    fn double_variants_enumerate_pairs() {
        let base = kinase_substrate(); // 4 S/T/Y sites → C(4,2) = 6… count S,S,T,Y
        let singles = single_phospho_variants(&base).len();
        let doubles = double_phospho_variants(&base).len();
        assert_eq!(doubles, singles * (singles - 1) / 2);
        for d in double_phospho_variants(&base) {
            assert_eq!(d.phospho_sites.len(), 2);
            assert!(
                (d.monoisotopic_mass() - base.monoisotopic_mass() - 2.0 * PHOSPHO_MASS).abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn naming_and_species() {
        let base = kinase_substrate();
        let v = ModifiedPeptide::new(base, vec![2]);
        assert_eq!(v.name(), "LGSSEVEQVQLTAYR+p@2");
        let species = v.to_species(1.0, 1.0);
        assert!(!species.is_empty());
        assert!(species[0].name.contains("+p@2"));
    }

    #[test]
    #[should_panic(expected = "not S/T/Y")]
    fn rejects_non_sty_site() {
        let _ = ModifiedPeptide::new(Peptide::new("GGAGG"), vec![0]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_sites() {
        let _ = ModifiedPeptide::new(kinase_substrate(), vec![2, 2]);
    }
}
