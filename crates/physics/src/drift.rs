//! Uniform-field drift tube: drift times and arrival-time distributions.

use crate::constants::FWHM_SIGMA;
use crate::coulomb::CoulombModel;
use crate::ion::IonSpecies;
use crate::mobility;
use serde::{Deserialize, Serialize};

/// A uniform-field drift tube at reduced pressure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriftTube {
    /// Drift length, cm.
    pub length_cm: f64,
    /// Total drift voltage, V.
    pub voltage_v: f64,
    /// Buffer gas (N₂) pressure, Torr.
    pub pressure_torr: f64,
    /// Gas temperature, K.
    pub temperature_k: f64,
    /// Space-charge model applied to released packets.
    pub coulomb: CoulombModel,
}

impl Default for DriftTube {
    fn default() -> Self {
        // PNNL multiplexed-IMS geometry: ~88 cm tube, 4 Torr N₂.
        Self {
            length_cm: 88.0,
            voltage_v: 4000.0,
            pressure_torr: 4.0,
            temperature_k: 300.0,
            coulomb: CoulombModel::default(),
        }
    }
}

impl DriftTube {
    /// Electric field, V/cm.
    pub fn field(&self) -> f64 {
        self.voltage_v / self.length_cm
    }

    /// Drift time of a species, seconds.
    pub fn drift_time_s(&self, species: &IonSpecies) -> f64 {
        let k0 = species.reduced_mobility(self.temperature_k);
        let k = mobility::mobility_at(k0, self.pressure_torr, self.temperature_k);
        self.length_cm / (k * self.field())
    }

    /// Diffusion-limited resolving power for a charge state.
    pub fn resolving_power(&self, charge: u32) -> f64 {
        mobility::diffusion_limited_resolving_power(charge, self.voltage_v, self.temperature_k)
    }

    /// Temporal standard deviation of the arrival-time distribution,
    /// seconds, including space-charge broadening for a packet of
    /// `packet_charges`.
    pub fn arrival_sigma_s(&self, species: &IonSpecies, packet_charges: f64) -> f64 {
        let t = self.drift_time_s(species);
        let r = self.resolving_power(species.charge);
        let sigma_diff = t / (FWHM_SIGMA * r);
        sigma_diff * self.coulomb.broadening_factor(packet_charges)
    }

    /// Discretised arrival-time distribution over `n_bins` bins of
    /// `bin_width_s` each, normalised to unit area (fraction of the packet
    /// arriving per bin). Species arriving outside the window are clipped.
    pub fn arrival_distribution(
        &self,
        species: &IonSpecies,
        packet_charges: f64,
        n_bins: usize,
        bin_width_s: f64,
    ) -> Vec<f64> {
        let t = self.drift_time_s(species);
        let sigma = self.arrival_sigma_s(species, packet_charges);
        let mu_bins = t / bin_width_s;
        let sigma_bins = (sigma / bin_width_s).max(1e-6);
        // Bin-integrated so the packet is conserved even when the arrival
        // spread is much narrower than a (coarse) drift bin.
        ims_signal::peaks::gaussian_binned(n_bins, mu_bins, sigma_bins, 1.0)
    }

    /// The maximum drift time representable in a window of `n_bins` bins of
    /// `bin_width_s` (the IMS frame duration).
    pub fn window_s(n_bins: usize, bin_width_s: f64) -> f64 {
        n_bins as f64 * bin_width_s
    }

    /// Chooses a bin width so a species of reduced mobility `slowest_k0`
    /// arrives at ~85 % of the window of `n_bins` bins.
    pub fn bin_width_for(&self, slowest_k0: f64, n_bins: usize) -> f64 {
        let k = mobility::mobility_at(slowest_k0, self.pressure_torr, self.temperature_k);
        let t_max = self.length_cm / (k * self.field());
        t_max / (0.85 * n_bins as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peptide() -> IonSpecies {
        IonSpecies::new("pep", 1000.0, 2, 300.0, 1.0)
    }

    #[test]
    fn drift_time_in_tens_of_ms() {
        // Typical peptide drift times at 4 Torr / 88 cm are 10–60 ms.
        let tube = DriftTube::default();
        let t = tube.drift_time_s(&peptide());
        assert!(t > 5e-3 && t < 80e-3, "t = {t}");
    }

    #[test]
    fn drift_time_scales_inverse_with_voltage() {
        let tube = DriftTube::default();
        let mut fast = tube.clone();
        fast.voltage_v *= 2.0;
        let ratio = tube.drift_time_s(&peptide()) / fast.drift_time_s(&peptide());
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn arrival_distribution_is_normalised_gaussian() {
        let tube = DriftTube::default();
        let sp = peptide();
        let bin = tube.bin_width_for(sp.reduced_mobility(300.0) * 0.9, 512);
        let dist = tube.arrival_distribution(&sp, 0.0, 512, bin);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-3, "area {total}");
        // Peak lands inside the window.
        let (apex, _) = ims_signal::stats::argmax(&dist).unwrap();
        assert!(apex > 10 && apex < 500, "apex {apex}");
    }

    #[test]
    fn space_charge_broadens_arrivals() {
        let tube = DriftTube::default();
        let sp = peptide();
        let clean = tube.arrival_sigma_s(&sp, 1e3);
        let loaded = tube.arrival_sigma_s(&sp, 1e7);
        assert!(loaded > 1.3 * clean, "{clean} -> {loaded}");
    }

    #[test]
    fn measured_resolving_power_matches_theory() {
        // Reconstruct R from the discretised peak and compare with theory.
        let tube = DriftTube::default();
        let sp = peptide();
        let bin = tube.bin_width_for(sp.reduced_mobility(300.0) * 0.95, 2048);
        let dist = tube.arrival_distribution(&sp, 0.0, 2048, bin);
        let peaks = ims_signal::peaks::PeakFinder::default().find(&dist);
        assert_eq!(peaks.len(), 1);
        let p = peaks[0];
        let r_measured = p.centroid / p.fwhm;
        let r_theory = tube.resolving_power(sp.charge);
        assert!(
            (r_measured - r_theory).abs() / r_theory < 0.05,
            "measured {r_measured} vs theory {r_theory}"
        );
    }

    #[test]
    fn separability_of_distinct_mobilities() {
        let tube = DriftTube::default();
        let a = IonSpecies::new("a", 800.0, 1, 240.0, 1.0);
        let b = IonSpecies::new("b", 1400.0, 1, 360.0, 1.0);
        let ta = tube.drift_time_s(&a);
        let tb = tube.drift_time_s(&b);
        let sig = tube
            .arrival_sigma_s(&a, 0.0)
            .max(tube.arrival_sigma_s(&b, 0.0));
        assert!((tb - ta).abs() > 4.0 * sig, "species should be resolvable");
    }
}
