//! Physics-based simulator of an advanced ion mobility / time-of-flight mass
//! spectrometer.
//!
//! The paper's simulation consumes data "from an advanced Ion Mobility mass
//! spectrometer" — PNNL's multiplexed ESI / ion-funnel-trap / drift-tube /
//! orthogonal-TOF instrument. We have no instrument, so this crate *is* the
//! instrument: a first-principles forward model that turns a list of analyte
//! species into the exact statistical structure of raw multiplexed IMS-TOF
//! data — Mason–Schamp mobilities, diffusion- and space-charge-limited peak
//! shapes, ion funnel trap accumulation with automated gain control,
//! Bradbury–Nielsen gate defects, TOF mass analysis with isotopic fine
//! structure, and MCP detection through either an ADC or a dead-time-limited
//! TDC.
//!
//! Every stochastic element draws from a caller-supplied RNG, so each
//! simulated acquisition is exactly reproducible from its seed.
//!
//! # Example: a peptide ion's drift time
//!
//! ```
//! use ims_physics::peptide::Peptide;
//! use ims_physics::{DriftTube, IonSpecies};
//!
//! let bradykinin = Peptide::new("RPPGFSPFR");
//! let ion = IonSpecies::new(
//!     "bradykinin/2+",
//!     bradykinin.monoisotopic_mass(),
//!     2,
//!     bradykinin.ccs_a2(2),
//!     1.0,
//! );
//! let tube = DriftTube::default();
//! let t = tube.drift_time_s(&ion);
//! // Tens of milliseconds at 4 Torr over 88 cm.
//! assert!(t > 5e-3 && t < 80e-3);
//! ```

#![warn(missing_docs)]

pub mod constants;
pub mod coulomb;
pub mod detector;
pub mod drift;
pub mod esi;
pub mod fragment;
pub mod funnel;
pub mod gate;
pub mod instrument;
pub mod ion;
pub mod isotope;
pub mod lc;
pub mod map2d;
pub mod mobility;
pub mod modification;
pub mod peptide;
pub mod tof;
pub mod workload;

pub use drift::DriftTube;
pub use instrument::Instrument;
pub use ion::IonSpecies;
pub use map2d::DriftTofMap;
pub use tof::TofAnalyzer;
pub use workload::Workload;
