//! Electrodynamic ion funnel trap with automated gain control.
//!
//! The funnel trap (Ibrahim et al. 2007; Clowers et al. 2008) accumulates
//! the continuous ESI beam between gate openings and releases it as a dense
//! packet, raising ion utilisation from <1 % (continuous beam, narrow gate)
//! to >50 % (trap + multiplexed gating). Its two non-idealities drive
//! experiments E5 and E9:
//!
//! * **finite charge capacity** (≈3×10⁷ charges): the fill curve saturates,
//!   so signal stops growing linearly with accumulation time;
//! * **AGC** (automated gain control, Page et al./Belov et al. 2008 for the
//!   IFT-TOF): the accumulation time is servoed so the trap fills to a
//!   target charge, keeping the analyser in its linear range.

use serde::{Deserialize, Serialize};

/// Electrodynamic ion funnel trap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IonFunnelTrap {
    /// Space-charge capacity, elementary charges.
    pub capacity_charges: f64,
    /// Fraction of stored charge actually extracted per release pulse.
    pub release_efficiency: f64,
}

impl Default for IonFunnelTrap {
    fn default() -> Self {
        Self {
            capacity_charges: 3.0e7,
            release_efficiency: 0.95,
        }
    }
}

impl IonFunnelTrap {
    /// Charge stored after accumulating an incoming beam of
    /// `charge_rate` (charges/s) for `seconds`.
    ///
    /// The fill saturates smoothly: `q(t) = C·(1 − e^{−r·t/C})` — linear at
    /// low fill, asymptotic to the capacity (incoming ions are increasingly
    /// rejected by the self-field of the stored cloud).
    pub fn stored_charge(&self, charge_rate: f64, seconds: f64) -> f64 {
        assert!(charge_rate >= 0.0 && seconds >= 0.0);
        let c = self.capacity_charges;
        c * (1.0 - (-charge_rate * seconds / c).exp())
    }

    /// Charge released to the drift tube by one extraction pulse.
    pub fn released_charge(&self, charge_rate: f64, seconds: f64) -> f64 {
        self.release_efficiency * self.stored_charge(charge_rate, seconds)
    }

    /// Fill fraction (0–1) after a given accumulation.
    pub fn fill_fraction(&self, charge_rate: f64, seconds: f64) -> f64 {
        self.stored_charge(charge_rate, seconds) / self.capacity_charges
    }
}

/// Automated gain control: servo the accumulation time to hit a target
/// charge, within hardware bounds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgcController {
    /// Desired released charge per packet.
    pub target_charge: f64,
    /// Shortest allowed accumulation, s.
    pub min_time_s: f64,
    /// Longest allowed accumulation, s.
    pub max_time_s: f64,
}

impl Default for AgcController {
    fn default() -> Self {
        Self {
            // Keep the trap (3×10⁷ capacity) in its linear range and the
            // drift tube below the Coulombic limit.
            target_charge: 5.0e6,
            min_time_s: 1.0e-4,
            max_time_s: 1.0e-1,
        }
    }
}

impl AgcController {
    /// Accumulation time that fills the trap to the target given the
    /// measured incoming charge rate, clamped to the hardware bounds.
    ///
    /// Inverts the saturating fill curve: `t = −(C/r)·ln(1 − q_target/C)`.
    pub fn accumulation_time(&self, trap: &IonFunnelTrap, charge_rate: f64) -> f64 {
        if charge_rate <= 0.0 {
            return self.max_time_s;
        }
        let stored_target =
            (self.target_charge / trap.release_efficiency).min(0.99 * trap.capacity_charges);
        let frac = stored_target / trap.capacity_charges;
        let t = -(trap.capacity_charges / charge_rate) * (1.0 - frac).ln();
        t.clamp(self.min_time_s, self.max_time_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_is_linear_at_low_charge() {
        let trap = IonFunnelTrap::default();
        let rate = 1e8; // charges/s
        let t = 1e-3; // fills to ~0.3 % of capacity
        let q = trap.stored_charge(rate, t);
        assert!((q - rate * t).abs() / (rate * t) < 0.01, "q = {q}");
    }

    #[test]
    fn fill_saturates_at_capacity() {
        let trap = IonFunnelTrap::default();
        let q = trap.stored_charge(1e9, 10.0);
        assert!(q <= trap.capacity_charges);
        assert!(q > 0.99 * trap.capacity_charges);
    }

    #[test]
    fn fill_monotone_in_time() {
        let trap = IonFunnelTrap::default();
        let mut last = 0.0;
        for i in 1..20 {
            let q = trap.stored_charge(5e8, i as f64 * 0.01);
            assert!(q > last);
            last = q;
        }
    }

    #[test]
    fn agc_hits_target_in_linear_regime() {
        let trap = IonFunnelTrap::default();
        let agc = AgcController::default();
        let rate = 6e8;
        let t = agc.accumulation_time(&trap, rate);
        let released = trap.released_charge(rate, t);
        assert!(
            (released - agc.target_charge).abs() / agc.target_charge < 0.01,
            "released {released}"
        );
    }

    #[test]
    fn agc_clamps_for_weak_beams() {
        let trap = IonFunnelTrap::default();
        let agc = AgcController::default();
        // A very weak beam cannot reach the target within max_time.
        let t = agc.accumulation_time(&trap, 1e4);
        assert_eq!(t, agc.max_time_s);
        // A blinding beam is clamped to min_time.
        let t2 = agc.accumulation_time(&trap, 1e14);
        assert_eq!(t2, agc.min_time_s);
    }

    #[test]
    fn agc_compensates_source_variation() {
        // Twice the beam → half the accumulation time → same packet.
        let trap = IonFunnelTrap::default();
        let agc = AgcController::default();
        let t1 = agc.accumulation_time(&trap, 4e8);
        let t2 = agc.accumulation_time(&trap, 8e8);
        let q1 = trap.released_charge(4e8, t1);
        let q2 = trap.released_charge(8e8, t2);
        assert!((q1 - q2).abs() / q1 < 0.01);
        assert!((t1 / t2 - 2.0).abs() < 0.01);
    }

    #[test]
    fn zero_rate_is_safe() {
        let trap = IonFunnelTrap::default();
        assert_eq!(trap.stored_charge(0.0, 1.0), 0.0);
        let agc = AgcController::default();
        assert_eq!(agc.accumulation_time(&trap, 0.0), agc.max_time_s);
    }
}
