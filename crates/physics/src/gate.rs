//! Bradbury–Nielsen gate model.
//!
//! The BN gate chops the continuous (or trap-released) ion beam into the
//! pseudo-random modulation pattern. A real gate is imperfect in three ways
//! that matter for deconvolution fidelity (experiment E2):
//!
//! * **finite rise time** — the first fine bin of every opening transmits
//!   only part of the beam while the deflection field collapses;
//! * **depletion** — the closed gate does not fully discard ions near the
//!   wires, slightly depressing transmission right after reopening;
//! * **leakage** — a small fraction of the beam passes even when closed.
//!
//! [`GateModel::transmission_waveform`] turns an ideal 0/1 sequence into the
//! *actual* per-bin transmission kernel; acquiring with the real kernel but
//! deconvolving with the ideal sequence is precisely the mismatch the
//! weighted (PNNL-enhanced) inverse is built to absorb.

use serde::{Deserialize, Serialize};

/// Transmission defects of a Bradbury–Nielsen gate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateModel {
    /// Transmission deficit of the first open bin after a closed→open
    /// transition (0 = ideal, 0.5 = first bin passes only half).
    pub rise_loss: f64,
    /// Extra deficit applied to the second open bin (`depletion`), modelling
    /// the ion-depleted zone swept out while the gate was closed.
    pub depletion: f64,
    /// Transmission of a *closed* gate (ideally 0).
    pub leakage: f64,
    /// Peak open transmission (ideally 1; grids shadow a few percent).
    pub open_transmission: f64,
}

impl GateModel {
    /// A perfect gate: exactly the design sequence.
    pub fn ideal() -> Self {
        Self {
            rise_loss: 0.0,
            depletion: 0.0,
            leakage: 0.0,
            open_transmission: 1.0,
        }
    }

    /// A realistic gate with a defect level `d ∈ [0, 1]` scaling every
    /// imperfection (d = 0.1 is a well-tuned gate; 0.3 a poor one).
    pub fn with_defect_level(d: f64) -> Self {
        assert!((0.0..=1.0).contains(&d), "defect level must be in [0,1]");
        Self {
            rise_loss: 0.45 * d,
            depletion: 0.2 * d,
            leakage: 0.05 * d,
            open_transmission: 1.0 - 0.1 * d,
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("rise_loss", self.rise_loss),
            ("depletion", self.depletion),
            ("leakage", self.leakage),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} = {v} outside [0,1]"));
            }
        }
        if !(0.0..=1.0).contains(&self.open_transmission) {
            return Err(format!(
                "open_transmission = {} outside [0,1]",
                self.open_transmission
            ));
        }
        Ok(())
    }

    /// The actual per-bin transmission for an ideal 0/1 gate pattern
    /// (cyclic: the first bin's predecessor is the last bin).
    pub fn transmission_waveform(&self, pattern: &[bool]) -> Vec<f64> {
        let n = pattern.len();
        (0..n)
            .map(|k| {
                if !pattern[k] {
                    return self.leakage;
                }
                let prev = pattern[(k + n - 1) % n];
                let prev2 = pattern[(k + n - 2) % n];
                let mut t = self.open_transmission;
                if !prev {
                    // First bin of an opening: rise-time loss.
                    t *= 1.0 - self.rise_loss;
                } else if !prev2 {
                    // Second bin: depletion zone.
                    t *= 1.0 - self.depletion;
                }
                t
            })
            .collect()
    }

    /// Root-mean-square deviation of the real waveform from the ideal
    /// pattern — a scalar "gate defect" figure used in E2.
    pub fn waveform_rms_error(&self, pattern: &[bool]) -> f64 {
        let w = self.transmission_waveform(pattern);
        let se: f64 = pattern
            .iter()
            .zip(w.iter())
            .map(|(&b, &t)| {
                let ideal = if b { 1.0 } else { 0.0 };
                (t - ideal) * (t - ideal)
            })
            .sum();
        (se / pattern.len() as f64).sqrt()
    }
}

impl Default for GateModel {
    fn default() -> Self {
        Self::with_defect_level(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_gate_reproduces_pattern() {
        let g = GateModel::ideal();
        let pattern = [true, true, false, true, false, false, true];
        let w = g.transmission_waveform(&pattern);
        for (b, t) in pattern.iter().zip(w.iter()) {
            assert_eq!(*t, if *b { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn rise_loss_hits_first_open_bin_only() {
        let g = GateModel {
            rise_loss: 0.4,
            depletion: 0.0,
            leakage: 0.0,
            open_transmission: 1.0,
        };
        let pattern = [false, true, true, true, false];
        let w = g.transmission_waveform(&pattern);
        assert!((w[1] - 0.6).abs() < 1e-12);
        assert!((w[2] - 1.0).abs() < 1e-12);
        assert!((w[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn depletion_hits_second_open_bin() {
        let g = GateModel {
            rise_loss: 0.0,
            depletion: 0.25,
            leakage: 0.0,
            open_transmission: 1.0,
        };
        let pattern = [false, true, true, true, false];
        let w = g.transmission_waveform(&pattern);
        assert!((w[1] - 1.0).abs() < 1e-12);
        assert!((w[2] - 0.75).abs() < 1e-12);
        assert!((w[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_when_closed() {
        let g = GateModel {
            rise_loss: 0.0,
            depletion: 0.0,
            leakage: 0.02,
            open_transmission: 1.0,
        };
        let w = g.transmission_waveform(&[false, false, true]);
        assert!((w[0] - 0.02).abs() < 1e-12);
        assert!((w[1] - 0.02).abs() < 1e-12);
    }

    #[test]
    fn cyclic_boundary_handled() {
        // Opening at bin 0 whose predecessor (last bin) is closed.
        let g = GateModel {
            rise_loss: 0.5,
            depletion: 0.0,
            leakage: 0.0,
            open_transmission: 1.0,
        };
        let w = g.transmission_waveform(&[true, true, false]);
        assert!((w[0] - 0.5).abs() < 1e-12, "w[0] = {}", w[0]);
        assert!((w[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rms_error_scales_with_defect_level() {
        let pattern: Vec<bool> = (0..64).map(|k| k % 3 != 0).collect();
        let e1 = GateModel::with_defect_level(0.1).waveform_rms_error(&pattern);
        let e3 = GateModel::with_defect_level(0.3).waveform_rms_error(&pattern);
        assert!(e3 > 2.0 * e1, "{e1} vs {e3}");
        assert_eq!(GateModel::ideal().waveform_rms_error(&pattern), 0.0);
    }

    #[test]
    fn validate_catches_out_of_range() {
        let mut g = GateModel::ideal();
        assert!(g.validate().is_ok());
        g.leakage = 1.5;
        assert!(g.validate().is_err());
    }
}
