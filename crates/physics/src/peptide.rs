//! Peptides: residue masses, in-silico tryptic digestion, and the empirical
//! CCS / charge-state models that turn sequences into [`IonSpecies`].
//!
//! The reference peptides are the actual PNNL multiplexed-IMS test set
//! (bradykinin, angiotensin I, fibrinopeptide A, neurotensin). Complex
//! digest matrices are generated from deterministic *synthetic* protein
//! sequences with natural amino-acid frequencies — a documented substitution
//! for the proprietary digests (BSA, *Shewanella*, human plasma) used in the
//! companion papers; the m/z, mobility, and abundance statistics that drive
//! the data processing are preserved.

use crate::ion::IonSpecies;
use serde::{Deserialize, Serialize};

/// Monoisotopic mass of water, Da.
pub const WATER: f64 = 18.010_565;

/// Monoisotopic residue mass, Da. Returns `None` for non-standard letters.
pub fn residue_mass(aa: u8) -> Option<f64> {
    Some(match aa {
        b'G' => 57.021_46,
        b'A' => 71.037_11,
        b'S' => 87.032_03,
        b'P' => 97.052_76,
        b'V' => 99.068_41,
        b'T' => 101.047_68,
        b'C' => 103.009_19,
        b'L' | b'I' => 113.084_06,
        b'N' => 114.042_93,
        b'D' => 115.026_94,
        b'Q' => 128.058_58,
        b'K' => 128.094_96,
        b'E' => 129.042_59,
        b'M' => 131.040_49,
        b'H' => 137.058_91,
        b'F' => 147.068_41,
        b'R' => 156.101_11,
        b'Y' => 163.063_33,
        b'W' => 186.079_31,
        _ => return None,
    })
}

/// A peptide sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Peptide {
    /// One-letter amino-acid sequence.
    pub sequence: String,
}

impl Peptide {
    /// Creates a peptide, validating every residue.
    ///
    /// # Panics
    /// Panics on non-standard residues.
    pub fn new(sequence: impl Into<String>) -> Self {
        let sequence = sequence.into();
        assert!(!sequence.is_empty(), "empty peptide");
        for &b in sequence.as_bytes() {
            assert!(
                residue_mass(b).is_some(),
                "non-standard residue {:?} in {sequence}",
                b as char
            );
        }
        Self { sequence }
    }

    /// Length in residues.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Whether the sequence is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// Neutral monoisotopic mass, Da.
    pub fn monoisotopic_mass(&self) -> f64 {
        self.sequence
            .bytes()
            .map(|b| residue_mass(b).expect("validated at construction"))
            .sum::<f64>()
            + WATER
    }

    /// Number of basic sites (K, R, H plus the N-terminus) — the ceiling of
    /// the ESI charge-state distribution.
    pub fn basic_sites(&self) -> u32 {
        1 + self
            .sequence
            .bytes()
            .filter(|&b| b == b'K' || b == b'R' || b == b'H')
            .count() as u32
    }

    /// Empirical ion–N₂ collision cross section, Å².
    ///
    /// Model: `Ω = 2.9·m^(2/3)·(1 + 0.15·(z−1))`, plus a ±4 % deterministic
    /// per-sequence perturbation so isobaric peptides separate in drift time
    /// the way conformational diversity separates them in reality.
    pub fn ccs_a2(&self, charge: u32) -> f64 {
        let m = self.monoisotopic_mass();
        let base = 2.9 * m.powf(2.0 / 3.0) * (1.0 + 0.15 * (charge.saturating_sub(1)) as f64);
        let jitter = 1.0 + 0.04 * hash_to_unit(&self.sequence);
        base * jitter
    }

    /// ESI charge states this peptide is observed in, with relative weights.
    ///
    /// Peptides charge up to `min(basic_sites, 3)`; the dominant state is 2+
    /// for typical tryptic peptides (one basic C-terminal residue plus the
    /// N-terminus).
    pub fn charge_states(&self) -> Vec<(u32, f64)> {
        let max_z = self.basic_sites().min(3);
        match max_z {
            1 => vec![(1, 1.0)],
            2 => vec![(1, 0.25), (2, 0.75)],
            _ => vec![(1, 0.1), (2, 0.6), (3, 0.3)],
        }
    }

    /// Converts the peptide to ion species at total abundance `abundance`,
    /// split across its charge states.
    pub fn to_species(&self, abundance: f64) -> Vec<IonSpecies> {
        self.charge_states()
            .into_iter()
            .map(|(z, w)| {
                IonSpecies::new(
                    format!("{}/{z}+", self.sequence),
                    self.monoisotopic_mass(),
                    z,
                    self.ccs_a2(z),
                    abundance * w,
                )
            })
            .collect()
    }
}

/// Deterministic hash of a string to `[−1, 1]` (FNV-1a based).
fn hash_to_unit(s: &str) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % 20001) as f64 / 10000.0 - 1.0
}

/// In-silico tryptic digestion: cleave after K or R except before P.
///
/// `missed_cleavages` allows 0–2 missed sites; peptides shorter than
/// `min_len` residues are discarded (they fall below the instrument's m/z
/// range in practice).
pub fn tryptic_digest(protein: &str, missed_cleavages: usize, min_len: usize) -> Vec<Peptide> {
    assert!(
        missed_cleavages <= 2,
        "at most 2 missed cleavages supported"
    );
    let bytes = protein.as_bytes();
    // Cleavage points: index AFTER which we cut.
    let mut cuts = Vec::new();
    for i in 0..bytes.len() {
        let is_site = (bytes[i] == b'K' || bytes[i] == b'R')
            && bytes.get(i + 1).is_none_or(|&next| next != b'P');
        if is_site {
            cuts.push(i + 1);
        }
    }
    if cuts.last() != Some(&bytes.len()) {
        cuts.push(bytes.len());
    }
    let mut peptides = Vec::new();
    // Peptide i spans starts[i]..cuts[i]; each start is the previous cut.
    let mut starts = Vec::with_capacity(cuts.len());
    starts.push(0usize);
    starts.extend(cuts.iter().take(cuts.len() - 1).copied());
    for (si, &s) in starts.iter().enumerate() {
        for extra in 0..=missed_cleavages {
            if si + extra >= cuts.len() {
                break;
            }
            let e = cuts[si + extra];
            if e - s >= min_len {
                peptides.push(Peptide::new(&protein[s..e]));
            }
        }
    }
    peptides
}

/// The PNNL reference peptides used across the companion papers.
pub fn reference_peptides() -> Vec<Peptide> {
    vec![
        Peptide::new("RPPGFSPFR"),        // bradykinin
        Peptide::new("DRVYIHPFHL"),       // angiotensin I
        Peptide::new("ADSGEGDFLAEGGGVR"), // fibrinopeptide A
        Peptide::new("QLYENKPRRPYIL"),    // neurotensin (Gln form)
    ]
}

/// A wider spike panel for dynamic-range studies: the reference peptides
/// plus substance P (free-acid form) and renin substrate tetradecapeptide —
/// six distinct (m/z, mobility) positions, so up to six spike levels can be
/// measured without colliding.
pub fn spike_peptides() -> Vec<Peptide> {
    let mut v = reference_peptides();
    v.push(Peptide::new("RPKPQQFFGLM")); // substance P (1-11, free acid)
    v.push(Peptide::new("DRVYIHPFHLLVYS")); // renin substrate
    v
}

/// Human ubiquitin (P0CG47 monomer) — a real protein sequence for digestion
/// tests.
pub const UBIQUITIN: &str =
    "MQIFVKTLTGKTITLEVEPSDTIENVKAKIQDKEGIPPDQQRLIFAGKQLEDGRTLSDYNIQKESTLHLVLRLRGG";

/// Deterministic synthetic protein with natural amino-acid frequencies —
/// the documented stand-in for proprietary digest matrices.
pub fn synthetic_protein(seed: u64, length: usize) -> String {
    // Swiss-Prot background frequencies (per mille, coarse).
    const FREQ: &[(u8, u32)] = &[
        (b'A', 83),
        (b'R', 55),
        (b'N', 41),
        (b'D', 55),
        (b'C', 14),
        (b'Q', 39),
        (b'E', 67),
        (b'G', 71),
        (b'H', 23),
        (b'I', 59),
        (b'L', 97),
        (b'K', 58),
        (b'M', 24),
        (b'F', 39),
        (b'P', 47),
        (b'S', 66),
        (b'T', 53),
        (b'W', 11),
        (b'Y', 29),
        (b'V', 69),
    ];
    let total: u32 = FREQ.iter().map(|f| f.1).sum();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut out = String::with_capacity(length);
    for _ in 0..length {
        let mut pick = (next() % total as u64) as u32;
        let mut chosen = b'A';
        for &(aa, w) in FREQ {
            if pick < w {
                chosen = aa;
                break;
            }
            pick -= w;
        }
        out.push(chosen as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bradykinin_mass_matches_literature() {
        let bk = Peptide::new("RPPGFSPFR");
        assert!(
            (bk.monoisotopic_mass() - 1059.5614).abs() < 0.005,
            "mass {}",
            bk.monoisotopic_mass()
        );
    }

    #[test]
    fn angiotensin_mass_matches_literature() {
        let ang = Peptide::new("DRVYIHPFHL");
        assert!(
            (ang.monoisotopic_mass() - 1295.6775).abs() < 0.01,
            "mass {}",
            ang.monoisotopic_mass()
        );
    }

    #[test]
    fn fibrinopeptide_a_mass_matches_literature() {
        let fpa = Peptide::new("ADSGEGDFLAEGGGVR");
        assert!(
            (fpa.monoisotopic_mass() - 1535.6847).abs() < 0.01,
            "mass {}",
            fpa.monoisotopic_mass()
        );
    }

    #[test]
    fn tryptic_digest_of_known_fragment() {
        // "AKRPGK" → after K at 1 (next is R, fine), after R at 2? next is P
        // → no cleavage; after K at 5 (end).
        let peps = tryptic_digest("AKRPGK", 0, 1);
        let seqs: Vec<&str> = peps.iter().map(|p| p.sequence.as_str()).collect();
        assert_eq!(seqs, vec!["AK", "RPGK"]);
    }

    #[test]
    fn digest_covers_whole_protein() {
        let peps = tryptic_digest(UBIQUITIN, 0, 1);
        let reassembled: String = peps.iter().map(|p| p.sequence.as_str()).collect();
        assert_eq!(reassembled, UBIQUITIN);
    }

    #[test]
    fn missed_cleavages_add_longer_peptides() {
        let none = tryptic_digest(UBIQUITIN, 0, 6);
        let one = tryptic_digest(UBIQUITIN, 1, 6);
        assert!(one.len() > none.len());
        // Every 0-missed peptide is still present.
        for p in &none {
            assert!(one.contains(p));
        }
    }

    #[test]
    fn charge_states_track_basic_sites() {
        let no_basic = Peptide::new("GGAGG"); // only N-terminus
        assert_eq!(no_basic.charge_states(), vec![(1, 1.0)]);
        let tryptic = Peptide::new("GGAGGK"); // N-term + K
        assert_eq!(tryptic.charge_states().last().unwrap().0, 2);
        let rich = Peptide::new("HKRGH");
        assert_eq!(rich.charge_states().last().unwrap().0, 3);
    }

    #[test]
    fn ccs_grows_with_mass_and_charge() {
        let small = Peptide::new("GGAGGK");
        let large = Peptide::new("GGAGGKGGAGGKGGAGGK");
        assert!(large.ccs_a2(1) > small.ccs_a2(1));
        assert!(small.ccs_a2(2) > small.ccs_a2(1));
        // Typical scale: ~1000 Da tryptic 2+ around 280–360 Å².
        let bk = Peptide::new("RPPGFSPFR");
        let ccs = bk.ccs_a2(2);
        assert!(ccs > 250.0 && ccs < 400.0, "CCS {ccs}");
    }

    #[test]
    fn species_conserve_abundance() {
        let p = Peptide::new("DRVYIHPFHL");
        let species = p.to_species(10.0);
        let total: f64 = species.iter().map(|s| s.abundance).sum();
        assert!((total - 10.0).abs() < 1e-9);
        assert!(species.len() >= 2);
    }

    #[test]
    fn synthetic_protein_is_deterministic_and_plausible() {
        let a = synthetic_protein(7, 500);
        let b = synthetic_protein(7, 500);
        assert_eq!(a, b);
        let c = synthetic_protein(8, 500);
        assert_ne!(a, c);
        // Leucine should be the most common residue, tryptophan rare.
        let count = |s: &str, ch: char| s.chars().filter(|&c| c == ch).count();
        assert!(count(&a, 'L') > count(&a, 'W'));
        // Digestible: a 500-residue protein has dozens of tryptic peptides.
        let peps = tryptic_digest(&a, 0, 6);
        assert!(peps.len() > 10, "only {} peptides", peps.len());
    }

    #[test]
    #[should_panic(expected = "non-standard residue")]
    fn rejects_bad_residue() {
        let _ = Peptide::new("GGXGG");
    }
}
