//! Mobility theory helpers: field-dependent drift velocity and the
//! diffusion-limited resolving power of a uniform-field drift tube.

use crate::constants::*;

/// Converts reduced mobility `K₀` (cm²/V·s) to the mobility at the working
/// pressure (Torr) and temperature (K).
pub fn mobility_at(k0: f64, pressure_torr: f64, temperature_k: f64) -> f64 {
    assert!(pressure_torr > 0.0 && temperature_k > 0.0);
    k0 * (STANDARD_PRESSURE_TORR / pressure_torr) * (temperature_k / STANDARD_TEMPERATURE)
}

/// Drift velocity (cm/s) in field `e_field` (V/cm) for mobility `k`
/// (cm²/V·s) — the low-field linear regime.
pub fn drift_velocity(k: f64, e_field: f64) -> f64 {
    k * e_field
}

/// Diffusion-limited single-peak resolving power `t/Δt_FWHM` of a uniform
/// drift tube operated at total drift voltage `v` (V) for charge `z`:
///
/// ```text
/// R_diff = √(z·e·V / (16·kB·T·ln2))
/// ```
pub fn diffusion_limited_resolving_power(
    charge: u32,
    drift_voltage: f64,
    temperature_k: f64,
) -> f64 {
    assert!(drift_voltage > 0.0 && temperature_k > 0.0);
    (charge as f64 * ELEMENTARY_CHARGE * drift_voltage
        / (16.0 * BOLTZMANN * temperature_k * (2.0f64).ln()))
    .sqrt()
}

/// Low-field criterion: `E/N` in Townsend (1 Td = 10⁻¹⁷ V·cm²). For heavy
/// polyatomic ions such as peptides the linear mobility regime holds up to
/// `E/N ≈ 20 Td` (reduced-pressure drift tubes run at 10–20 Td by design).
pub fn e_over_n_townsend(e_field_v_cm: f64, pressure_torr: f64, temperature_k: f64) -> f64 {
    // Number density in cm⁻³ at working conditions.
    let n = LOSCHMIDT
        * 1e-6
        * (pressure_torr / STANDARD_PRESSURE_TORR)
        * (STANDARD_TEMPERATURE / temperature_k);
    e_field_v_cm / n / 1e-17
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobility_scales_inverse_with_pressure() {
        let k4 = mobility_at(1.0, 4.0, 273.15);
        let k8 = mobility_at(1.0, 8.0, 273.15);
        assert!((k4 / k8 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn resolving_power_typical_drift_tube() {
        // PNNL-style tube: ~4 kV total drift voltage, room temperature.
        let r = diffusion_limited_resolving_power(1, 4000.0, 300.0);
        assert!(r > 90.0 && r < 130.0, "R = {r}");
        // Doubling the charge gains √2.
        let r2 = diffusion_limited_resolving_power(2, 4000.0, 300.0);
        assert!((r2 / r - (2.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn drift_velocity_linear() {
        assert!((drift_velocity(1.2, 20.0) - 24.0).abs() < 1e-12);
    }

    #[test]
    fn low_field_regime_at_typical_conditions() {
        // 20 V/cm at 4 Torr, 300 K ≈ 15 Td: inside the peptide low-field
        // regime (< 20 Td) but a much higher E/N than an ambient-pressure
        // tube (which sits near 1 Td).
        let td = e_over_n_townsend(20.0, 4.0, 300.0);
        assert!(td < 20.0, "E/N = {td} Td");
        assert!(td > 10.0, "E/N = {td} Td");
        let ambient = e_over_n_townsend(250.0, 760.0, 300.0);
        assert!(ambient < 2.0, "ambient E/N = {ambient} Td");
    }
}
