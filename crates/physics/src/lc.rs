//! Capillary reversed-phase liquid chromatography front end.
//!
//! The companion platform paper (entry 19, "An LC-IMS-MS Platform Providing
//! Increased Dynamic Range for High-Throughput Proteomic Studies") couples
//! a fast (15-minute) RPLC gradient in front of the multiplexed IMS-TOF:
//! peptides enter the instrument spread over retention time, which both
//! decongests the (drift, m/z) plane and adds a third separation dimension.
//!
//! The retention model is the standard additive-hydrophobicity one: each
//! residue contributes a coefficient (coarse Krokhin/Guo-style values), the
//! summed index maps monotonically onto the gradient, and elution peaks are
//! Gaussian in time. A deterministic per-sequence perturbation stands in
//! for the conformation/position effects a full SSRCalc would model.

use crate::peptide::Peptide;
use serde::{Deserialize, Serialize};

/// Residue hydrophobicity retention coefficients (arbitrary units, coarse
/// reversed-phase scale: W/F/L most retained, K/R/H least).
pub fn retention_coefficient(aa: u8) -> f64 {
    match aa {
        b'W' => 11.0,
        b'F' => 10.5,
        b'L' => 9.6,
        b'I' => 8.4,
        b'M' => 5.8,
        b'V' => 5.0,
        b'Y' => 4.0,
        b'A' => 1.1,
        b'T' => 0.65,
        b'P' => 2.0,
        b'E' => 1.0,
        b'D' => 0.15,
        b'C' => 0.8,
        b'S' => -0.1,
        b'Q' => -0.2,
        b'G' => -0.35,
        b'N' => -0.45,
        b'R' => -1.3,
        b'H' => -1.4,
        b'K' => -2.1,
        _ => 0.0,
    }
}

/// Summed hydrophobicity index of a peptide, with a mild length correction
/// (long peptides retain disproportionately).
pub fn hydrophobicity_index(peptide: &Peptide) -> f64 {
    let sum: f64 = peptide.sequence.bytes().map(retention_coefficient).sum();
    let length_factor = 1.0 - 0.3 * (peptide.len() as f64 / 20.0).min(1.0);
    sum * (0.7 + length_factor * 0.3)
}

/// A reversed-phase gradient program.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LcGradient {
    /// Total gradient duration, seconds (entry 19 runs 15 min ≈ 900 s).
    pub duration_s: f64,
    /// Dead time before the first peptides elute, seconds.
    pub dead_time_s: f64,
    /// 1-σ elution peak width, seconds.
    pub peak_sigma_s: f64,
    /// Run-to-run retention drift: constant shift of all retention times,
    /// seconds (column ageing / mobile-phase variation between replicates).
    pub run_shift_s: f64,
    /// Run-to-run retention drift: multiplicative stretch of all retention
    /// times (1.0 = none).
    pub run_scale: f64,
}

impl Default for LcGradient {
    fn default() -> Self {
        Self {
            duration_s: 900.0,
            dead_time_s: 60.0,
            peak_sigma_s: 4.5,
            run_shift_s: 0.0,
            run_scale: 1.0,
        }
    }
}

impl LcGradient {
    /// Retention time of a peptide, seconds.
    ///
    /// The hydrophobicity index is squashed through a logistic onto the
    /// usable gradient window, plus a ±2 % deterministic per-sequence
    /// perturbation.
    pub fn retention_time_s(&self, peptide: &Peptide) -> f64 {
        let h = hydrophobicity_index(peptide);
        // Tryptic peptides span roughly h ∈ [−5, 80]; centre the logistic.
        let z = (h - 25.0) / 18.0;
        let frac = 1.0 / (1.0 + (-z).exp());
        let jitter = 1.0 + 0.02 * seq_hash_unit(&peptide.sequence);
        let nominal = (self.dead_time_s + frac * (self.duration_s - self.dead_time_s)) * jitter;
        nominal * self.run_scale + self.run_shift_s
    }

    /// This gradient as observed in replicate run `r`, with a deterministic
    /// drift pattern of amplitude `drift_s` (the retention irreproducibility
    /// an aligned exclusion list must absorb).
    pub fn replicate(&self, run: usize, drift_s: f64) -> Self {
        const PATTERN: [f64; 4] = [0.0, 1.0, -0.6, 0.4];
        let mut g = *self;
        g.run_shift_s += drift_s * PATTERN[run % 4];
        g.run_scale *= 1.0 + 0.004 * PATTERN[(run + 1) % 4];
        g
    }

    /// Relative elution intensity of a peptide at LC time `t` (peak value
    /// 1 at the apex).
    pub fn elution_factor(&self, peptide: &Peptide, t_s: f64) -> f64 {
        let rt = self.retention_time_s(peptide);
        let z = (t_s - rt) / self.peak_sigma_s;
        (-0.5 * z * z).exp()
    }

    /// Mean elution factor over a time window `[t0, t1]` — the fraction of
    /// the peptide's total eluted amount collected per second of the
    /// window, relative to the apex rate. This is what a stepped (fraction-
    /// collecting) acquisition actually integrates.
    pub fn mean_elution_factor(&self, peptide: &Peptide, t0_s: f64, t1_s: f64) -> f64 {
        assert!(t1_s > t0_s, "empty window");
        let rt = self.retention_time_s(peptide);
        let s = self.peak_sigma_s * std::f64::consts::SQRT_2;
        let cdf = |t: f64| 0.5 * (1.0 + ims_signal::peaks::erf((t - rt) / s));
        // Integral of the unit-apex Gaussian over the window, divided by
        // the window length.
        let integral =
            (cdf(t1_s) - cdf(t0_s)) * self.peak_sigma_s * (2.0 * std::f64::consts::PI).sqrt();
        integral / (t1_s - t0_s)
    }

    /// Chromatographic peak capacity: usable window over the 4-σ peak base.
    pub fn peak_capacity(&self) -> f64 {
        (self.duration_s - self.dead_time_s) / (4.0 * self.peak_sigma_s)
    }
}

/// Deterministic hash of a sequence to `[−1, 1]`.
fn seq_hash_unit(s: &str) -> f64 {
    let mut h: u64 = 0x51_7C_C1_B7_27_22_0A_95;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    (h % 20001) as f64 / 10000.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydrophobic_peptides_elute_later() {
        let g = LcGradient::default();
        let hydrophilic = Peptide::new("KKGGSKK");
        let hydrophobic = Peptide::new("WWLLFFLL");
        assert!(g.retention_time_s(&hydrophobic) > g.retention_time_s(&hydrophilic) + 100.0);
    }

    #[test]
    fn retention_inside_gradient_window() {
        let g = LcGradient::default();
        for seq in [
            "GGSGGS",
            "LLLLLL",
            "RPPGFSPFR",
            "ADSGEGDFLAEGGGVR",
            "WWWWWWWW",
        ] {
            let rt = g.retention_time_s(&Peptide::new(seq));
            assert!(rt > 0.0 && rt < 1.05 * g.duration_s, "{seq}: rt {rt}");
        }
    }

    #[test]
    fn elution_factor_peaks_at_retention_time() {
        let g = LcGradient::default();
        let p = Peptide::new("DRVYIHPFHL");
        let rt = g.retention_time_s(&p);
        assert!((g.elution_factor(&p, rt) - 1.0).abs() < 1e-9);
        assert!(g.elution_factor(&p, rt + 3.0 * g.peak_sigma_s) < 0.02);
        assert!(g.elution_factor(&p, rt - g.peak_sigma_s) > 0.5);
    }

    #[test]
    fn mean_elution_factor_conserves_peak_area() {
        // Summing factor × window over contiguous windows spanning the
        // whole peak must equal the peak's total area (σ·√2π per unit apex).
        let g = LcGradient::default();
        let p = Peptide::new("DRVYIHPFHL");
        let step = 60.0;
        let total: f64 = (0..15)
            .map(|k| g.mean_elution_factor(&p, k as f64 * step, (k + 1) as f64 * step) * step)
            .sum();
        let expect = g.peak_sigma_s * (2.0 * std::f64::consts::PI).sqrt();
        assert!(
            (total - expect).abs() < 0.01 * expect,
            "{total} vs {expect}"
        );
    }

    #[test]
    fn wide_window_still_captures_narrow_peak() {
        let g = LcGradient::default();
        let p = Peptide::new("DRVYIHPFHL");
        let rt = g.retention_time_s(&p);
        let window = (rt - 30.0, rt + 30.0);
        let f = g.mean_elution_factor(&p, window.0, window.1);
        // Peak fully inside: factor = σ√2π / 60 ≈ 0.19.
        assert!(f > 0.15 && f < 0.25, "factor {f}");
    }

    #[test]
    fn peak_capacity_of_default_gradient() {
        // 840 s window / 18 s base ≈ 47 — typical for a fast capillary run.
        let c = LcGradient::default().peak_capacity();
        assert!(c > 35.0 && c < 60.0, "capacity {c}");
    }

    #[test]
    fn distinct_peptides_get_distinct_times() {
        let g = LcGradient::default();
        let a = g.retention_time_s(&Peptide::new("LGEYGFQNALIVR"));
        let b = g.retention_time_s(&Peptide::new("LGEYGFQNALIVK"));
        assert!((a - b).abs() > 0.1, "{a} vs {b}");
    }

    #[test]
    fn replicate_drift_shifts_retention_reproducibly() {
        let g = LcGradient::default();
        let p = Peptide::new("DRVYIHPFHL");
        let base_rt = g.retention_time_s(&p);
        // Run 0 of the pattern is undrifted.
        let r0 = g.replicate(0, 25.0);
        assert!((r0.retention_time_s(&p) - base_rt).abs() < 4.0); // scale term only
                                                                  // Run 1 shifts by +25 s (plus a small scale term).
        let r1 = g.replicate(1, 25.0);
        let shift = r1.retention_time_s(&p) - base_rt;
        assert!(shift > 20.0 && shift < 32.0, "shift {shift}");
        // Deterministic.
        assert_eq!(
            g.replicate(1, 25.0).retention_time_s(&p),
            r1.retention_time_s(&p)
        );
        // Zero drift amplitude leaves only the tiny scale pattern.
        let r1z = g.replicate(1, 0.0);
        assert!((r1z.retention_time_s(&p) - base_rt).abs() < 4.0);
    }

    #[test]
    fn coefficients_cover_all_residues() {
        for aa in "ACDEFGHIKLMNPQRSTVWY".bytes() {
            // Just exercise; tryptophan must top the scale.
            assert!(retention_coefficient(aa) <= retention_coefficient(b'W'));
        }
    }
}
