//! Workload generators: the analyte mixtures the evaluation runs on.

use crate::ion::IonSpecies;
use crate::peptide::{reference_peptides, synthetic_protein, tryptic_digest, Peptide};
use serde::{Deserialize, Serialize};

/// A named analyte mixture.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// Descriptive name (appears in experiment outputs).
    pub name: String,
    /// The ion species of the mixture.
    pub species: Vec<IonSpecies>,
}

impl Workload {
    /// A single calibrant ion — the E2/E7 single-analyte workload.
    pub fn single_calibrant() -> Self {
        let bk = Peptide::new("RPPGFSPFR");
        let mass = bk.monoisotopic_mass();
        Self {
            name: "bradykinin-2+".into(),
            species: vec![IonSpecies::new("RPPGFSPFR/2+", mass, 2, bk.ccs_a2(2), 1.0)],
        }
    }

    /// The classic three-peptide infusion mix (bradykinin, angiotensin I,
    /// fibrinopeptide A) at equal molar abundance — the E1 workload.
    pub fn three_peptide_mix() -> Self {
        let mut species = Vec::new();
        for p in reference_peptides().into_iter().take(3) {
            species.extend(p.to_species(1.0));
        }
        Self {
            name: "three-peptide-mix".into(),
            species,
        }
    }

    /// A complex tryptic digest of `n_proteins` synthetic proteins (the
    /// documented stand-in for a cell-lysate digest), total abundance
    /// `matrix_abundance` spread across peptides.
    pub fn complex_digest(seed: u64, n_proteins: usize, matrix_abundance: f64) -> Self {
        let mut species = Vec::new();
        let mut all_peptides = Vec::new();
        for p in 0..n_proteins {
            let protein = synthetic_protein(seed.wrapping_add(p as u64), 400);
            all_peptides.extend(tryptic_digest(&protein, 0, 6));
        }
        if !all_peptides.is_empty() {
            // Log-uniform-ish abundance spread: peptide i gets weight
            // 1/(1+i mod 17) — a deterministic rough mimic of real digests'
            // wide dynamic range.
            let weights: Vec<f64> = (0..all_peptides.len())
                .map(|i| 1.0 / (1.0 + (i % 17) as f64))
                .collect();
            let wsum: f64 = weights.iter().sum();
            for (pep, w) in all_peptides.iter().zip(weights.iter()) {
                species.extend(pep.to_species(matrix_abundance * w / wsum));
            }
        }
        Self {
            name: format!("digest-{n_proteins}-proteins"),
            species,
        }
    }

    /// Complex digest matrix (total `matrix_abundance`) plus spike-panel
    /// peptides at the given abundances — the E6 dynamic-range workload.
    /// Each spike level uses a *distinct* peptide (panics beyond the
    /// six-peptide panel) so the responses never collide in (m/z, drift)
    /// space.
    pub fn spiked_digest(
        seed: u64,
        n_proteins: usize,
        matrix_abundance: f64,
        spike_abundances: &[f64],
    ) -> Self {
        let mut base = Self::complex_digest(seed, n_proteins, matrix_abundance);
        let panel = crate::peptide::spike_peptides();
        assert!(
            spike_abundances.len() <= panel.len(),
            "at most {} spike levels supported",
            panel.len()
        );
        for (i, &level) in spike_abundances.iter().enumerate() {
            for mut sp in panel[i].to_species(level) {
                sp.name = format!("spike-{i}:{}", sp.name);
                base.species.push(sp);
            }
        }
        base.name = format!("spiked-digest-{n_proteins}x{}", spike_abundances.len());
        base
    }

    /// Returns the workload with every abundance scaled by `factor` — e.g.
    /// diluting a µM-scale mix to the nM regime where acquisition becomes
    /// detection-noise-limited.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        for s in &mut self.species {
            s.abundance *= factor;
        }
        self.name = format!("{}-x{factor:e}", self.name);
        self
    }

    /// Number of species.
    pub fn len(&self) -> usize {
        self.species.len()
    }

    /// True when the mixture is empty.
    pub fn is_empty(&self) -> bool {
        self.species.is_empty()
    }

    /// Total molar abundance.
    pub fn total_abundance(&self) -> f64 {
        self.species.iter().map(|s| s.abundance).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_peptide_mix_has_multiple_charge_states() {
        let w = Workload::three_peptide_mix();
        assert!(w.len() >= 6, "{} species", w.len());
        assert!((w.total_abundance() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn complex_digest_is_deterministic_and_large() {
        let a = Workload::complex_digest(1, 10, 50.0);
        let b = Workload::complex_digest(1, 10, 50.0);
        assert_eq!(a.species.len(), b.species.len());
        assert!(a.len() > 100, "{} species", a.len());
        assert!((a.total_abundance() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn spiked_digest_contains_spikes() {
        let w = Workload::spiked_digest(2, 5, 50.0, &[0.01, 0.1, 1.0]);
        let spikes: Vec<_> = w
            .species
            .iter()
            .filter(|s| s.name.starts_with("spike-"))
            .collect();
        assert!(spikes.len() >= 3);
        // Abundances ordered as requested.
        let total_spike: f64 = spikes.iter().map(|s| s.abundance).sum();
        assert!((total_spike - 1.11).abs() < 1e-9);
    }

    #[test]
    fn single_calibrant_is_single() {
        let w = Workload::single_calibrant();
        assert_eq!(w.len(), 1);
        assert_eq!(w.species[0].charge, 2);
    }
}
