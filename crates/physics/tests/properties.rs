//! Property-based tests of the instrument physics.

use ims_physics::fragment::{by_ladder, CidCell, FragmentKind};
use ims_physics::funnel::IonFunnelTrap;
use ims_physics::isotope::averagine_envelope;
use ims_physics::lc::LcGradient;
use ims_physics::map2d::DriftTofMap;
use ims_physics::peptide::{synthetic_protein, tryptic_digest, Peptide, WATER};
use ims_physics::{DriftTube, IonSpecies};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mobility_decreases_with_ccs(
        mass in 200.0..5000.0f64,
        ccs in 100.0..1500.0f64,
        bump in 1.01..2.0f64,
    ) {
        let a = IonSpecies::new("a", mass, 1, ccs, 1.0);
        let b = IonSpecies::new("b", mass, 1, ccs * bump, 1.0);
        prop_assert!(a.reduced_mobility(300.0) > b.reduced_mobility(300.0));
    }

    #[test]
    fn mobility_scales_linearly_with_charge(
        mass in 200.0..5000.0f64,
        ccs in 100.0..1500.0f64,
        z in 1u32..5,
    ) {
        let one = IonSpecies::new("1", mass, 1, ccs, 1.0);
        let many = IonSpecies::new("z", mass, z, ccs, 1.0);
        let ratio = many.reduced_mobility(300.0) / one.reduced_mobility(300.0);
        prop_assert!((ratio - z as f64).abs() < 1e-9);
    }

    #[test]
    fn drift_time_positive_and_voltage_inverse(
        mass in 300.0..3000.0f64,
        ccs in 150.0..900.0f64,
        z in 1u32..4,
        voltage in 1000.0..8000.0f64,
    ) {
        let sp = IonSpecies::new("s", mass, z, ccs, 1.0);
        let mut tube = DriftTube { voltage_v: voltage, ..Default::default() };
        let t1 = tube.drift_time_s(&sp);
        prop_assert!(t1 > 0.0);
        tube.voltage_v = voltage * 2.0;
        let t2 = tube.drift_time_s(&sp);
        prop_assert!((t1 / t2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn digestion_reassembles_protein(seed in 0u64..2000, len in 20usize..300) {
        let protein = synthetic_protein(seed, len);
        let peptides = tryptic_digest(&protein, 0, 1);
        let joined: String = peptides.iter().map(|p| p.sequence.as_str()).collect();
        prop_assert_eq!(joined, protein);
    }

    #[test]
    fn peptide_mass_exceeds_water(seed in 0u64..2000, len in 1usize..40) {
        let protein = synthetic_protein(seed, len);
        let pep = Peptide::new(&protein);
        prop_assert!(pep.monoisotopic_mass() > WATER);
        // Mass is at least 57 Da (glycine) per residue above water.
        prop_assert!(pep.monoisotopic_mass() >= WATER + 57.0 * len as f64 - 1e-6);
    }

    #[test]
    fn isotope_envelope_is_distribution(mass in 100.0..6000.0f64, peaks in 2usize..12) {
        let env = averagine_envelope(mass, peaks);
        prop_assert!(env.len() <= peaks);
        let total: f64 = env.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(env.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn trap_fill_bounded_and_monotone(
        rate in 0.0..1e12f64,
        t1 in 0.0..1.0f64,
        dt in 0.0..1.0f64,
    ) {
        let trap = IonFunnelTrap::default();
        let q1 = trap.stored_charge(rate, t1);
        let q2 = trap.stored_charge(rate, t1 + dt);
        prop_assert!(q1 <= trap.capacity_charges);
        prop_assert!(q2 >= q1 - 1e-9);
        prop_assert!(trap.released_charge(rate, t1) <= q1 + 1e-9);
    }

    #[test]
    fn outer_product_total_factorises(
        dn in 2usize..20,
        mn in 2usize..20,
        scale in 0.1..100.0f64,
        seed in 0u64..100,
    ) {
        let drift: Vec<f64> = (0..dn).map(|i| ((i as u64 + seed) % 7) as f64).collect();
        let mz: Vec<f64> = (0..mn).map(|i| ((i as u64 * 3 + seed) % 5) as f64).collect();
        let mut map = DriftTofMap::zeros(dn, mn);
        map.add_outer(&drift, &mz, scale);
        let expect = scale * drift.iter().sum::<f64>() * mz.iter().sum::<f64>();
        prop_assert!((map.total() - expect).abs() < 1e-6 * (1.0 + expect));
    }

    #[test]
    fn sparse_outer_matches_dense(dn in 2usize..15, mn in 2usize..15, seed in 0u64..50) {
        let drift: Vec<f64> = (0..dn).map(|i| ((i as u64 + seed) % 5) as f64).collect();
        let mz: Vec<f64> = (0..mn)
            .map(|i| if (i as u64 + seed).is_multiple_of(3) { (i + 1) as f64 } else { 0.0 })
            .collect();
        let pairs: Vec<(usize, f64)> = mz
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        let mut dense = DriftTofMap::zeros(dn, mn);
        dense.add_outer(&drift, &mz, 2.5);
        let mut sparse = DriftTofMap::zeros(dn, mn);
        sparse.add_outer_sparse(&drift, &pairs, 2.5);
        prop_assert_eq!(dense.data(), sparse.data());
    }

    #[test]
    fn by_ladder_invariants(seed in 0u64..1000, len in 2usize..30) {
        let protein = synthetic_protein(seed, len);
        let pep = Peptide::new(&protein);
        let frags = by_ladder(&pep);
        prop_assert_eq!(frags.len(), 2 * (len - 1));
        // Intensities form a distribution.
        let total: f64 = frags.iter().map(|f| f.intensity).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Complementarity: b_i + y_{n-i} = M + 2 protons, every bond.
        let m = pep.monoisotopic_mass();
        for i in 1..len {
            let b = frags.iter().find(|f| f.kind == FragmentKind::B && f.index == i).unwrap();
            let y = frags.iter().find(|f| f.kind == FragmentKind::Y && f.index == len - i).unwrap();
            prop_assert!((b.mz + y.mz - (m + 2.0 * 1.007_276_466)).abs() < 1e-6);
        }
    }

    #[test]
    fn cid_budget_conserved(seed in 0u64..500, efficiency in 0.0..1.0f64, transmission in 0.1..1.0f64) {
        let protein = synthetic_protein(seed, 12);
        let pep = Peptide::new(&protein);
        let precursor = &pep.to_species(1.0)[0];
        let cell = CidCell { efficiency, transmission };
        let products = cell.products(precursor, &pep);
        let total: f64 = products.iter().map(|(_, w)| w).sum();
        prop_assert!((total - transmission).abs() < 1e-9, "budget {total}");
        prop_assert!(products.iter().all(|(_, w)| *w >= 0.0));
    }

    #[test]
    fn retention_times_inside_gradient(seed in 0u64..1000, len in 4usize..40) {
        let protein = synthetic_protein(seed, len);
        let pep = Peptide::new(&protein);
        let g = LcGradient::default();
        let rt = g.retention_time_s(&pep);
        prop_assert!(rt > 0.0 && rt < 1.05 * g.duration_s, "rt {rt}");
        // The elution factor is maximal at the retention time.
        let apex = g.elution_factor(&pep, rt);
        prop_assert!((apex - 1.0).abs() < 1e-9);
        prop_assert!(g.elution_factor(&pep, rt + 30.0) < apex);
    }

    #[test]
    fn mean_elution_bounded_by_apex(seed in 0u64..300, t0 in 0.0..800.0f64, width in 1.0..200.0f64) {
        let protein = synthetic_protein(seed, 10);
        let pep = Peptide::new(&protein);
        let g = LcGradient::default();
        let f = g.mean_elution_factor(&pep, t0, t0 + width);
        prop_assert!(f >= 0.0);
        prop_assert!(f <= 1.0 + 1e-9, "mean factor {f} exceeds apex");
    }

    #[test]
    fn arrival_distribution_never_negative_and_bounded(
        ccs in 150.0..900.0f64,
        z in 1u32..4,
        charges in 0.0..1e8f64,
    ) {
        let sp = IonSpecies::new("s", 1000.0, z, ccs, 1.0);
        let tube = DriftTube::default();
        let dist = tube.arrival_distribution(&sp, charges, 256, 2e-4);
        prop_assert!(dist.iter().all(|&v| v >= 0.0));
        let total: f64 = dist.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9);
    }
}
