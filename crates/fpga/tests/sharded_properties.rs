//! Property pins for the m/z-range-sharded accumulator: for any shard
//! count, frame order, and sparse/dense capture mix, the merged drain is
//! bit-identical to a monolithic `AccumulatorCore` fed the same frames in
//! the same order, and the merge itself is order-independent.

use ims_fpga::{merge_shard_parts, AccumulatorCore, ShardedAccumulator};
use proptest::prelude::*;

/// A deterministic pseudo-random frame; small acc widths downstream make
/// saturation easy to hit, so the per-cell saturating-add path is covered.
fn frame(drift: usize, mz: usize, salt: u64) -> Vec<u32> {
    (0..drift * mz)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt.wrapping_mul(0xD6E8_FEB8_6659_FD93));
            // Mix of zeros (sparse coverage) and values near the 8-bit ceil.
            if h.is_multiple_of(5) {
                0
            } else {
                ((h >> 32) % 97) as u32
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline acceptance pin: merged sharded drain == monolithic
    /// drain bit-for-bit, across shard counts (including counts larger
    /// than the column count, which clamp), permuted frame orders, and a
    /// per-frame mix of dense and sparse capture paths. The saturation
    /// tally matches too — both engines see the same per-cell saturating
    /// adds, because the column ranges are disjoint.
    #[test]
    fn merged_drain_is_bit_identical_to_monolithic(
        drift in 1usize..8,
        mz in 1usize..24,
        n_shards in 1usize..32,
        acc_bits in 8u32..16,
        n_frames in 1usize..10,
        order_seed in 0u64..1000,
        sparse_mask in 0u32..256,
    ) {
        let mut frames: Vec<Vec<u32>> =
            (0..n_frames).map(|k| frame(drift, mz, k as u64)).collect();
        // Deterministic permutation of the frame order — the SAME order is
        // fed to both engines (saturation event counts are order-dependent,
        // final contents are not; this pins both under permutation).
        for i in (1..frames.len()).rev() {
            let j = (order_seed
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(i as u64) % (i as u64 + 1)) as usize;
            frames.swap(i, j);
        }

        let mut mono = AccumulatorCore::new(drift, mz, acc_bits);
        let mut sharded = ShardedAccumulator::new(drift, mz, acc_bits, n_shards);
        prop_assert!(sharded.shard_count() >= 1);
        prop_assert!(sharded.shard_count() <= mz);

        for (k, f) in frames.iter().enumerate() {
            if sparse_mask & (1 << (k % 8)) != 0 {
                mono.capture_frame_sparse(f).unwrap();
                sharded.capture_frame_sparse(f).unwrap();
            } else {
                mono.capture_frame(f).unwrap();
                sharded.capture_frame(f).unwrap();
            }
        }

        prop_assert_eq!(sharded.saturation_events(), mono.saturation_events());
        prop_assert_eq!(sharded.drain_merged(), mono.drain());
    }

    /// Merge order independence: any rotation/reversal of the drained
    /// shard parts scatters back to the identical matrix.
    #[test]
    fn merge_is_order_independent(
        drift in 1usize..6,
        mz in 2usize..20,
        n_shards in 2usize..8,
        n_frames in 1usize..6,
        rot in 0usize..8,
    ) {
        let mut acc = ShardedAccumulator::new(drift, mz, 16, n_shards);
        for k in 0..n_frames {
            acc.capture_frame(&frame(drift, mz, k as u64 + 100)).unwrap();
        }
        let parts = acc.drain_parts();
        let forward = merge_shard_parts(drift, mz, &parts);
        let mut shuffled = parts.clone();
        let k = rot % shuffled.len();
        shuffled.rotate_left(k);
        prop_assert_eq!(merge_shard_parts(drift, mz, &shuffled), forward.clone());
        let mut reversed = parts;
        reversed.reverse();
        prop_assert_eq!(merge_shard_parts(drift, mz, &reversed), forward);
    }

    /// Kill-then-rebuild restores bit-identical merge output: a shard
    /// killed mid-stream, revived, and re-fed every frame from the log
    /// drains exactly what an undisturbed run would have.
    #[test]
    fn rebuild_after_kill_restores_monolithic_contents(
        drift in 1usize..6,
        mz in 2usize..20,
        n_shards in 2usize..6,
        n_frames in 1usize..8,
        kill_at in 0usize..8,
        victim_seed in 0u64..64,
    ) {
        let frames: Vec<Vec<u32>> =
            (0..n_frames).map(|k| frame(drift, mz, k as u64 + 7)).collect();
        let mut mono = AccumulatorCore::new(drift, mz, 8);
        let mut acc = ShardedAccumulator::new(drift, mz, 8, n_shards);
        let victim = (victim_seed as usize) % acc.shard_count();
        let kill_at = kill_at % frames.len().max(1);

        for (k, f) in frames.iter().enumerate() {
            mono.capture_frame(f).unwrap();
            acc.capture_frame(f).unwrap();
            if k == kill_at {
                acc.kill(victim);
                prop_assert!(acc.is_lost(victim));
            }
        }
        // Recovery: revive and replay the full frame history into the
        // victim shard only (what the capture log provides).
        acc.revive(victim);
        for f in &frames {
            acc.rebuild_frame(victim, f).unwrap();
        }
        prop_assert_eq!(acc.saturation_events(), mono.saturation_events());
        prop_assert_eq!(acc.drain_merged(), mono.drain());
    }
}
