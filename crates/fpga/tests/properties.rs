//! Property-based tests of the FPGA model: fixed-point semantics, capture
//! correctness, and the integer↔float deconvolution contract.

use ims_fpga::bram::MemoryRequirement;
use ims_fpga::deconv::{Convention, DeconvConfig, DeconvCore};
use ims_fpga::fixed::Fx;
use ims_fpga::AccumulatorCore;
use ims_prs::{FastMTransform, MSequence};
use proptest::prelude::*;

type Q16 = Fx<16>;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fixed_point_round_trip(v in -1e10..1e10f64) {
        let f = Q16::from_f64(v);
        prop_assert!((f.to_f64() - v).abs() <= Q16::ulp() / 2.0 + 1e-9 * v.abs());
    }

    #[test]
    fn fixed_add_matches_f64(a in -1e6..1e6f64, b in -1e6..1e6f64) {
        let fa = Q16::from_f64(a);
        let fb = Q16::from_f64(b);
        let sum = (fa + fb).to_f64();
        prop_assert!((sum - (a + b)).abs() <= 2.0 * Q16::ulp());
    }

    #[test]
    fn fixed_mul_matches_f64(a in -1e4..1e4f64, b in -1e4..1e4f64) {
        let fa = Q16::from_f64(a);
        let fb = Q16::from_f64(b);
        let prod = (fa * fb).to_f64();
        // Error: input quantisation (½ulp each, scaled) + output rounding.
        let tol = Q16::ulp() * (1.0 + a.abs() + b.abs());
        prop_assert!((prod - a * b).abs() <= tol, "{prod} vs {}", a * b);
    }

    #[test]
    fn fixed_ops_never_panic(a in any::<i64>(), b in any::<i64>()) {
        let fa = Fx::<8>::from_raw(a);
        let fb = Fx::<8>::from_raw(b);
        let _ = fa + fb;
        let _ = fa - fb;
        let _ = fa * fb;
        let _ = -fa;
    }

    #[test]
    fn accumulator_sums_elementwise(
        frames in prop::collection::vec(
            prop::collection::vec(0u32..1000, 6),
            1..8,
        ),
    ) {
        let mut acc = AccumulatorCore::new(2, 3, 32);
        for frame in &frames {
            acc.capture_frame(frame).unwrap();
        }
        for i in 0..6 {
            let expect: u64 = frames.iter().map(|f| f[i] as u64).sum();
            prop_assert_eq!(acc.contents()[i], expect);
        }
        prop_assert_eq!(acc.frames_captured(), frames.len() as u64);
    }

    #[test]
    fn integer_deconvolution_tracks_float(degree in 4u32..9, seed in 0u64..500) {
        let seq = MSequence::new(degree);
        let n = seq.len();
        let y: Vec<u64> = (0..n)
            .map(|k| (k as u64).wrapping_mul(seed + 3) % 5000)
            .collect();
        let core = DeconvCore::new(
            &seq,
            DeconvConfig { convention: Convention::Correlation, ..Default::default() },
        );
        let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
        let float = FastMTransform::new(&seq).deconvolve(&yf);
        let fixed = core.to_f64(&core.deconvolve_column(&y));
        let ulp = (2.0f64).powi(-16);
        for (a, b) in float.iter().zip(fixed.iter()) {
            prop_assert!((a - b).abs() <= ulp, "{a} vs {b}");
        }
    }

    #[test]
    fn bram_tiles_cover_capacity(depth in 1u64..100_000, width in 1u64..128) {
        let m = MemoryRequirement { depth, width_bits: width, label: "t" };
        let tiles = m.tiles();
        // Enough tiles for the raw bits…
        prop_assert!(tiles * 18 * 1024 >= m.bits() || width > 36,
            "tiles {tiles} cannot hold {} bits", m.bits());
        // …and never absurdly many (within granularity of the worst aspect).
        prop_assert!(tiles <= m.bits().div_ceil(18 * 1024) + width.div_ceil(1) * depth.div_ceil(512));
    }

    #[test]
    fn cycles_decrease_with_parallelism(degree in 4u32..10, mz in 1usize..500) {
        let seq = MSequence::new(degree);
        let mk = |cols: usize| DeconvCore::new(&seq, DeconvConfig {
            parallel_columns: cols,
            ..Default::default()
        });
        let c1 = mk(1).cycles_per_block(mz);
        let c4 = mk(4).cycles_per_block(mz);
        prop_assert!(c4 <= c1);
    }
}

// --- Sparse block path: equivalence and round-trip across occupancy ------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The CSR skip-zero deconvolution is bit-identical to the dense block
    /// path at every occupancy level, and the CSR form itself round-trips
    /// the dense data exactly.
    #[test]
    fn sparse_block_deconvolution_matches_dense_across_occupancy(
        degree in 3u32..6,
        mz in 8usize..40,
        seed in 0u64..200,
        keep_every in 1usize..16,
    ) {
        let n = (1usize << degree) - 1;
        let data: Vec<u64> = (0..n * mz)
            .map(|i| {
                let m = i % mz;
                if m % keep_every == 0 {
                    ((i as u64).wrapping_mul(seed.wrapping_add(11)) % 4096) + 1
                } else {
                    0
                }
            })
            .collect();
        let csr = ims_fpga::SparseBlock::from_dense(&data, n, mz);
        prop_assert_eq!(csr.to_dense(), data.clone(), "CSR round-trip");

        let seq = MSequence::new(degree);
        let mut dense_core = DeconvCore::new(&seq, DeconvConfig::default());
        let mut sparse_core = DeconvCore::new(&seq, DeconvConfig::default());
        let dense = dense_core.deconvolve_block(&data, mz);
        let sparse = sparse_core.deconvolve_block_sparse(&csr);
        prop_assert_eq!(dense, sparse);
    }
}
