//! On-chip m/z binning: the stage that makes capture fit the FPGA.
//!
//! Experiment E4 shows the accumulation RAM for full-TOF-resolution frames
//! (511 × 2000 × 32 b, double-buffered) is an order of magnitude beyond the
//! XD1 FPGA's block RAM. The design answer is a streaming binning stage in
//! front of the accumulator: a fine→coarse index ROM folds each incoming
//! ADC word into a coarse m/z bin on the fly (II = 1), shrinking the
//! accumulation RAM by the binning factor at the cost of m/z resolution on
//! chip (the host retains full resolution only for the drift dimension it
//! actually needs in real time).

use crate::bram::{BramBudget, MemoryRequirement};
use serde::{Deserialize, Serialize};

/// Streaming fine→coarse m/z binning core.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MzBinner {
    fine_bins: usize,
    coarse_bins: usize,
    /// ROM: fine bin index → coarse bin index.
    map: Vec<u32>,
    cycles: u64,
}

impl MzBinner {
    /// Uniform binning: `fine_bins` collapsed into `coarse_bins` contiguous
    /// groups (the last group absorbs any remainder).
    ///
    /// # Panics
    /// Panics unless `1 ≤ coarse_bins ≤ fine_bins`.
    pub fn uniform(fine_bins: usize, coarse_bins: usize) -> Self {
        assert!(coarse_bins >= 1 && coarse_bins <= fine_bins, "bad binning");
        let per = fine_bins / coarse_bins;
        let map = (0..fine_bins)
            .map(|f| ((f / per).min(coarse_bins - 1)) as u32)
            .collect();
        Self {
            fine_bins,
            coarse_bins,
            map,
            cycles: 0,
        }
    }

    /// Custom binning from an explicit fine→coarse map.
    ///
    /// # Panics
    /// Panics if any entry is out of range.
    pub fn from_map(map: Vec<u32>, coarse_bins: usize) -> Self {
        assert!(
            map.iter().all(|&c| (c as usize) < coarse_bins),
            "map out of range"
        );
        Self {
            fine_bins: map.len(),
            coarse_bins,
            map,
            cycles: 0,
        }
    }

    /// Fine (input) m/z bins.
    pub fn fine_bins(&self) -> usize {
        self.fine_bins
    }

    /// Coarse (output) m/z bins.
    pub fn coarse_bins(&self) -> usize {
        self.coarse_bins
    }

    /// Clock cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Bins one full drift-major frame: `drift × fine` ADC words in,
    /// `drift × coarse` words out (saturating u32 accumulation per line).
    pub fn bin_frame(&mut self, frame: &[u32], drift_bins: usize) -> Vec<u32> {
        let mut out = Vec::new();
        self.bin_frame_into(frame.iter().copied(), drift_bins, &mut out);
        out
    }

    /// Streaming form of [`bin_frame`](Self::bin_frame): folds a drift-major
    /// word stream into a caller-owned scratch buffer (cleared and resized
    /// in place), so the per-frame hot loop neither materialises the fine
    /// frame nor allocates the coarse one. Mirrors the hardware, which sees
    /// one ADC word per clock rather than a frame-sized slice.
    pub fn bin_frame_into<I>(&mut self, words: I, drift_bins: usize, out: &mut Vec<u32>)
    where
        I: ExactSizeIterator<Item = u32>,
    {
        assert_eq!(
            words.len(),
            drift_bins * self.fine_bins,
            "frame shape mismatch"
        );
        out.clear();
        out.resize(drift_bins * self.coarse_bins, 0);
        let mut fine = 0usize; // position within the current drift row
        let mut row_base = 0usize; // start of the current coarse row
        for v in words {
            let c = row_base + self.map[fine] as usize;
            out[c] = out[c].saturating_add(v);
            fine += 1;
            if fine == self.fine_bins {
                fine = 0;
                row_base += self.coarse_bins;
            }
        }
        self.cycles += (drift_bins * self.fine_bins) as u64;
    }

    /// BRAM budget: the index ROM plus a double-buffered coarse line buffer.
    pub fn bram_budget(&self) -> BramBudget {
        let mut b = BramBudget::new();
        let idx_bits = (usize::BITS - (self.coarse_bins - 1).leading_zeros()).max(1) as u64;
        b.add(
            MemoryRequirement {
                depth: self.fine_bins as u64,
                width_bits: idx_bits,
                label: "binning index ROM",
            },
            1,
        );
        b.add(
            MemoryRequirement {
                depth: self.coarse_bins as u64,
                width_bits: 32,
                label: "coarse line buffer",
            },
            2,
        );
        b
    }

    /// Cycles to bin one frame (one fine word per clock).
    pub fn cycles_per_frame(&self, drift_bins: usize) -> u64 {
        (drift_bins * self.fine_bins) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_binning_sums_groups() {
        let mut binner = MzBinner::uniform(12, 3);
        let frame: Vec<u32> = (0..24).collect(); // 2 drift rows × 12 fine
        let out = binner.bin_frame(&frame, 2);
        assert_eq!(out.len(), 6);
        // Row 0: groups [0..4), [4..8), [8..12).
        assert_eq!(out[0], 1 + 2 + 3);
        assert_eq!(out[1], 4 + 5 + 6 + 7);
        assert_eq!(out[2], 8 + 9 + 10 + 11);
        // Row 1.
        assert_eq!(out[3], 12 + 13 + 14 + 15);
        assert_eq!(out[5], 20 + 21 + 22 + 23);
    }

    #[test]
    fn counts_are_conserved() {
        let mut binner = MzBinner::uniform(100, 7);
        let frame: Vec<u32> = (0..300).map(|i| (i * 13 % 97) as u32).collect();
        let total_in: u64 = frame.iter().map(|&v| v as u64).sum();
        let out = binner.bin_frame(&frame, 3);
        let total_out: u64 = out.iter().map(|&v| v as u64).sum();
        assert_eq!(total_in, total_out);
    }

    #[test]
    fn remainder_fine_bins_fold_into_last_group() {
        let binner = MzBinner::uniform(10, 3); // per = 3, remainder 1
        assert_eq!(binner.map[8], 2);
        assert_eq!(binner.map[9], 2); // remainder absorbed by last group
    }

    #[test]
    fn matches_software_rebin() {
        let mut binner = MzBinner::uniform(20, 4);
        let frame: Vec<u32> = (0..20).map(|i| i as u32 + 1).collect();
        let out = binner.bin_frame(&frame, 1);
        let soft = ims_signal::resample::rebin_sum(
            &frame.iter().map(|&v| v as f64).collect::<Vec<_>>(),
            5,
        );
        for (a, &b) in out
            .iter()
            .zip(soft.iter().map(|v| *v as u32).collect::<Vec<_>>().iter())
        {
            assert_eq!(*a, b);
        }
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut binner = MzBinner::uniform(2, 1);
        let out = binner.bin_frame(&[u32::MAX, 5], 1);
        assert_eq!(out[0], u32::MAX);
    }

    #[test]
    fn budget_is_tiny() {
        let binner = MzBinner::uniform(2000, 100);
        // ROM 2000×7b + 2×100×32b ≈ a couple of tiles.
        assert!(binner.bram_budget().total_tiles() <= 3);
    }

    #[test]
    fn cycle_accounting() {
        let mut binner = MzBinner::uniform(10, 2);
        let _ = binner.bin_frame(&[1; 30], 3);
        assert_eq!(binner.cycles(), 30);
        assert_eq!(binner.cycles_per_frame(3), 30);
    }

    #[test]
    #[should_panic(expected = "bad binning")]
    fn rejects_upsampling() {
        let _ = MzBinner::uniform(10, 20);
    }
}
