//! Data capture and accumulation engine.
//!
//! The first half of the paper's FPGA design: ADC words stream in (one word
//! per clock, initiation interval 1) and are folded into a
//! drift-bin × m/z-bin accumulation RAM with saturating adds. Accumulating
//! `k` PRS cycles on chip divides the host-link bandwidth requirement by
//! `k` — the architectural reason capture and accumulation live on the FPGA
//! at all.

use crate::bram::{BramBudget, MemoryRequirement};
use serde::{Deserialize, Serialize};

/// Errors from the capture engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaptureError {
    /// Frame length does not match `drift_bins × mz_bins`.
    FrameShape {
        /// Expected word count.
        expected: usize,
        /// Received word count.
        got: usize,
    },
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::FrameShape { expected, got } => {
                write!(
                    f,
                    "frame shape mismatch: expected {expected} words, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for CaptureError {}

/// Streaming accumulator over full IMS frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccumulatorCore {
    drift_bins: usize,
    mz_bins: usize,
    acc_bits: u32,
    acc: Vec<u64>,
    frames_captured: u64,
    cycles: u64,
    saturation_events: u64,
}

impl AccumulatorCore {
    /// Creates an accumulator with `acc_bits`-wide cells (≤ 48).
    pub fn new(drift_bins: usize, mz_bins: usize, acc_bits: u32) -> Self {
        assert!(drift_bins > 0 && mz_bins > 0, "empty accumulator");
        assert!((8..=48).contains(&acc_bits), "accumulator width 8..=48");
        Self {
            drift_bins,
            mz_bins,
            acc_bits,
            acc: vec![0; drift_bins * mz_bins],
            frames_captured: 0,
            cycles: 0,
            saturation_events: 0,
        }
    }

    /// Number of drift bins.
    pub fn drift_bins(&self) -> usize {
        self.drift_bins
    }

    /// Number of m/z bins.
    pub fn mz_bins(&self) -> usize {
        self.mz_bins
    }

    /// Cell width in bits (the `acc_bits` this core was built with).
    pub fn acc_bits(&self) -> u32 {
        self.acc_bits
    }

    /// Saturation ceiling of one cell.
    pub fn cell_max(&self) -> u64 {
        (1u64 << self.acc_bits) - 1
    }

    /// Captures one full IMS frame (drift-major ADC words).
    ///
    /// Consumes one clock per word (II = 1) plus a fixed 4-cycle frame
    /// header overhead.
    pub fn capture_frame(&mut self, frame: &[u32]) -> Result<(), CaptureError> {
        self.capture_frame_iter(frame.iter().copied())
    }

    /// Captures one frame from a word stream without requiring a contiguous
    /// slice — the allocation-free path for consumers that decode ADC words
    /// straight out of a wire packet (see `FramePacket::words`).
    pub fn capture_frame_iter<I>(&mut self, words: I) -> Result<(), CaptureError>
    where
        I: ExactSizeIterator<Item = u32>,
    {
        let expected = self.drift_bins * self.mz_bins;
        if words.len() != expected {
            return Err(CaptureError::FrameShape {
                expected,
                got: words.len(),
            });
        }
        let _sp = ims_obs::span_cat("accumulator", "frame");
        let ceil = self.cell_max();
        let saturated_before = self.saturation_events;
        for (cell, word) in self.acc.iter_mut().zip(words) {
            let sum = *cell + word as u64;
            if sum > ceil {
                *cell = ceil;
                self.saturation_events += 1;
            } else {
                *cell = sum;
            }
        }
        self.frames_captured += 1;
        self.cycles += expected as u64 + 4;
        // One metrics update per frame (not per cell) keeps the add loop
        // clean for the auto-vectorizer.
        ims_obs::static_counter!("accumulator.frames").incr();
        ims_obs::static_counter!("accumulator.saturation_events")
            .add(self.saturation_events - saturated_before);
        Ok(())
    }

    /// Captures one frame skipping zero ADC words — the zero-suppressed
    /// path for centroided spectra, where most cells carry no counts.
    /// Adding zero is the identity, so the accumulation RAM ends up
    /// bit-identical to [`AccumulatorCore::capture_frame`]; only the
    /// cycle model changes (a zero-suppressing front end consumes one
    /// clock per *non-zero* word plus the frame header), which is the
    /// point. Skipped words are tallied in the
    /// `accumulator.sparse_words_skipped` counter.
    pub fn capture_frame_sparse(&mut self, frame: &[u32]) -> Result<(), CaptureError> {
        let expected = self.drift_bins * self.mz_bins;
        if frame.len() != expected {
            return Err(CaptureError::FrameShape {
                expected,
                got: frame.len(),
            });
        }
        let _sp = ims_obs::span_cat("accumulator", "frame-sparse");
        let ceil = self.cell_max();
        let saturated_before = self.saturation_events;
        let mut nonzero = 0u64;
        for (cell, &word) in self.acc.iter_mut().zip(frame) {
            if word == 0 {
                continue;
            }
            nonzero += 1;
            let sum = *cell + word as u64;
            if sum > ceil {
                *cell = ceil;
                self.saturation_events += 1;
            } else {
                *cell = sum;
            }
        }
        self.frames_captured += 1;
        self.cycles += nonzero + 4;
        ims_obs::static_counter!("accumulator.frames").incr();
        ims_obs::static_counter!("accumulator.sparse_words_skipped").add(expected as u64 - nonzero);
        ims_obs::static_counter!("accumulator.saturation_events")
            .add(self.saturation_events - saturated_before);
        Ok(())
    }

    /// Fraction of accumulation cells currently non-zero, in `[0, 1]` —
    /// the quantity the accumulate stage compares against
    /// [`crate::sparse::SPARSE_OCCUPANCY_THRESHOLD`] at drain time.
    pub fn occupancy(&self) -> f64 {
        let nnz = self.acc.iter().filter(|&&v| v != 0).count();
        nnz as f64 / self.acc.len() as f64
    }

    /// Frames accumulated since the last reset.
    pub fn frames_captured(&self) -> u64 {
        self.frames_captured
    }

    /// Clock cycles consumed since the last reset.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of saturating adds observed (data-quality flag).
    pub fn saturation_events(&self) -> u64 {
        self.saturation_events
    }

    /// The accumulated matrix (drift-major).
    pub fn contents(&self) -> &[u64] {
        &self.acc
    }

    /// Drains the accumulation RAM: returns the matrix and clears state for
    /// the next block (the FPGA's double-buffered readout).
    ///
    /// Counter semantics — pinned, because sharded merge accounting relies
    /// on them (see [`crate::sharded::ShardedAccumulator`]):
    ///
    /// * `frames_captured` and `saturation_events` are **per-block**
    ///   counters: drain resets both to zero, so each block's report reads
    ///   only its own frames and saturating adds.
    /// * `cycles` is a **lifetime** counter: it keeps running across
    ///   drains, modelling a clock that never rewinds. A shard killed and
    ///   drained mid-block therefore keeps its cycle history, and a
    ///   rebuild only *adds* cycles — capture work is never un-counted.
    pub fn drain(&mut self) -> Vec<u64> {
        let out = std::mem::replace(&mut self.acc, vec![0; self.drift_bins * self.mz_bins]);
        self.frames_captured = 0;
        self.saturation_events = 0;
        out
    }

    /// BRAM budget of the accumulation RAM (double-buffered).
    pub fn bram_budget(&self) -> BramBudget {
        let mut b = BramBudget::new();
        b.add(
            MemoryRequirement {
                depth: (self.drift_bins * self.mz_bins) as u64,
                width_bits: self.acc_bits as u64,
                label: "accumulation RAM",
            },
            2, // ping-pong buffers
        );
        b
    }

    /// Cycles needed to capture one frame.
    pub fn cycles_per_frame(&self) -> u64 {
        (self.drift_bins * self.mz_bins) as u64 + 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_frames_elementwise() {
        let mut acc = AccumulatorCore::new(2, 3, 32);
        acc.capture_frame(&[1, 2, 3, 4, 5, 6]).unwrap();
        acc.capture_frame(&[10, 20, 30, 40, 50, 60]).unwrap();
        assert_eq!(acc.contents(), &[11, 22, 33, 44, 55, 66]);
        assert_eq!(acc.frames_captured(), 2);
    }

    #[test]
    fn cycle_accounting() {
        let mut acc = AccumulatorCore::new(4, 8, 24);
        acc.capture_frame(&[0; 32]).unwrap();
        assert_eq!(acc.cycles(), 36);
        assert_eq!(acc.cycles_per_frame(), 36);
    }

    #[test]
    fn saturation_clamps_and_counts() {
        let mut acc = AccumulatorCore::new(1, 1, 8);
        for _ in 0..2 {
            acc.capture_frame(&[200]).unwrap();
        }
        assert_eq!(acc.contents(), &[255]);
        assert_eq!(acc.saturation_events(), 1);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut acc = AccumulatorCore::new(2, 2, 16);
        let err = acc.capture_frame(&[1, 2, 3]).unwrap_err();
        assert_eq!(
            err,
            CaptureError::FrameShape {
                expected: 4,
                got: 3
            }
        );
        assert_eq!(acc.frames_captured(), 0);
    }

    #[test]
    fn drain_resets_for_next_block() {
        let mut acc = AccumulatorCore::new(1, 2, 16);
        acc.capture_frame(&[7, 9]).unwrap();
        let block = acc.drain();
        assert_eq!(block, vec![7, 9]);
        assert_eq!(acc.contents(), &[0, 0]);
        assert_eq!(acc.frames_captured(), 0);
        // Cycle counter keeps running across blocks.
        assert!(acc.cycles() > 0);
    }

    #[test]
    fn drain_counter_semantics_are_pinned() {
        // Regression pin for the documented drain contract: per-block
        // counters (frames_captured, saturation_events) reset; the
        // lifetime cycle counter keeps running. Sharded merge accounting
        // (kill → drain → rebuild) depends on exactly this split.
        let mut acc = AccumulatorCore::new(1, 1, 8);
        acc.capture_frame(&[200]).unwrap();
        acc.capture_frame(&[200]).unwrap();
        assert_eq!(acc.frames_captured(), 2);
        assert_eq!(acc.saturation_events(), 1);
        let cycles_before = acc.cycles();
        assert_eq!(cycles_before, 2 * (1 + 4));
        let _ = acc.drain();
        assert_eq!(acc.frames_captured(), 0, "frames reset per block");
        assert_eq!(acc.saturation_events(), 0, "saturation resets per block");
        assert_eq!(acc.cycles(), cycles_before, "cycles survive the drain");
        // And the next block accumulates cycles on top.
        acc.capture_frame(&[1]).unwrap();
        assert_eq!(acc.cycles(), cycles_before + 5);
    }

    #[test]
    fn bram_budget_scales_with_shape() {
        let small = AccumulatorCore::new(511, 100, 32).bram_budget();
        let large = AccumulatorCore::new(511, 1000, 32).bram_budget();
        assert!(large.total_tiles() > 5 * small.total_tiles());
        // 511×1000×32 bits ×2 ≈ 32.7 Mb → far beyond one chip's ~4 Mb: the
        // capture engine must bin m/z on chip, which the report surfaces.
        assert!(large.total_bits() > 30_000_000);
    }

    #[test]
    #[should_panic(expected = "accumulator width")]
    fn width_validated() {
        let _ = AccumulatorCore::new(2, 2, 64);
    }
}
