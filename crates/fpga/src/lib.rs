//! Cycle- and resource-modelled FPGA dataflow simulator.
//!
//! The paper's headline artifact is an FPGA design — hosted on a Cray XD1
//! application-acceleration blade (Xilinx Virtex-II Pro, RapidArray fabric)
//! — that performs *data capture and accumulation* plus the *PNNL-enhanced
//! Hadamard deconvolution*, with the explicit goal that "the computational
//! and memory addressing logic … be portable to an instrument-attached FPGA
//! board". This crate models exactly that contract:
//!
//! * **bit-exact arithmetic** — the datapath is integer/fixed-point
//!   ([`fixed`]); the deconvolution core produces deterministic integer
//!   results that the tests compare against the floating-point software
//!   path;
//! * **memory addressing logic** — the scatter/gather address ROMs come
//!   verbatim from `ims-prs::FastMTransform`;
//! * **resource accounting** — BRAM/DSP budgets against real device
//!   inventories ([`bram`], [`report`]);
//! * **cycle accounting** — initiation intervals and cycles/frame for the
//!   capture ([`accumulator`]) and deconvolution ([`deconv`]) engines;
//! * **host link** — a RapidArray-like bandwidth/latency model ([`dma`]).
//!
//! Nothing here executes on real hardware; the model answers the same
//! questions the paper's simulation answered — does the design fit, does it
//! keep up with the instrument in real time, and does it compute the right
//! numbers.
//!
//! # Example: capture, deconvolve, and check the budget
//!
//! ```
//! use ims_fpga::deconv::DeconvConfig;
//! use ims_fpga::{AccumulatorCore, DeconvCore, DmaLink, FpgaDevice, ResourceReport};
//! use ims_prs::MSequence;
//!
//! let seq = MSequence::new(9); // N = 511
//! let mut acc = AccumulatorCore::new(511, 100, 32);
//! acc.capture_frame(&vec![1u32; 511 * 100]).unwrap();
//! let block = acc.drain();
//!
//! let mut core = DeconvCore::new(&seq, DeconvConfig::default());
//! let deconvolved = core.deconvolve_block(&block, 100);
//! assert_eq!(deconvolved.len(), 511 * 100);
//!
//! let report = ResourceReport::evaluate(
//!     &FpgaDevice::xc2vp50(),
//!     &acc,
//!     &core,
//!     &DmaLink::rapidarray(),
//!     50,    // frames accumulated per block
//!     0.02,  // seconds per frame
//! );
//! assert!(report.viable());
//! ```

#![warn(missing_docs)]

pub mod accumulator;
pub mod binner;
pub mod bram;
pub mod deconv;
pub mod deconv_naive;
pub mod dma;
pub mod fixed;
pub mod report;
pub mod sharded;
pub mod sparse;

pub use accumulator::AccumulatorCore;
pub use binner::MzBinner;
pub use deconv::{DeconvConfig, DeconvCore};
pub use deconv_naive::{NaiveConfig, NaiveMacCore};
pub use dma::DmaLink;
pub use fixed::Fx;
pub use report::{FpgaDevice, ResourceReport};
pub use sharded::{merge_shard_parts, ShardedAccumulator};
pub use sparse::{SparseBlock, SPARSE_OCCUPANCY_THRESHOLD};
