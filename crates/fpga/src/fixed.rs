//! Parametric Q-format fixed-point arithmetic.
//!
//! `Fx<F>` holds a signed value with `F` fractional bits in an `i64`
//! (Q(63−F).F). Addition/subtraction saturate; multiplication computes in
//! `i128` with round-to-nearest, then saturates — the same semantics as a
//! DSP48 chain with saturation logic, which is what the datapath would
//! synthesise to.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Neg, Sub};

/// Signed fixed-point value with `F` fractional bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fx<const F: u32>(i64);

// Hand-written (rather than derived) because the vendored serde derive does
// not handle generic tuple structs: an `Fx` serialises as its raw word.
impl<const F: u32> Serialize for Fx<F> {
    fn serialize(&self) -> serde::Value {
        self.0.serialize()
    }
}

impl<const F: u32> Deserialize for Fx<F> {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Fx(i64::deserialize(v)?))
    }
}

impl<const F: u32> Fx<F> {
    /// Largest representable value.
    pub const MAX: Fx<F> = Fx(i64::MAX);
    /// Smallest representable value.
    pub const MIN: Fx<F> = Fx(i64::MIN);
    /// Zero.
    pub const ZERO: Fx<F> = Fx(0);

    /// One unit in the last place.
    pub fn ulp() -> f64 {
        (2.0f64).powi(-(F as i32))
    }

    /// Constructs from a raw fixed-point word.
    pub fn from_raw(raw: i64) -> Self {
        Fx(raw)
    }

    /// The raw fixed-point word.
    pub fn raw(self) -> i64 {
        self.0
    }

    /// Converts from `f64`, rounding to nearest; saturates out-of-range.
    pub fn from_f64(v: f64) -> Self {
        let scaled = v * (1u64 << F) as f64;
        if scaled >= i64::MAX as f64 {
            Self::MAX
        } else if scaled <= i64::MIN as f64 {
            Self::MIN
        } else {
            Fx(scaled.round() as i64)
        }
    }

    /// Converts from an integer.
    pub fn from_int(v: i64) -> Self {
        match v.checked_shl(F) {
            Some(raw) if raw >> F == v => Fx(raw),
            _ => {
                if v > 0 {
                    Self::MAX
                } else {
                    Self::MIN
                }
            }
        }
    }

    /// Converts to `f64`.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1u64 << F) as f64
    }

    /// Saturating addition.
    pub fn sat_add(self, rhs: Self) -> Self {
        Fx(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn sat_sub(self, rhs: Self) -> Self {
        Fx(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication with round-to-nearest (ties away from 0).
    pub fn sat_mul(self, rhs: Self) -> Self {
        let wide = self.0 as i128 * rhs.0 as i128;
        let half = 1i128 << (F - 1);
        // Arithmetic shift floors, so round the magnitude and restore the
        // sign to get symmetric round-half-away-from-zero.
        let rounded = if wide >= 0 {
            (wide + half) >> F
        } else {
            -((-wide + half) >> F)
        };
        if rounded > i64::MAX as i128 {
            Self::MAX
        } else if rounded < i64::MIN as i128 {
            Self::MIN
        } else {
            Fx(rounded as i64)
        }
    }

    /// Absolute difference from another value, in ULPs.
    pub fn ulps_from(self, rhs: Self) -> u64 {
        self.0.abs_diff(rhs.0)
    }
}

impl<const F: u32> Add for Fx<F> {
    type Output = Fx<F>;
    fn add(self, rhs: Self) -> Self {
        self.sat_add(rhs)
    }
}

impl<const F: u32> Sub for Fx<F> {
    type Output = Fx<F>;
    fn sub(self, rhs: Self) -> Self {
        self.sat_sub(rhs)
    }
}

impl<const F: u32> Mul for Fx<F> {
    type Output = Fx<F>;
    fn mul(self, rhs: Self) -> Self {
        self.sat_mul(rhs)
    }
}

impl<const F: u32> Neg for Fx<F> {
    type Output = Fx<F>;
    fn neg(self) -> Self {
        Fx(self.0.saturating_neg())
    }
}

/// The Q47.16 format used by the deconvolution output stage.
pub type Q16 = Fx<16>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_within_half_ulp() {
        for v in [0.0, 1.0, -1.0, 3.25, -1234.5678, 1e6] {
            let f = Q16::from_f64(v);
            assert!((f.to_f64() - v).abs() <= Q16::ulp() / 2.0 + 1e-12, "{v}");
        }
    }

    #[test]
    fn addition_exact_and_saturating() {
        let a = Q16::from_f64(1.5);
        let b = Q16::from_f64(2.25);
        assert_eq!((a + b).to_f64(), 3.75);
        assert_eq!(Q16::MAX + Q16::from_f64(1.0), Q16::MAX);
        assert_eq!(Q16::MIN - Q16::from_f64(1.0), Q16::MIN);
    }

    #[test]
    fn multiplication_rounds_to_nearest() {
        let a = Fx::<8>::from_f64(0.5);
        let b = Fx::<8>::from_f64(0.5);
        assert_eq!((a * b).to_f64(), 0.25);
        // 3·(1/256)·(1/256) = 3/65536 → rounds to 0 ulp? raw 3·1 = 3 >> 8
        // with rounding: (3+128)>>8 = 0 → 0.
        let tiny = Fx::<8>::from_raw(1);
        let three = Fx::<8>::from_raw(3);
        assert_eq!((tiny * three).raw(), 0);
        // Negative symmetry.
        let c = Fx::<8>::from_f64(-0.5);
        assert_eq!((a * c).to_f64(), -0.25);
    }

    #[test]
    fn from_int_saturates() {
        assert_eq!(Fx::<32>::from_int(1).to_f64(), 1.0);
        assert_eq!(Fx::<32>::from_int(i64::MAX / 2), Fx::<32>::MAX);
        assert_eq!(Fx::<32>::from_int(i64::MIN / 2), Fx::<32>::MIN);
    }

    #[test]
    fn negation() {
        let a = Q16::from_f64(2.5);
        assert_eq!((-a).to_f64(), -2.5);
        assert_eq!(-Q16::MIN, Q16::MAX); // saturating_neg
    }

    #[test]
    fn ulp_distance() {
        let a = Q16::from_raw(100);
        let b = Q16::from_raw(97);
        assert_eq!(a.ulps_from(b), 3);
    }
}
