//! Block-RAM budgeting.
//!
//! Xilinx-era block RAMs come in 18 Kb tiles configurable between 16K×1 and
//! 512×36. A memory of `depth × width` therefore needs
//! `ceil(width / tile_width(depth)) × ceil(depth / tile_depth)` tiles; for
//! budget purposes we use the standard approximation of packing by capacity
//! with a width-granularity penalty, which matches vendor map reports within
//! a tile or two for the regular, deep memories this design uses.

/// Capacity of one BRAM tile, bits (18 Kb including parity).
pub const TILE_BITS: u64 = 18 * 1024;

/// Supported tile aspect ratios (depth, width) for an 18 Kb tile.
const ASPECTS: [(u64, u64); 6] = [
    (512, 36),
    (1024, 18),
    (2048, 9),
    (4096, 4),
    (8192, 2),
    (16384, 1),
];

/// A required on-chip memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRequirement {
    /// Words stored.
    pub depth: u64,
    /// Bits per word.
    pub width_bits: u64,
    /// Descriptive label for the report.
    pub label: &'static str,
}

impl MemoryRequirement {
    /// BRAM tiles needed: best (minimum) over the supported aspect ratios.
    pub fn tiles(&self) -> u64 {
        if self.depth == 0 || self.width_bits == 0 {
            return 0;
        }
        ASPECTS
            .iter()
            .map(|&(d, w)| {
                let cols = self.width_bits.div_ceil(w);
                let rows = self.depth.div_ceil(d);
                cols * rows
            })
            .min()
            .expect("aspect table is non-empty")
    }

    /// Raw storage demand, bits.
    pub fn bits(&self) -> u64 {
        self.depth * self.width_bits
    }
}

/// Tallies tile usage across all memories of a design.
#[derive(Debug, Clone, Default)]
pub struct BramBudget {
    memories: Vec<(MemoryRequirement, u64)>,
}

impl BramBudget {
    /// Empty budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` copies of a memory.
    pub fn add(&mut self, mem: MemoryRequirement, count: u64) {
        self.memories.push((mem, count));
    }

    /// Total tiles used.
    pub fn total_tiles(&self) -> u64 {
        self.memories.iter().map(|(m, c)| m.tiles() * c).sum()
    }

    /// Total bits stored.
    pub fn total_bits(&self) -> u64 {
        self.memories.iter().map(|(m, c)| m.bits() * c).sum()
    }

    /// Per-memory breakdown `(label, copies, tiles)`.
    pub fn breakdown(&self) -> Vec<(&'static str, u64, u64)> {
        self.memories
            .iter()
            .map(|(m, c)| (m.label, *c, m.tiles() * c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tile_fits_exact_aspect() {
        let m = MemoryRequirement {
            depth: 1024,
            width_bits: 18,
            label: "t",
        };
        assert_eq!(m.tiles(), 1);
        let m2 = MemoryRequirement {
            depth: 512,
            width_bits: 36,
            label: "t",
        };
        assert_eq!(m2.tiles(), 1);
    }

    #[test]
    fn wide_memory_splits_columns() {
        // 512 deep × 72 wide = two 512×36 tiles.
        let m = MemoryRequirement {
            depth: 512,
            width_bits: 72,
            label: "t",
        };
        assert_eq!(m.tiles(), 2);
    }

    #[test]
    fn deep_memory_splits_rows() {
        // 4096 × 18: best is 4 tiles of 1024×18 (or 2048×9 ×2 cols = 4).
        let m = MemoryRequirement {
            depth: 4096,
            width_bits: 18,
            label: "t",
        };
        assert_eq!(m.tiles(), 4);
    }

    #[test]
    fn odd_sizes_round_up() {
        let m = MemoryRequirement {
            depth: 600,
            width_bits: 20,
            label: "t",
        };
        // 600 deep needs 2 rows of 512×36 (width 20 ≤ 36) → 2 tiles, or
        // 1024×18: 1 row deep enough, 2 cols → 2 tiles.
        assert_eq!(m.tiles(), 2);
    }

    #[test]
    fn budget_accumulates() {
        let mut b = BramBudget::new();
        b.add(
            MemoryRequirement {
                depth: 1024,
                width_bits: 18,
                label: "acc",
            },
            4,
        );
        b.add(
            MemoryRequirement {
                depth: 512,
                width_bits: 36,
                label: "rom",
            },
            1,
        );
        assert_eq!(b.total_tiles(), 5);
        assert_eq!(b.total_bits(), 4 * 1024 * 18 + 512 * 36);
        assert_eq!(b.breakdown().len(), 2);
    }

    #[test]
    fn zero_memory_is_free() {
        let m = MemoryRequirement {
            depth: 0,
            width_bits: 32,
            label: "t",
        };
        assert_eq!(m.tiles(), 0);
    }
}
