//! Host ↔ FPGA link model (RapidArray-like) and the frame packets the
//! hybrid pipeline streams across it.
//!
//! The Cray XD1 attached its FPGAs over the RapidArray fabric at roughly
//! 1.6 GB/s per direction with ~2 µs message latency. Whether the design is
//! viable at all hinges on one inequality: sustained frame traffic must fit
//! the link. [`DmaLink`] answers that, and [`FramePacket`] (built on
//! `bytes::Bytes` for zero-copy hand-off between pipeline threads) is the
//! unit of traffic.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Bandwidth/latency model of the host link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DmaLink {
    /// Sustained bandwidth per direction, bytes/s.
    pub bandwidth_bytes_per_s: f64,
    /// Per-transfer latency, s.
    pub latency_s: f64,
}

impl DmaLink {
    /// Cray XD1 RapidArray: ~1.6 GB/s per direction, ~1.8 µs latency.
    pub fn rapidarray() -> Self {
        Self {
            bandwidth_bytes_per_s: 1.6e9,
            latency_s: 1.8e-6,
        }
    }

    /// A PCI-X instrument-attached board (the portability target the
    /// abstract mentions): ~800 MB/s, 10 µs.
    pub fn pci_x() -> Self {
        Self {
            bandwidth_bytes_per_s: 8.0e8,
            latency_s: 1.0e-5,
        }
    }

    /// Wall time to move `bytes` once. Each call counts one (simulated)
    /// transfer in the `dma.transfers` / `dma.bytes` metrics and opens a
    /// trace span, so timelines show where link traffic happens.
    pub fn transfer_time_s(&self, bytes: usize) -> f64 {
        let _sp = ims_obs::span_cat("dma", "transfer");
        ims_obs::static_counter!("dma.transfers").incr();
        ims_obs::static_counter!("dma.bytes").add(bytes as u64);
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Highest frame rate the link sustains for a given frame size.
    pub fn sustainable_frame_rate(&self, frame_bytes: usize) -> f64 {
        1.0 / self.transfer_time_s(frame_bytes)
    }

    /// Does the link keep up with `frames_per_s` of `frame_bytes` frames?
    pub fn can_sustain(&self, frame_bytes: usize, frames_per_s: f64) -> bool {
        self.sustainable_frame_rate(frame_bytes) >= frames_per_s
    }

    /// Fraction of the link consumed by a traffic pattern (>1 ⇒ overload).
    pub fn utilization(&self, frame_bytes: usize, frames_per_s: f64) -> f64 {
        frames_per_s * self.transfer_time_s(frame_bytes)
    }
}

/// 64-bit FNV-1a over a byte slice — the integrity checksum carried by
/// checked [`FramePacket`]s. Stable across platforms (byte-order free:
/// payloads are already canonical little-endian wire bytes).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One frame of raw instrument data in flight between pipeline stages.
#[derive(Debug, Clone)]
pub struct FramePacket {
    /// Monotonic frame number.
    pub seq_no: u64,
    /// Raw little-endian `u32` ADC words, drift-major.
    pub payload: Bytes,
    /// FNV-1a checksum of `payload` taken at packing time, when the
    /// producer runs with integrity checking on (`None` on the default
    /// fast path, where no checksum is computed or verified).
    pub checksum: Option<u64>,
    /// Origin timestamp: nanoseconds since the process trace epoch when
    /// the packet was packed. End-to-end frame latency is measured
    /// against this; stages that re-pack a frame must carry it forward
    /// (see [`with_origin`](Self::with_origin)). Not part of the payload
    /// checksum — two runs of the same seed produce identical payloads
    /// with different origins.
    pub origin_ns: u64,
}

impl FramePacket {
    /// Packs ADC words into a packet (no integrity checksum — the default
    /// hot path).
    pub fn from_words(seq_no: u64, words: &[u32]) -> Self {
        Self::pack(seq_no, words, false)
    }

    /// Packs ADC words into a packet carrying an FNV-1a payload checksum,
    /// so downstream stages can detect in-flight corruption (see
    /// [`verify`](Self::verify)).
    pub fn from_words_checked(seq_no: u64, words: &[u32]) -> Self {
        Self::pack(seq_no, words, true)
    }

    fn pack(seq_no: u64, words: &[u32], checked: bool) -> Self {
        let mut buf = Vec::with_capacity(words.len() * 4);
        for w in words {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        let checksum = checked.then(|| fnv1a64(&buf));
        Self {
            seq_no,
            payload: Bytes::from(buf),
            checksum,
            origin_ns: ims_obs::trace::now_ns(),
        }
    }

    /// The frame's stable identity across the pipeline — flight-recorder
    /// events and black-box causal chains key on this.
    pub fn frame_id(&self) -> u64 {
        self.seq_no
    }

    /// Carries an earlier packet's origin timestamp onto this one —
    /// stages that re-pack a frame (e.g. after re-binning) use this so
    /// end-to-end latency still measures from first packing.
    pub fn with_origin(mut self, origin_ns: u64) -> Self {
        self.origin_ns = origin_ns;
        self
    }

    /// Integrity check: `true` when the packet carries no checksum
    /// (unchecked fast path) or the payload still matches it; `false`
    /// means the payload was corrupted after packing.
    pub fn verify(&self) -> bool {
        match self.checksum {
            Some(sum) => fnv1a64(&self.payload) == sum,
            None => true,
        }
    }

    /// Flips one payload bit *without* updating the checksum — the DMA
    /// bit-flip fault-injection hook (`bit` counts from the packet start;
    /// out-of-range indices wrap). Copies the payload, so sibling clones
    /// sharing the buffer are unaffected.
    pub fn flip_bit(&mut self, bit: usize) {
        if self.payload.is_empty() {
            return;
        }
        let bit = bit % (self.payload.len() * 8);
        let mut buf = self.payload.to_vec();
        buf[bit / 8] ^= 1 << (bit % 8);
        self.payload = Bytes::from(buf);
    }

    /// Unpacks the ADC words into a fresh `Vec`.
    ///
    /// Allocates per call; streaming consumers should iterate [`words`]
    /// instead (`FramePacket::words`), which borrows the payload.
    pub fn to_words(&self) -> Vec<u32> {
        self.words().collect()
    }

    /// Borrowed view of the ADC words: decodes little-endian `u32`s
    /// straight out of the shared payload buffer with no allocation — the
    /// zero-copy read path for per-frame hot loops.
    pub fn words(&self) -> Words<'_> {
        Words {
            chunks: self.payload.chunks_exact(4),
        }
    }

    /// Number of ADC words in the payload.
    pub fn n_words(&self) -> usize {
        self.payload.len() / 4
    }

    /// Payload size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.payload.len()
    }
}

/// Borrowed iterator over a packet's little-endian ADC words.
#[derive(Debug, Clone)]
pub struct Words<'a> {
    chunks: std::slice::ChunksExact<'a, u8>,
}

impl Iterator for Words<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        self.chunks
            .next()
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.chunks.size_hint()
    }
}

impl ExactSizeIterator for Words<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_latency() {
        let link = DmaLink::rapidarray();
        let t = link.transfer_time_s(1_600_000);
        assert!((t - (1.8e-6 + 1e-3)).abs() < 1e-9);
    }

    #[test]
    fn rapidarray_sustains_raw_ims_frames() {
        // 511 drift bins × 2000 m/z bins × 4 B ≈ 4.1 MB per frame at
        // ~15 frames/s (60 ms frames) ≈ 61 MB/s — easily sustained.
        let link = DmaLink::rapidarray();
        let frame_bytes = 511 * 2000 * 4;
        assert!(link.can_sustain(frame_bytes, 15.0));
        // But a hypothetical unaccumulated 10 kHz extraction stream is not.
        assert!(!link.can_sustain(frame_bytes, 10_000.0));
    }

    #[test]
    fn accumulation_reduces_utilization() {
        // On-chip accumulation over 50 cycles divides the frame rate by 50.
        let link = DmaLink::pci_x();
        let frame_bytes = 511 * 2000 * 4;
        let raw = link.utilization(frame_bytes, 15.0);
        let accumulated = link.utilization(frame_bytes, 15.0 / 50.0);
        assert!((raw / accumulated - 50.0).abs() < 1e-6);
    }

    #[test]
    fn packet_round_trips_words() {
        let words: Vec<u32> = (0..100).map(|i| i * 17).collect();
        let p = FramePacket::from_words(7, &words);
        assert_eq!(p.seq_no, 7);
        assert_eq!(p.frame_id(), 7);
        assert_eq!(p.len_bytes(), 400);
        assert_eq!(p.to_words(), words);
    }

    #[test]
    fn repacking_can_carry_the_origin_forward() {
        let p = FramePacket::from_words(1, &[1, 2, 3]);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let repacked = FramePacket::from_words(1, &[4, 5, 6]);
        assert!(repacked.origin_ns > p.origin_ns, "fresh pack stamps now");
        let carried = repacked.with_origin(p.origin_ns);
        assert_eq!(carried.origin_ns, p.origin_ns);
    }

    #[test]
    fn checked_packet_detects_single_bit_corruption() {
        let words: Vec<u32> = (0..64).map(|i| i * 31).collect();
        let mut p = FramePacket::from_words_checked(3, &words);
        assert!(p.checksum.is_some());
        assert!(p.verify());
        p.flip_bit(97);
        assert!(!p.verify(), "bit flip must break the checksum");
        p.flip_bit(97);
        assert!(p.verify(), "flipping back must restore it");
        // Unchecked packets always verify (nothing to check against).
        let mut q = FramePacket::from_words(3, &words);
        assert!(q.checksum.is_none());
        q.flip_bit(5);
        assert!(q.verify());
    }

    #[test]
    fn fnv1a64_is_pinned() {
        // The checksum is part of the wire contract: pin the canonical
        // FNV-1a test vectors so it never silently changes.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn packet_clone_is_cheap_shared_buffer() {
        let p = FramePacket::from_words(0, &[1, 2, 3]);
        let q = p.clone();
        // bytes::Bytes clones share the allocation.
        assert_eq!(p.payload.as_ptr(), q.payload.as_ptr());
    }
}
