//! Device inventories and the feasibility report — the E4 budget table.

use crate::accumulator::AccumulatorCore;
use crate::binner::MzBinner;
use crate::deconv::DeconvCore;
use crate::dma::DmaLink;
use serde::{Deserialize, Serialize};

/// An FPGA device inventory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Device name.
    pub name: String,
    /// 18 Kb BRAM tiles available.
    pub bram_tiles: u64,
    /// Hardware multipliers / DSP slices.
    pub dsp_slices: u64,
    /// Design clock, Hz.
    pub clock_hz: f64,
}

impl FpgaDevice {
    /// Xilinx Virtex-II Pro XC2VP50 — the Cray XD1 application FPGA.
    pub fn xc2vp50() -> Self {
        Self {
            name: "XC2VP50 (Cray XD1)".into(),
            bram_tiles: 232,
            dsp_slices: 232, // MULT18X18s
            clock_hz: 130e6,
        }
    }

    /// Xilinx Virtex-4 LX160 — the XD1's upgraded accelerator option.
    pub fn xc4vlx160() -> Self {
        Self {
            name: "XC4VLX160".into(),
            bram_tiles: 288,
            dsp_slices: 96,
            clock_hz: 200e6,
        }
    }

    /// A small instrument-attached board (portability target).
    pub fn instrument_board() -> Self {
        Self {
            name: "instrument board (V2P30)".into(),
            bram_tiles: 136,
            dsp_slices: 136,
            clock_hz: 100e6,
        }
    }
}

/// Feasibility report for a capture + deconvolution design point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceReport {
    /// Target device name.
    pub device: String,
    /// BRAM tiles used / available.
    pub bram_used: u64,
    /// BRAM tiles available.
    pub bram_available: u64,
    /// DSP slices used.
    pub dsp_used: u64,
    /// DSP slices available.
    pub dsp_available: u64,
    /// Whether the design fits the device.
    pub fits: bool,
    /// Clock cycles per processed block (capture of all frames + deconvolution).
    pub cycles_per_block: u64,
    /// Wall seconds per block at the device clock.
    pub seconds_per_block: f64,
    /// The instrument's block period (accumulated frames × frame duration).
    pub block_period_s: f64,
    /// `block_period / processing time` — ≥ 1 means real-time.
    pub realtime_margin: f64,
    /// Host-link utilisation for the block readout (≤ 1 required).
    pub link_utilization: f64,
}

impl ResourceReport {
    /// Builds the report for a design point.
    ///
    /// `frames_per_block` is how many PRS cycles are accumulated on chip
    /// before one deconvolved block is produced; `frame_duration_s` is the
    /// IMS frame period.
    pub fn evaluate(
        device: &FpgaDevice,
        acc: &AccumulatorCore,
        deconv: &DeconvCore,
        link: &DmaLink,
        frames_per_block: u64,
        frame_duration_s: f64,
    ) -> Self {
        let bram_used = acc.bram_budget().total_tiles() + deconv.bram_budget(32).total_tiles();
        let dsp_used = deconv.dsp_count();
        let fits = bram_used <= device.bram_tiles && dsp_used <= device.dsp_slices;

        let capture_cycles = acc.cycles_per_frame() * frames_per_block;
        let deconv_cycles = deconv.cycles_per_block(acc.mz_bins());
        // Capture and deconvolution are double-buffered: the block time is
        // the max of the two stages, not the sum.
        let cycles_per_block = capture_cycles.max(deconv_cycles);
        let seconds_per_block = cycles_per_block as f64 / device.clock_hz;
        let block_period_s = frames_per_block as f64 * frame_duration_s;
        let realtime_margin = block_period_s / seconds_per_block;

        // Readout traffic: one deconvolved block (i64 words halved to i32
        // after renormalisation) per block period.
        let block_bytes = acc.drift_bins() * acc.mz_bins() * 4;
        let link_utilization = link.utilization(block_bytes, 1.0 / block_period_s);

        Self {
            device: device.name.clone(),
            bram_used,
            bram_available: device.bram_tiles,
            dsp_used,
            dsp_available: device.dsp_slices,
            fits,
            cycles_per_block,
            seconds_per_block,
            block_period_s,
            realtime_margin,
            link_utilization,
        }
    }

    /// Like [`Self::evaluate`], but with a streaming m/z binning stage in
    /// front of the accumulator: frames arrive at `binner.fine_bins()` m/z
    /// resolution and are folded to the accumulator's (coarse) width on the
    /// fly. Capture is then paced by the fine word stream.
    pub fn evaluate_with_binner(
        device: &FpgaDevice,
        binner: &MzBinner,
        acc: &AccumulatorCore,
        deconv: &DeconvCore,
        link: &DmaLink,
        frames_per_block: u64,
        frame_duration_s: f64,
    ) -> Self {
        assert_eq!(
            binner.coarse_bins(),
            acc.mz_bins(),
            "binner output must match accumulator width"
        );
        let bram_used = binner.bram_budget().total_tiles()
            + acc.bram_budget().total_tiles()
            + deconv.bram_budget(32).total_tiles();
        let dsp_used = deconv.dsp_count();
        let fits = bram_used <= device.bram_tiles && dsp_used <= device.dsp_slices;

        // The fine stream paces capture (one fine word per clock).
        let capture_cycles = binner.cycles_per_frame(acc.drift_bins()) * frames_per_block;
        let deconv_cycles = deconv.cycles_per_block(acc.mz_bins());
        let cycles_per_block = capture_cycles.max(deconv_cycles);
        let seconds_per_block = cycles_per_block as f64 / device.clock_hz;
        let block_period_s = frames_per_block as f64 * frame_duration_s;
        let realtime_margin = block_period_s / seconds_per_block;
        let block_bytes = acc.drift_bins() * acc.mz_bins() * 4;
        let link_utilization = link.utilization(block_bytes, 1.0 / block_period_s);

        Self {
            device: device.name.clone(),
            bram_used,
            bram_available: device.bram_tiles,
            dsp_used,
            dsp_available: device.dsp_slices,
            fits,
            cycles_per_block,
            seconds_per_block,
            block_period_s,
            realtime_margin,
            link_utilization,
        }
    }

    /// True when the design both fits and keeps up in real time with link
    /// headroom.
    pub fn viable(&self) -> bool {
        self.fits && self.realtime_margin >= 1.0 && self.link_utilization <= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binner::MzBinner;
    use crate::deconv::DeconvConfig;
    use ims_prs::MSequence;

    fn design(mz_bins: usize, parallel: usize) -> (AccumulatorCore, DeconvCore) {
        let seq = MSequence::new(9); // N = 511
        let acc = AccumulatorCore::new(511, mz_bins, 32);
        let deconv = DeconvCore::new(
            &seq,
            DeconvConfig {
                parallel_columns: parallel,
                butterflies_per_column: 4,
                ..Default::default()
            },
        );
        (acc, deconv)
    }

    #[test]
    fn modest_design_fits_xd1_fpga() {
        // 511 × 100 m/z bins (on-chip m/z binning), 32-bit accumulators:
        // 2×(51100×32b) ≈ 3.3 Mb < 232 tiles (4.1 Mb).
        let (acc, deconv) = design(100, 4);
        let report = ResourceReport::evaluate(
            &FpgaDevice::xc2vp50(),
            &acc,
            &deconv,
            &DmaLink::rapidarray(),
            50,
            0.06,
        );
        assert!(
            report.fits,
            "bram {}/{}",
            report.bram_used, report.bram_available
        );
        assert!(
            report.realtime_margin > 1.0,
            "margin {}",
            report.realtime_margin
        );
        assert!(report.viable());
    }

    #[test]
    fn full_resolution_capture_does_not_fit() {
        // 511 × 2000 m/z bins needs ~65 Mb of accumulation RAM — an order
        // of magnitude beyond the chip. The report must say so.
        let (acc, deconv) = design(2000, 4);
        let report = ResourceReport::evaluate(
            &FpgaDevice::xc2vp50(),
            &acc,
            &deconv,
            &DmaLink::rapidarray(),
            50,
            0.06,
        );
        assert!(!report.fits);
        assert!(!report.viable());
    }

    #[test]
    fn parallelism_buys_realtime_margin() {
        let (acc, d1) = design(100, 1);
        let (_, d8) = design(100, 8);
        let link = DmaLink::rapidarray();
        let dev = FpgaDevice::xc4vlx160();
        let r1 = ResourceReport::evaluate(&dev, &acc, &d1, &link, 50, 0.06);
        let r8 = ResourceReport::evaluate(&dev, &acc, &d8, &link, 50, 0.06);
        assert!(r8.realtime_margin >= r1.realtime_margin);
    }

    #[test]
    fn binned_full_resolution_capture_becomes_viable() {
        // Raw 2000-bin capture does not fit (see the other test); with an
        // on-chip 2000→100 binner the same input stream fits and keeps up.
        let seq = MSequence::new(9);
        let binner = MzBinner::uniform(2000, 100);
        let acc = AccumulatorCore::new(511, 100, 32);
        let deconv = DeconvCore::new(&seq, DeconvConfig::default());
        let report = ResourceReport::evaluate_with_binner(
            &FpgaDevice::xc2vp50(),
            &binner,
            &acc,
            &deconv,
            &DmaLink::rapidarray(),
            50,
            0.06,
        );
        assert!(
            report.fits,
            "bram {}/{}",
            report.bram_used, report.bram_available
        );
        assert!(report.viable(), "margin {}", report.realtime_margin);
        // The fine stream paces capture: 20x the coarse-only cycle count.
        let coarse_only = ResourceReport::evaluate(
            &FpgaDevice::xc2vp50(),
            &acc,
            &deconv,
            &DmaLink::rapidarray(),
            50,
            0.06,
        );
        assert!(report.cycles_per_block > 10 * coarse_only.cycles_per_block);
    }

    #[test]
    fn link_utilization_reported() {
        let (acc, deconv) = design(100, 4);
        let report = ResourceReport::evaluate(
            &FpgaDevice::xc2vp50(),
            &acc,
            &deconv,
            &DmaLink::pci_x(),
            50,
            0.06,
        );
        assert!(report.link_utilization > 0.0 && report.link_utilization < 1.0);
    }
}
