//! CSR-style sparse accumulated blocks.
//!
//! Real centroided TOF spectra are mostly empty: outside chromatographic
//! peaks the accumulation RAM holds long runs of zero cells, and a zero
//! m/z column deconvolves to a constant response that does not depend on
//! the data at all. This module gives the datapath a representation that
//! exploits both facts without giving up bit-exactness:
//!
//! * [`SparseBlock`] stores one accumulated drift × m/z block as
//!   per-drift-row runs of consecutive non-zero `(mz, value)` cells —
//!   CSR with run-length-coded column indices, the natural output of a
//!   zero-suppressing capture engine;
//! * the accumulate stage builds it at drain time only when the block's
//!   cell occupancy is below [`SPARSE_OCCUPANCY_THRESHOLD`] (dense
//!   fallback above — a dense block in sparse clothing costs more, not
//!   less);
//! * the deconvolution cores consume it by solving only the *occupied*
//!   columns and splatting a once-computed zero-column response into the
//!   rest ([`crate::DeconvCore::deconvolve_block_sparse`]). Every
//!   occupied column runs the exact dense per-column pipeline, so the
//!   output is bit-identical to the dense path.

use serde::{Deserialize, Serialize};

/// Cell-occupancy threshold below which the accumulate stage hands the
/// deconvolver a sparse block. At 25 % occupancy the CSR form is already
/// ~2× smaller than dense (runs + values vs. one word per cell) and the
/// zero-column skip starts to win; above it the run bookkeeping costs
/// more than the zeros it skips.
pub const SPARSE_OCCUPANCY_THRESHOLD: f64 = 0.25;

/// One run of consecutive non-zero cells inside a drift row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Run {
    /// First m/z column of the run.
    pub start: u32,
    /// Number of consecutive non-zero cells.
    pub len: u32,
}

/// A drift × m/z block of accumulated counts in CSR-of-runs form.
///
/// Invariants (upheld by the constructors): runs within a row are sorted
/// by `start`, non-overlapping, non-adjacent (a gap of at least one zero
/// cell separates them — adjacent runs are coalesced), and every stored
/// value is non-zero. `values` concatenates the cells of all runs in row
/// order, so `values.len()` is the block's non-zero count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SparseBlock {
    drift_bins: usize,
    mz_bins: usize,
    /// CSR row pointers into `runs`: row `d` owns
    /// `runs[row_ptr[d] .. row_ptr[d + 1]]`.
    row_ptr: Vec<u32>,
    runs: Vec<Run>,
    /// Non-zero cell values, concatenated in run order.
    values: Vec<u64>,
}

impl SparseBlock {
    /// Compresses a dense drift-major block.
    ///
    /// # Panics
    /// Panics if `data.len() != drift_bins * mz_bins`.
    pub fn from_dense(data: &[u64], drift_bins: usize, mz_bins: usize) -> Self {
        assert_eq!(data.len(), drift_bins * mz_bins, "block shape mismatch");
        let mut row_ptr = Vec::with_capacity(drift_bins + 1);
        let mut runs = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for d in 0..drift_bins {
            let row = &data[d * mz_bins..(d + 1) * mz_bins];
            let mut c = 0;
            while c < mz_bins {
                if row[c] == 0 {
                    c += 1;
                    continue;
                }
                let start = c;
                while c < mz_bins && row[c] != 0 {
                    c += 1;
                }
                runs.push(Run {
                    start: start as u32,
                    len: (c - start) as u32,
                });
                values.extend_from_slice(&row[start..c]);
            }
            row_ptr.push(u32::try_from(runs.len()).expect("run count fits u32"));
        }
        Self {
            drift_bins,
            mz_bins,
            row_ptr,
            runs,
            values,
        }
    }

    /// Compresses a dense block only when its occupancy is below
    /// `threshold`; returns `None` (dense fallback) otherwise. This is
    /// the accumulate-time decision point.
    pub fn from_dense_below(
        data: &[u64],
        drift_bins: usize,
        mz_bins: usize,
        threshold: f64,
    ) -> Option<Self> {
        assert_eq!(data.len(), drift_bins * mz_bins, "block shape mismatch");
        let nnz = data.iter().filter(|&&v| v != 0).count();
        if (nnz as f64) >= threshold * data.len() as f64 {
            return None;
        }
        Some(Self::from_dense(data, drift_bins, mz_bins))
    }

    /// Expands back to a dense drift-major block. Exact inverse of
    /// [`SparseBlock::from_dense`].
    pub fn to_dense(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.drift_bins * self.mz_bins];
        let mut v = 0;
        for d in 0..self.drift_bins {
            let row = &mut out[d * self.mz_bins..(d + 1) * self.mz_bins];
            for run in self.row_runs(d) {
                let (s, l) = (run.start as usize, run.len as usize);
                row[s..s + l].copy_from_slice(&self.values[v..v + l]);
                v += l;
            }
        }
        out
    }

    /// Number of drift rows.
    pub fn drift_bins(&self) -> usize {
        self.drift_bins
    }

    /// Number of m/z columns.
    pub fn mz_bins(&self) -> usize {
        self.mz_bins
    }

    /// Number of non-zero cells.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of cells that are non-zero, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.nnz() as f64 / (self.drift_bins * self.mz_bins) as f64
    }

    /// The runs of drift row `d`.
    pub fn row_runs(&self, d: usize) -> &[Run] {
        &self.runs[self.row_ptr[d] as usize..self.row_ptr[d + 1] as usize]
    }

    /// Marks each m/z column that holds at least one non-zero cell.
    pub fn occupied_columns(&self) -> Vec<bool> {
        let mut occ = vec![false; self.mz_bins];
        for run in &self.runs {
            occ[run.start as usize..run.start as usize + run.len as usize].fill(true);
        }
        occ
    }

    /// Gathers the occupied columns into a dense drift-major `drift_bins
    /// × k` matrix (`k` = occupied-column count), returning the matrix
    /// and the original m/z index of each compacted column. The
    /// deconvolution cores solve this compact block with the ordinary
    /// panel kernels — each column carries its exact dense contents, so
    /// per-column results are bit-identical to the dense path.
    pub fn compact_occupied(&self) -> (Vec<u64>, Vec<u32>) {
        let occ = self.occupied_columns();
        let cols: Vec<u32> = (0..self.mz_bins as u32)
            .filter(|&c| occ[c as usize])
            .collect();
        // colmap[c] = compact index of m/z column c (occupied only).
        let mut colmap = vec![u32::MAX; self.mz_bins];
        for (i, &c) in cols.iter().enumerate() {
            colmap[c as usize] = i as u32;
        }
        let k = cols.len();
        let mut compact = vec![0u64; self.drift_bins * k];
        let mut v = 0;
        for d in 0..self.drift_bins {
            let row = &mut compact[d * k..(d + 1) * k];
            for run in self.row_runs(d) {
                for off in 0..run.len as usize {
                    row[colmap[run.start as usize + off] as usize] = self.values[v];
                    v += 1;
                }
            }
        }
        (compact, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(drift: usize, mz: usize, fill: &[(usize, usize, u64)]) -> Vec<u64> {
        let mut d = vec![0u64; drift * mz];
        for &(r, c, v) in fill {
            d[r * mz + c] = v;
        }
        d
    }

    #[test]
    fn round_trips_dense() {
        let data = sample(3, 8, &[(0, 1, 5), (0, 2, 6), (1, 7, 9), (2, 0, 1)]);
        let s = SparseBlock::from_dense(&data, 3, 8);
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.to_dense(), data);
        // Adjacent cells coalesce into one run.
        assert_eq!(s.row_runs(0), &[Run { start: 1, len: 2 }]);
    }

    #[test]
    fn empty_and_full_rows() {
        let mut data = vec![0u64; 2 * 4];
        let s = SparseBlock::from_dense(&data, 2, 4);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.to_dense(), data);
        data.iter_mut().for_each(|v| *v = 3);
        let s = SparseBlock::from_dense(&data, 2, 4);
        assert_eq!(s.row_runs(0), &[Run { start: 0, len: 4 }]);
        assert_eq!(s.to_dense(), data);
        assert!((s.occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_gates_construction() {
        let data = sample(2, 10, &[(0, 3, 1), (1, 4, 2)]); // 10% occupied
        assert!(SparseBlock::from_dense_below(&data, 2, 10, 0.25).is_some());
        assert!(SparseBlock::from_dense_below(&data, 2, 10, 0.05).is_none());
    }

    #[test]
    fn occupied_columns_and_compaction() {
        let data = sample(3, 6, &[(0, 1, 5), (1, 1, 7), (2, 4, 2)]);
        let s = SparseBlock::from_dense(&data, 3, 6);
        assert_eq!(
            s.occupied_columns(),
            vec![false, true, false, false, true, false]
        );
        let (compact, cols) = s.compact_occupied();
        assert_eq!(cols, vec![1, 4]);
        // Column 1 → compact column 0; column 4 → compact column 1.
        assert_eq!(compact, vec![5, 0, 7, 0, 0, 2]);
    }
}
