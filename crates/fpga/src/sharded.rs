//! The m/z-range-sharded accumulation engine.
//!
//! The paper's monolithic drift × m/z accumulation RAM is split here into
//! `N` independent [`AccumulatorCore`] shards, each owning a contiguous
//! range of m/z columns with its own saturation and cycle counters — the
//! scale-out shape of a multi-bank capture engine, and the resilience
//! shape behind the `shard.kill` chaos site: one bank can be lost and
//! rebuilt (or zeroed) without touching its siblings.
//!
//! Correctness contract, pinned by proptests: because the column ranges
//! are disjoint and saturating adds are per-cell, the merged drain is
//! **bit-identical** to a monolithic [`AccumulatorCore`] fed the same
//! frames in the same order — for any shard count, dense or sparse
//! capture — and the merge itself is order-independent (shards can be
//! scattered back in any order).

use crate::accumulator::{AccumulatorCore, CaptureError};

/// An accumulator split into m/z-range shards (see the module docs).
#[derive(Debug, Clone)]
pub struct ShardedAccumulator {
    drift_bins: usize,
    mz_bins: usize,
    shards: Vec<AccumulatorCore>,
    /// Column bounds: shard `s` owns columns `bounds[s] .. bounds[s + 1]`.
    bounds: Vec<usize>,
    /// Shards currently marked lost (killed and not yet revived); a lost
    /// shard captures nothing and drains zeros.
    lost: Vec<bool>,
    /// Reused full-frame gather buffer for the multi-shard capture path.
    frame_scratch: Vec<u32>,
    /// Reused per-shard column-slice buffer.
    shard_scratch: Vec<u32>,
}

impl ShardedAccumulator {
    /// Builds `n_shards` independent shards over `mz_bins` columns
    /// (clamped to `1..=mz_bins`), split into contiguous near-equal
    /// ranges: the first `mz_bins % n` shards take one extra column.
    pub fn new(drift_bins: usize, mz_bins: usize, acc_bits: u32, n_shards: usize) -> Self {
        let n = n_shards.clamp(1, mz_bins.max(1));
        let (base, rem) = (mz_bins / n, mz_bins % n);
        let mut bounds = Vec::with_capacity(n + 1);
        let mut at = 0usize;
        bounds.push(0);
        for s in 0..n {
            at += base + usize::from(s < rem);
            bounds.push(at);
        }
        let shards = (0..n)
            .map(|s| AccumulatorCore::new(drift_bins, bounds[s + 1] - bounds[s], acc_bits))
            .collect();
        Self {
            drift_bins,
            mz_bins,
            shards,
            bounds,
            lost: vec![false; n],
            frame_scratch: Vec::new(),
            shard_scratch: Vec::new(),
        }
    }

    /// Wraps an existing monolithic core as a single-shard engine,
    /// preserving its accumulated contents and counters — the refactor
    /// seam that keeps every previous `AccumulatorCore` call site
    /// bit-identical (one shard delegates straight to the core).
    pub fn from_core(core: AccumulatorCore) -> Self {
        let (drift, mz) = (core.drift_bins(), core.mz_bins());
        Self {
            drift_bins: drift,
            mz_bins: mz,
            bounds: vec![0, mz],
            lost: vec![false],
            shards: vec![core],
            frame_scratch: Vec::new(),
            shard_scratch: Vec::new(),
        }
    }

    /// Number of drift bins.
    pub fn drift_bins(&self) -> usize {
        self.drift_bins
    }

    /// Total m/z bins across all shards.
    pub fn mz_bins(&self) -> usize {
        self.mz_bins
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cell width in bits (shared by every shard).
    pub fn acc_bits(&self) -> u32 {
        self.shards[0].acc_bits()
    }

    /// The m/z column range `[lo, hi)` owned by shard `s`.
    pub fn shard_range(&self, s: usize) -> (usize, usize) {
        (self.bounds[s], self.bounds[s + 1])
    }

    /// Is shard `s` currently marked lost?
    pub fn is_lost(&self, s: usize) -> bool {
        self.lost[s]
    }

    /// Shards currently marked lost.
    pub fn lost_count(&self) -> usize {
        self.lost.iter().filter(|&&l| l).count()
    }

    /// Captures one full drift-major frame, splitting it across the
    /// shards' column ranges. Lost shards are skipped (their columns are
    /// simply not accumulated). With one shard this delegates straight to
    /// [`AccumulatorCore::capture_frame_iter`] — the allocation-free fast
    /// path, bit- and cycle-identical to the monolithic engine.
    pub fn capture_frame_iter<I>(&mut self, words: I) -> Result<(), CaptureError>
    where
        I: ExactSizeIterator<Item = u32>,
    {
        let expected = self.drift_bins * self.mz_bins;
        if words.len() != expected {
            return Err(CaptureError::FrameShape {
                expected,
                got: words.len(),
            });
        }
        if self.shards.len() == 1 {
            if self.lost[0] {
                return Ok(());
            }
            return self.shards[0].capture_frame_iter(words);
        }
        self.frame_scratch.clear();
        self.frame_scratch.extend(words);
        for s in 0..self.shards.len() {
            if self.lost[s] {
                continue;
            }
            self.gather_shard_columns(s);
            let scratch = std::mem::take(&mut self.shard_scratch);
            self.shards[s].capture_frame(&scratch)?;
            self.shard_scratch = scratch;
        }
        Ok(())
    }

    /// Captures one frame from a slice (see
    /// [`capture_frame_iter`](Self::capture_frame_iter)).
    pub fn capture_frame(&mut self, frame: &[u32]) -> Result<(), CaptureError> {
        self.capture_frame_iter(frame.iter().copied())
    }

    /// Zero-suppressed capture: each shard takes the sparse path over its
    /// column slice (see [`AccumulatorCore::capture_frame_sparse`]), so
    /// per-shard cycle accounting counts non-zero words plus the frame
    /// header. Contents stay bit-identical to the dense path.
    pub fn capture_frame_sparse(&mut self, frame: &[u32]) -> Result<(), CaptureError> {
        let expected = self.drift_bins * self.mz_bins;
        if frame.len() != expected {
            return Err(CaptureError::FrameShape {
                expected,
                got: frame.len(),
            });
        }
        if self.shards.len() == 1 {
            if self.lost[0] {
                return Ok(());
            }
            return self.shards[0].capture_frame_sparse(frame);
        }
        self.frame_scratch.clear();
        self.frame_scratch.extend_from_slice(frame);
        for s in 0..self.shards.len() {
            if self.lost[s] {
                continue;
            }
            self.gather_shard_columns(s);
            let scratch = std::mem::take(&mut self.shard_scratch);
            self.shards[s].capture_frame_sparse(&scratch)?;
            self.shard_scratch = scratch;
        }
        Ok(())
    }

    /// Re-folds one full frame into shard `s` only — the recovery path
    /// that rebuilds a revived shard from the capture log. Other shards
    /// are untouched, so replaying the block's frames through this
    /// restores the shard's contents, frame count, and saturation events
    /// bit-identically (drain keeps cycles, so rebuild work only adds).
    pub fn rebuild_frame(&mut self, s: usize, frame: &[u32]) -> Result<(), CaptureError> {
        let expected = self.drift_bins * self.mz_bins;
        if frame.len() != expected {
            return Err(CaptureError::FrameShape {
                expected,
                got: frame.len(),
            });
        }
        self.frame_scratch.clear();
        self.frame_scratch.extend_from_slice(frame);
        self.gather_shard_columns(s);
        let scratch = std::mem::take(&mut self.shard_scratch);
        let out = self.shards[s].capture_frame(&scratch);
        self.shard_scratch = scratch;
        out
    }

    /// Copies shard `s`'s column slice of `frame_scratch` into
    /// `shard_scratch` (drift-major, shard-width rows).
    fn gather_shard_columns(&mut self, s: usize) {
        let (lo, hi) = (self.bounds[s], self.bounds[s + 1]);
        self.shard_scratch.clear();
        self.shard_scratch.reserve(self.drift_bins * (hi - lo));
        for d in 0..self.drift_bins {
            self.shard_scratch.extend_from_slice(
                &self.frame_scratch[d * self.mz_bins + lo..d * self.mz_bins + hi],
            );
        }
    }

    /// Kills shard `s`: its partial accumulation is drained away (cycles
    /// survive, per the [`AccumulatorCore::drain`] contract) and the shard
    /// is marked lost — it captures nothing until revived. Returns the
    /// shard's m/z column range, the blast radius a report can blame.
    pub fn kill(&mut self, s: usize) -> (usize, usize) {
        let _ = self.shards[s].drain();
        self.lost[s] = true;
        self.shard_range(s)
    }

    /// Revives a lost shard (empty; rebuild via
    /// [`rebuild_frame`](Self::rebuild_frame)).
    pub fn revive(&mut self, s: usize) {
        self.lost[s] = false;
    }

    /// Sum of per-shard saturating-add events for the current block.
    pub fn saturation_events(&self) -> u64 {
        self.shards.iter().map(|c| c.saturation_events()).sum()
    }

    /// Sum of per-shard lifetime clock cycles. Each shard is its own
    /// engine with its own 4-cycle frame-header overhead, so an `N`-shard
    /// capture costs `N × 4` header cycles per frame — with one shard this
    /// equals the monolithic model exactly.
    pub fn cycles(&self) -> u64 {
        self.shards.iter().map(|c| c.cycles()).sum()
    }

    /// Frames captured into shard `s` since its last drain.
    pub fn shard_frames_captured(&self, s: usize) -> u64 {
        self.shards[s].frames_captured()
    }

    /// Drains every shard and returns `(column range, shard matrix)`
    /// parts — the order-independent merge inputs (see
    /// [`merge_shard_parts`]). Lost shards contribute their (all-zero)
    /// drained contents and are revived for the next block.
    pub fn drain_parts(&mut self) -> Vec<((usize, usize), Vec<u64>)> {
        let parts = (0..self.shards.len())
            .map(|s| (self.shard_range(s), self.shards[s].drain()))
            .collect();
        self.lost.fill(false);
        parts
    }

    /// Drains all shards and merges them back into one monolithic
    /// drift-major matrix — bit-identical to what a monolithic
    /// [`AccumulatorCore`] fed the same frames would drain. Lost shards
    /// read back as zeros and are revived for the next block.
    pub fn drain_merged(&mut self) -> Vec<u64> {
        let (drift, mz) = (self.drift_bins, self.mz_bins);
        merge_shard_parts(drift, mz, &self.drain_parts())
    }
}

/// Scatters drained shard parts back into one drift-major matrix. The
/// column ranges are disjoint, so the merge is deterministic and
/// order-independent: any permutation of `parts` produces the identical
/// output — the property that lets shards drain concurrently in any
/// completion order.
pub fn merge_shard_parts(
    drift_bins: usize,
    mz_bins: usize,
    parts: &[((usize, usize), Vec<u64>)],
) -> Vec<u64> {
    let mut out = vec![0u64; drift_bins * mz_bins];
    for ((lo, hi), data) in parts {
        let width = hi - lo;
        debug_assert_eq!(data.len(), drift_bins * width, "shard part shape");
        for d in 0..drift_bins {
            out[d * mz_bins + lo..d * mz_bins + hi]
                .copy_from_slice(&data[d * width..(d + 1) * width]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(drift: usize, mz: usize, salt: u32) -> Vec<u32> {
        (0..drift * mz)
            .map(|i| (i as u32).wrapping_mul(2654435761).wrapping_add(salt) % 97)
            .collect()
    }

    #[test]
    fn shard_ranges_cover_columns_contiguously() {
        for (mz, n) in [(60, 4), (7, 3), (5, 8), (1, 1), (10, 10)] {
            let acc = ShardedAccumulator::new(3, mz, 16, n);
            let mut at = 0;
            for s in 0..acc.shard_count() {
                let (lo, hi) = acc.shard_range(s);
                assert_eq!(lo, at, "range gap at shard {s}");
                assert!(hi > lo, "empty shard {s}");
                at = hi;
            }
            assert_eq!(at, mz, "ranges must cover all columns");
            assert!(acc.shard_count() <= mz, "more shards than columns");
        }
    }

    #[test]
    fn merged_drain_matches_monolithic_bit_for_bit() {
        let (drift, mz) = (5, 13);
        let mut mono = AccumulatorCore::new(drift, mz, 8);
        let mut sharded = ShardedAccumulator::new(drift, mz, 8, 4);
        for k in 0..6u32 {
            let f = frame(drift, mz, k);
            mono.capture_frame(&f).unwrap();
            sharded.capture_frame(&f).unwrap();
        }
        assert_eq!(sharded.saturation_events(), mono.saturation_events());
        assert_eq!(sharded.drain_merged(), mono.drain());
    }

    #[test]
    fn merge_is_order_independent() {
        let (drift, mz) = (4, 11);
        let mut acc = ShardedAccumulator::new(drift, mz, 16, 3);
        for k in 0..3u32 {
            acc.capture_frame(&frame(drift, mz, k)).unwrap();
        }
        let parts = acc.drain_parts();
        let forward = merge_shard_parts(drift, mz, &parts);
        let mut reversed = parts.clone();
        reversed.reverse();
        assert_eq!(merge_shard_parts(drift, mz, &reversed), forward);
        let mut rotated = parts.clone();
        rotated.rotate_left(1);
        assert_eq!(merge_shard_parts(drift, mz, &rotated), forward);
    }

    #[test]
    fn killed_shard_drains_zeros_and_revives_on_drain() {
        let (drift, mz) = (2, 8);
        let mut acc = ShardedAccumulator::new(drift, mz, 16, 4);
        acc.capture_frame(&vec![5u32; drift * mz]).unwrap();
        let (lo, hi) = acc.kill(1);
        assert!(acc.is_lost(1));
        assert_eq!(acc.lost_count(), 1);
        // Captures after the kill skip the lost shard.
        acc.capture_frame(&vec![3u32; drift * mz]).unwrap();
        let merged = acc.drain_merged();
        for d in 0..drift {
            for c in 0..mz {
                let expect = if (lo..hi).contains(&c) { 0 } else { 8 };
                assert_eq!(merged[d * mz + c], expect, "cell ({d}, {c})");
            }
        }
        // Drain revives every shard for the next block.
        assert_eq!(acc.lost_count(), 0);
        acc.capture_frame(&vec![1u32; drift * mz]).unwrap();
        assert!(acc.drain_merged().iter().all(|&v| v == 1));
    }

    #[test]
    fn rebuild_restores_killed_shard_exactly() {
        let (drift, mz) = (3, 10);
        let frames: Vec<Vec<u32>> = (0..4).map(|k| frame(drift, mz, k)).collect();
        let mut mono = AccumulatorCore::new(drift, mz, 8);
        let mut acc = ShardedAccumulator::new(drift, mz, 8, 3);
        for f in &frames {
            mono.capture_frame(f).unwrap();
            acc.capture_frame(f).unwrap();
        }
        // Kill shard 2 mid-block, then rebuild it from the frame history.
        acc.kill(2);
        acc.revive(2);
        for f in &frames {
            acc.rebuild_frame(2, f).unwrap();
        }
        assert_eq!(acc.shard_frames_captured(2), frames.len() as u64);
        assert_eq!(acc.saturation_events(), mono.saturation_events());
        assert_eq!(acc.drain_merged(), mono.drain());
    }

    #[test]
    fn single_shard_is_cycle_identical_to_monolithic() {
        let (drift, mz) = (4, 9);
        let mut mono = AccumulatorCore::new(drift, mz, 32);
        let mut one = ShardedAccumulator::new(drift, mz, 32, 1);
        let f = frame(drift, mz, 3);
        mono.capture_frame(&f).unwrap();
        one.capture_frame(&f).unwrap();
        mono.capture_frame_sparse(&f).unwrap();
        one.capture_frame_sparse(&f).unwrap();
        assert_eq!(one.cycles(), mono.cycles());
        assert_eq!(one.drain_merged(), mono.drain());
    }

    #[test]
    fn from_core_preserves_accumulated_state() {
        let mut core = AccumulatorCore::new(2, 3, 16);
        core.capture_frame(&[1, 2, 3, 4, 5, 6]).unwrap();
        let cycles = core.cycles();
        let mut acc = ShardedAccumulator::from_core(core);
        assert_eq!(acc.shard_count(), 1);
        assert_eq!(acc.cycles(), cycles);
        assert_eq!(acc.drain_merged(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn shape_mismatch_rejected_before_any_shard_mutates() {
        let mut acc = ShardedAccumulator::new(2, 4, 16, 2);
        let err = acc.capture_frame(&[1, 2, 3]).unwrap_err();
        assert_eq!(
            err,
            CaptureError::FrameShape {
                expected: 8,
                got: 3
            }
        );
        assert!(acc.drain_merged().iter().all(|&v| v == 0));
    }
}
