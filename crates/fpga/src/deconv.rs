//! The FPGA deconvolution core.
//!
//! Implements the fast m-sequence (Hadamard) inverse on the integer
//! datapath: scatter through the LFSR-state address ROM, an in-place
//! integer Walsh–Hadamard butterfly, gather through the mask address ROM,
//! and a final fixed-point scale by `−2/(N+1)`. All arithmetic is exact
//! integer until the single rounding in the output scaler, so results are
//! bit-deterministic — the property that lets the hybrid pipeline verify
//! the FPGA component against the software component exactly.

use crate::bram::{BramBudget, MemoryRequirement};
use ims_prs::{FastMTransform, MSequence};
use serde::{Deserialize, Serialize};

/// Which forward model the data came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Convention {
    /// `y[i] = Σ_j a[i+j]·x[j]` (simplex/correlation indexing).
    Correlation,
    /// `y[i] = Σ_j a[i−j]·x[j]` (physical convolution — gate fires at
    /// `i − j`, ion arrives at `i`). This is what the instrument produces.
    Convolution,
}

/// Parallelism/precision configuration of the core.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DeconvConfig {
    /// Column engines running concurrently (one m/z column each).
    pub parallel_columns: usize,
    /// Butterfly ALUs per column engine.
    pub butterflies_per_column: usize,
    /// Fractional bits of the fixed-point output.
    pub output_frac_bits: u32,
    /// Forward-model convention of the incoming data.
    pub convention: Convention,
}

impl Default for DeconvConfig {
    fn default() -> Self {
        Self {
            parallel_columns: 4,
            butterflies_per_column: 4,
            output_frac_bits: 16,
            convention: Convention::Convolution,
        }
    }
}

/// The deconvolution engine for one fixed gate sequence.
#[derive(Debug, Clone)]
pub struct DeconvCore {
    transform: FastMTransform,
    config: DeconvConfig,
    cycles: u64,
}

impl DeconvCore {
    /// Builds the core (burns the address ROMs) for an m-sequence.
    pub fn new(seq: &MSequence, config: DeconvConfig) -> Self {
        assert!(config.parallel_columns >= 1);
        assert!(config.butterflies_per_column >= 1);
        assert!((4..=30).contains(&config.output_frac_bits));
        Self {
            transform: FastMTransform::new(seq),
            config,
            cycles: 0,
        }
    }

    /// Sequence length `N`.
    pub fn len(&self) -> usize {
        self.transform.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The configuration.
    pub fn config(&self) -> &DeconvConfig {
        &self.config
    }

    /// Clock cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Deconvolves one m/z column of accumulated counts; returns raw
    /// fixed-point words with `output_frac_bits` fractional bits.
    ///
    /// Exact integer pipeline:
    /// 1. scatter `y[k] → buf[states[k]]` (address ROM);
    /// 2. integer FWHT over `M = N+1` entries (adds/subs only, bit growth
    ///    `log2 M`);
    /// 3. gather `c[j] = buf[masks[j]]` (address ROM);
    /// 4. scale: `x̂ = −2·c/(N+1)` evaluated as a rounded `i128` product.
    pub fn deconvolve_column(&self, y: &[u64]) -> Vec<i64> {
        let n = self.len();
        assert_eq!(y.len(), n, "column length mismatch");
        let m = n + 1;
        // Scatter.
        let mut buf = vec![0i64; m];
        for (k, &addr) in self.transform.scatter_addresses().iter().enumerate() {
            buf[addr as usize] = y[k] as i64;
        }
        // Integer FWHT.
        let mut h = 1usize;
        while h < m {
            for block in (0..m).step_by(h * 2) {
                for i in block..block + h {
                    let (a, b) = (buf[i], buf[i + h]);
                    buf[i] = a + b;
                    buf[i + h] = a - b;
                }
            }
            h *= 2;
        }
        // Gather + scale. x̂[j] = −2·c[σ(j)]/(N+1), with σ the identity for
        // correlation data and the index reversal for convolution data.
        let f = self.config.output_frac_bits;
        let masks = self.transform.gather_addresses();
        let scale_num = -(2i128 << f);
        let denom = (n + 1) as i128;
        (0..n)
            .map(|j| {
                let lag = match self.config.convention {
                    Convention::Correlation => j,
                    Convention::Convolution => (n - j) % n,
                };
                let c = buf[masks[lag] as usize] as i128;
                let wide = scale_num * c;
                // Round to nearest, ties away from zero.
                let half = denom / 2;
                let rounded = if wide >= 0 {
                    (wide + half) / denom
                } else {
                    (wide - half) / denom
                };
                rounded as i64
            })
            .collect()
    }

    /// Deconvolves a panel of `width` adjacent m/z columns at once.
    ///
    /// `panel` holds `N × width` accumulated counts in row-major order
    /// (`panel[d * width + c]`); the result lands in `out` with the same
    /// shape. `work` is the reusable FWHT working RAM (grows to
    /// `(N+1) × width` and is then reused allocation-free). The datapath is
    /// the exact integer pipeline of
    /// [`DeconvCore::deconvolve_column`] run as contiguous row sweeps, so
    /// each column's output is identical to the scalar call — integer
    /// arithmetic leaves no room for reassociation drift.
    ///
    /// # Panics
    /// Panics if `width` is zero or the panel/out shapes mismatch.
    pub fn deconvolve_panel_into(
        &self,
        panel: &[u64],
        width: usize,
        out: &mut [i64],
        work: &mut Vec<i64>,
    ) {
        let n = self.len();
        assert!(width > 0, "panel width must be positive");
        assert_eq!(panel.len(), n * width, "panel shape mismatch");
        assert_eq!(out.len(), n * width, "output shape mismatch");
        let m = n + 1;
        work.resize(m * width, 0);
        // Scatter: the address ROM is a permutation of 1..=N, so only RAM
        // row 0 needs explicit zeroing.
        work[..width].fill(0);
        for (k, &addr) in self.transform.scatter_addresses().iter().enumerate() {
            let a = addr as usize;
            for (w, &y) in work[a * width..(a + 1) * width]
                .iter_mut()
                .zip(panel[k * width..(k + 1) * width].iter())
            {
                *w = y as i64;
            }
        }
        // Integer FWHT, row-pair sweeps on the selected SIMD backend
        // (i64 add/sub is exact on every backend).
        let be = ims_signal::simd::active();
        let mut h = 1usize;
        while h < m {
            for block in (0..m).step_by(h * 2) {
                for i in block..block + h {
                    let (head, tail) = work.split_at_mut((i + h) * width);
                    let top = &mut head[i * width..(i + 1) * width];
                    let bottom = &mut tail[..width];
                    ims_signal::simd::butterfly_i64(be, top, bottom);
                }
            }
            h *= 2;
        }
        // Gather + scale per row.
        let f = self.config.output_frac_bits;
        let masks = self.transform.gather_addresses();
        let scale_num = -(2i128 << f);
        let denom = (n + 1) as i128;
        let half = denom / 2;
        for j in 0..n {
            let lag = match self.config.convention {
                Convention::Correlation => j,
                Convention::Convolution => (n - j) % n,
            };
            let src = masks[lag] as usize;
            for (o, &c) in out[j * width..(j + 1) * width]
                .iter_mut()
                .zip(work[src * width..(src + 1) * width].iter())
            {
                let wide = scale_num * c as i128;
                let rounded = if wide >= 0 {
                    (wide + half) / denom
                } else {
                    (wide - half) / denom
                };
                *o = rounded as i64;
            }
        }
    }

    /// Deconvolves a whole drift-major block (`mz_bins` columns), tallying
    /// cycles, and returns the drift-major fixed-point result. Columns are
    /// processed in panels via [`DeconvCore::deconvolve_panel_into`] — the
    /// modelled cycle count is unchanged (the FPGA's parallelism model is
    /// `parallel_columns`, not the software panel width).
    pub fn deconvolve_block(&mut self, data: &[u64], mz_bins: usize) -> Vec<i64> {
        // Shared with the software engine so a re-tuned width propagates
        // to both datapaths.
        const PANEL_WIDTH: usize = ims_signal::DEFAULT_PANEL_WIDTH;
        let n = self.len();
        assert_eq!(data.len(), n * mz_bins, "block shape mismatch");
        let mut out = vec![0i64; n * mz_bins];
        let mut panel: Vec<u64> = Vec::new();
        let mut solved: Vec<i64> = Vec::new();
        let mut work: Vec<i64> = Vec::new();
        let mut c0 = 0;
        while c0 < mz_bins {
            let width = PANEL_WIDTH.min(mz_bins - c0);
            panel.clear();
            panel.reserve(n * width);
            for d in 0..n {
                panel.extend_from_slice(&data[d * mz_bins + c0..d * mz_bins + c0 + width]);
            }
            solved.resize(n * width, 0);
            self.deconvolve_panel_into(&panel, width, &mut solved, &mut work);
            for d in 0..n {
                out[d * mz_bins + c0..d * mz_bins + c0 + width]
                    .copy_from_slice(&solved[d * width..(d + 1) * width]);
            }
            c0 += width;
        }
        self.cycles += self.cycles_per_block(mz_bins);
        out
    }

    /// Deconvolves a sparse block by solving only its occupied m/z
    /// columns and splatting a once-computed zero-column response into
    /// the empty ones.
    ///
    /// Every occupied column is expanded to its exact dense contents and
    /// run through the ordinary panel pipeline, and an empty column's
    /// response is itself the exact deconvolution of a zero column, so
    /// the output is **bit-identical** to
    /// `deconvolve_block(&block.to_dense(), ..)` — the cores differ only
    /// in work done. The cycle model prices occupied columns plus one
    /// zero-response column: a zero-suppressing column dispatcher never
    /// feeds empty columns to the engines, which is where the sparse
    /// speedup comes from. Skipped columns are tallied in the
    /// `deconv.sparse_columns_skipped` counter.
    pub fn deconvolve_block_sparse(&mut self, block: &crate::sparse::SparseBlock) -> Vec<i64> {
        const PANEL_WIDTH: usize = ims_signal::DEFAULT_PANEL_WIDTH;
        let n = self.len();
        assert_eq!(block.drift_bins(), n, "block drift bins mismatch");
        let mz_bins = block.mz_bins();
        let (compact, cols) = block.compact_occupied();
        let k = cols.len();
        // The response every empty column shares: deconvolve one zero
        // column through the ordinary datapath.
        let zero_response = self.deconvolve_column(&vec![0u64; n]);
        let mut out = vec![0i64; n * mz_bins];
        for d in 0..n {
            out[d * mz_bins..(d + 1) * mz_bins].fill(zero_response[d]);
        }
        // Solve the compact occupied-column block panel-wise and scatter
        // each result column to its original m/z position.
        let mut panel: Vec<u64> = Vec::new();
        let mut solved: Vec<i64> = Vec::new();
        let mut work: Vec<i64> = Vec::new();
        let mut c0 = 0;
        while c0 < k {
            let width = PANEL_WIDTH.min(k - c0);
            panel.clear();
            panel.reserve(n * width);
            for d in 0..n {
                panel.extend_from_slice(&compact[d * k + c0..d * k + c0 + width]);
            }
            solved.resize(n * width, 0);
            self.deconvolve_panel_into(&panel, width, &mut solved, &mut work);
            for d in 0..n {
                for (i, &c) in cols[c0..c0 + width].iter().enumerate() {
                    out[d * mz_bins + c as usize] = solved[d * width + i];
                }
            }
            c0 += width;
        }
        let groups = (k + 1).div_ceil(self.config.parallel_columns) as u64;
        self.cycles += groups * self.cycles_per_column();
        ims_obs::static_counter!("deconv.sparse_blocks").incr();
        ims_obs::static_counter!("deconv.sparse_columns_skipped").add((mz_bins - k) as u64);
        out
    }

    /// Converts raw fixed-point output words to `f64`.
    pub fn to_f64(&self, raw: &[i64]) -> Vec<f64> {
        let ulp = (2.0f64).powi(-(self.config.output_frac_bits as i32));
        raw.iter().map(|&r| r as f64 * ulp).collect()
    }

    /// Clock cycles for one column: scatter `N` + butterfly stages
    /// `(M/2)·log₂M / butterflies` + gather-and-scale `N`.
    pub fn cycles_per_column(&self) -> u64 {
        let n = self.len() as u64;
        let m = n + 1;
        let stages = (m as f64).log2() as u64;
        let butterfly_cycles = (m / 2) * stages / self.config.butterflies_per_column as u64;
        n + butterfly_cycles.max(1) + n
    }

    /// Clock cycles for a full block of `mz_bins` columns with
    /// `parallel_columns` engines.
    pub fn cycles_per_block(&self, mz_bins: usize) -> u64 {
        let groups = mz_bins.div_ceil(self.config.parallel_columns) as u64;
        groups * self.cycles_per_column()
    }

    /// BRAM budget: per column engine a double-buffered `M`-word working
    /// RAM (accumulator width + log₂M growth bits + sign), plus the two
    /// shared address ROMs.
    pub fn bram_budget(&self, acc_bits: u32) -> BramBudget {
        let n = self.len() as u64;
        let m = n + 1;
        let degree = (usize::BITS - self.len().leading_zeros()) as u64; // log2(M)
        let work_bits = acc_bits as u64 + degree + 1;
        let mut b = BramBudget::new();
        b.add(
            MemoryRequirement {
                depth: m,
                width_bits: work_bits,
                label: "FWHT working RAM",
            },
            2 * self.config.parallel_columns as u64,
        );
        b.add(
            MemoryRequirement {
                depth: n,
                width_bits: degree,
                label: "scatter address ROM",
            },
            1,
        );
        b.add(
            MemoryRequirement {
                depth: n,
                width_bits: degree,
                label: "gather address ROM",
            },
            1,
        );
        b
    }

    /// DSP multipliers: one output scaler per column engine.
    pub fn dsp_count(&self) -> u64 {
        self.config.parallel_columns as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::Fx;
    use ims_signal::correlate::circular_convolve_direct;

    fn counts(n: usize) -> Vec<u64> {
        (0..n).map(|k| ((k * 13 + 5) % 97) as u64).collect()
    }

    #[test]
    fn integer_path_matches_float_path() {
        for degree in [4u32, 6, 8, 9] {
            let seq = MSequence::new(degree);
            let core = DeconvCore::new(
                &seq,
                DeconvConfig {
                    convention: Convention::Correlation,
                    ..Default::default()
                },
            );
            let t = FastMTransform::new(&seq);
            let y = counts(seq.len());
            let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
            let float = t.deconvolve(&yf);
            let fixed = core.to_f64(&core.deconvolve_column(&y));
            let ulp = (2.0f64).powi(-16);
            for (j, (a, b)) in float.iter().zip(fixed.iter()).enumerate() {
                assert!(
                    (a - b).abs() <= ulp,
                    "degree {degree} bin {j}: float {a} vs fixed {b}"
                );
            }
        }
    }

    #[test]
    fn convolution_convention_round_trips_planted_signal() {
        let seq = MSequence::new(7);
        let n = seq.len();
        let mut x = vec![0.0; n];
        x[10] = 50.0;
        x[90] = 120.0;
        let y_f = circular_convolve_direct(&seq.as_f64(), &x);
        let y: Vec<u64> = y_f.iter().map(|&v| v.round() as u64).collect();
        let core = DeconvCore::new(&seq, DeconvConfig::default());
        let got = core.to_f64(&core.deconvolve_column(&y));
        for (j, (a, b)) in x.iter().zip(got.iter()).enumerate() {
            assert!((a - b).abs() < 1e-3, "bin {j}: {a} vs {b}");
        }
    }

    #[test]
    fn results_are_bit_deterministic() {
        let seq = MSequence::new(8);
        let core = DeconvCore::new(&seq, DeconvConfig::default());
        let y = counts(seq.len());
        let a = core.deconvolve_column(&y);
        let b = core.deconvolve_column(&y);
        assert_eq!(a, b);
    }

    #[test]
    fn block_processing_matches_columnwise() {
        let seq = MSequence::new(5);
        let n = seq.len();
        let mz_bins = 7;
        let mut core = DeconvCore::new(&seq, DeconvConfig::default());
        let mut data = vec![0u64; n * mz_bins];
        for (i, v) in data.iter_mut().enumerate() {
            *v = ((i * 31) % 250) as u64;
        }
        let block = core.deconvolve_block(&data, mz_bins);
        for mz in 0..mz_bins {
            let col: Vec<u64> = (0..n).map(|d| data[d * mz_bins + mz]).collect();
            let expect = core.deconvolve_column(&col);
            for d in 0..n {
                assert_eq!(block[d * mz_bins + mz], expect[d]);
            }
        }
        assert!(core.cycles() > 0);
    }

    #[test]
    fn panel_path_matches_columnwise_exactly() {
        for convention in [Convention::Correlation, Convention::Convolution] {
            let seq = MSequence::new(6);
            let n = seq.len();
            let core = DeconvCore::new(
                &seq,
                DeconvConfig {
                    convention,
                    ..Default::default()
                },
            );
            for width in [1usize, 5, 32] {
                let panel: Vec<u64> = (0..n * width).map(|i| ((i * 7 + 3) % 211) as u64).collect();
                let mut out = vec![0i64; n * width];
                let mut work = Vec::new();
                core.deconvolve_panel_into(&panel, width, &mut out, &mut work);
                for c in 0..width {
                    let col: Vec<u64> = (0..n).map(|d| panel[d * width + c]).collect();
                    let expect = core.deconvolve_column(&col);
                    for d in 0..n {
                        assert_eq!(
                            out[d * width + c],
                            expect[d],
                            "{convention:?} width {width} at ({d},{c})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_block_matches_dense_bitwise() {
        let seq = MSequence::new(6);
        let n = seq.len();
        let mz_bins = 50;
        // ~6% occupied: a few hot columns, one isolated cell.
        let mut data = vec![0u64; n * mz_bins];
        for d in 0..n {
            data[d * mz_bins + 7] = ((d * 13 + 5) % 97) as u64;
            data[d * mz_bins + 31] = ((d * 7 + 11) % 211) as u64;
        }
        data[20 * mz_bins + 44] = 3;
        let sparse = crate::sparse::SparseBlock::from_dense(&data, n, mz_bins);
        let mut dense_core = DeconvCore::new(&seq, DeconvConfig::default());
        let mut sparse_core = DeconvCore::new(&seq, DeconvConfig::default());
        let dense = dense_core.deconvolve_block(&data, mz_bins);
        let got = sparse_core.deconvolve_block_sparse(&sparse);
        assert_eq!(dense, got);
        // The sparse core priced far fewer column groups.
        assert!(sparse_core.cycles() < dense_core.cycles() / 4);
    }

    #[test]
    fn cycle_model_scales_with_parallelism() {
        let seq = MSequence::new(9);
        let slow = DeconvCore::new(
            &seq,
            DeconvConfig {
                parallel_columns: 1,
                butterflies_per_column: 1,
                ..Default::default()
            },
        );
        let fast = DeconvCore::new(
            &seq,
            DeconvConfig {
                parallel_columns: 8,
                butterflies_per_column: 8,
                ..Default::default()
            },
        );
        let mz = 1000;
        assert!(slow.cycles_per_block(mz) > 6 * fast.cycles_per_block(mz));
    }

    #[test]
    fn bram_budget_includes_roms_and_work_ram() {
        let seq = MSequence::new(9);
        let core = DeconvCore::new(&seq, DeconvConfig::default());
        let b = core.bram_budget(32);
        let labels: Vec<&str> = b.breakdown().iter().map(|(l, _, _)| *l).collect();
        assert!(labels.contains(&"FWHT working RAM"));
        assert!(labels.contains(&"scatter address ROM"));
        assert!(b.total_tiles() > 0);
    }

    #[test]
    fn fixed_output_type_is_consistent() {
        // Round-trip through the Fx type used downstream.
        let seq = MSequence::new(4);
        let core = DeconvCore::new(&seq, DeconvConfig::default());
        let raw = core.deconvolve_column(&counts(seq.len()));
        for &r in &raw {
            let fx = Fx::<16>::from_raw(r);
            assert!((fx.to_f64() - r as f64 / 65536.0).abs() < 1e-12);
        }
    }
}
