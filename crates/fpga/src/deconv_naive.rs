//! The naive (pre-enhancement) FPGA deconvolution core: a direct `O(N²)`
//! multiply–accumulate array.
//!
//! This is the baseline the paper's "more sophisticated deconvolution
//! algorithm based on a PNNL-developed enhancement" replaces. Because the
//! simplex inverse is ±-weighted correlation, a gate-bit ROM plus an
//! adder/subtractor per lane suffices — no multipliers — but every output
//! bin still costs `N` accumulations, so a block of `mz` columns needs
//! `N²·mz / lanes` cycles against the FWHT core's `N·log₂N`-ish count.
//! Experiment E11 quantifies the difference; both cores are bit-exact
//! equals (same integer arithmetic, same rounding), which the tests verify.

use crate::bram::{BramBudget, MemoryRequirement};
use crate::deconv::Convention;
use ims_prs::MSequence;
use serde::{Deserialize, Serialize};

/// Configuration of the MAC-array core.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NaiveConfig {
    /// Parallel accumulate lanes (output bins computed concurrently).
    pub lanes: usize,
    /// Fractional bits of the fixed-point output.
    pub output_frac_bits: u32,
    /// Forward-model convention of the incoming data.
    pub convention: Convention,
}

impl Default for NaiveConfig {
    fn default() -> Self {
        Self {
            lanes: 16,
            output_frac_bits: 16,
            convention: Convention::Convolution,
        }
    }
}

/// Direct MAC-array deconvolution core.
#[derive(Debug, Clone)]
pub struct NaiveMacCore {
    bits: Vec<bool>,
    config: NaiveConfig,
    cycles: u64,
}

impl NaiveMacCore {
    /// Builds the core for an m-sequence.
    pub fn new(seq: &MSequence, config: NaiveConfig) -> Self {
        assert!(config.lanes >= 1);
        assert!((4..=30).contains(&config.output_frac_bits));
        Self {
            bits: seq.bits().to_vec(),
            config,
            cycles: 0,
        }
    }

    /// Sequence length `N`.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Clock cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Deconvolves one column: `x̂[j] = 2·(2·Σᵢ a[σ(i,j)]·y[i] − Σᵢ y[i])
    /// / (N+1)`, exact integers with one output rounding — identical
    /// arithmetic (and therefore identical bits) to the FWHT core.
    pub fn deconvolve_column(&self, y: &[u64]) -> Vec<i64> {
        let n = self.len();
        assert_eq!(y.len(), n, "column length mismatch");
        let total: i128 = y.iter().map(|&v| v as i128).sum();
        let f = self.config.output_frac_bits;
        let denom = (n + 1) as i128;
        (0..n)
            .map(|j| {
                let mut corr: i128 = 0;
                for (i, &yv) in y.iter().enumerate() {
                    let bit = match self.config.convention {
                        Convention::Correlation => self.bits[(i + j) % n],
                        Convention::Convolution => self.bits[(i + n - j) % n],
                    };
                    if bit {
                        corr += yv as i128;
                    }
                }
                let wide = (2 * corr - total) << (f + 1);
                let half = denom / 2;
                let rounded = if wide >= 0 {
                    (wide + half) / denom
                } else {
                    (wide - half) / denom
                };
                rounded as i64
            })
            .collect()
    }

    /// Deconvolves a drift-major block, tallying cycles.
    pub fn deconvolve_block(&mut self, data: &[u64], mz_bins: usize) -> Vec<i64> {
        let n = self.len();
        assert_eq!(data.len(), n * mz_bins, "block shape mismatch");
        let mut out = vec![0i64; n * mz_bins];
        let mut column = vec![0u64; n];
        for mz in 0..mz_bins {
            for d in 0..n {
                column[d] = data[d * mz_bins + mz];
            }
            let x = self.deconvolve_column(&column);
            for d in 0..n {
                out[d * mz_bins + mz] = x[d];
            }
        }
        self.cycles += self.cycles_per_block(mz_bins);
        out
    }

    /// Cycles per column: `N` accumulation sweeps of `N` samples shared by
    /// `lanes` accumulators, plus the output pass.
    pub fn cycles_per_column(&self) -> u64 {
        let n = self.len() as u64;
        n * n / self.config.lanes as u64 + n
    }

    /// Cycles for a block of `mz_bins` columns (columns are sequential —
    /// the lanes are spent on output bins, the better use at this shape).
    pub fn cycles_per_block(&self, mz_bins: usize) -> u64 {
        self.cycles_per_column() * mz_bins as u64
    }

    /// BRAM: sequence ROM and one column buffer (double-buffered).
    pub fn bram_budget(&self, acc_bits: u32) -> BramBudget {
        let n = self.len() as u64;
        let mut b = BramBudget::new();
        b.add(
            MemoryRequirement {
                depth: n,
                width_bits: 1,
                label: "sequence ROM",
            },
            1,
        );
        b.add(
            MemoryRequirement {
                depth: n,
                width_bits: acc_bits as u64,
                label: "column buffer",
            },
            2,
        );
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deconv::{DeconvConfig, DeconvCore};

    fn counts(n: usize, seed: u64) -> Vec<u64> {
        (0..n)
            .map(|k| (k as u64).wrapping_mul(seed + 11) % 4000)
            .collect()
    }

    #[test]
    fn naive_equals_fwht_core_bit_for_bit() {
        for degree in [4u32, 6, 8, 9] {
            for convention in [Convention::Correlation, Convention::Convolution] {
                let seq = MSequence::new(degree);
                let naive = NaiveMacCore::new(
                    &seq,
                    NaiveConfig {
                        convention,
                        ..Default::default()
                    },
                );
                let fwht = DeconvCore::new(
                    &seq,
                    DeconvConfig {
                        convention,
                        ..Default::default()
                    },
                );
                let y = counts(seq.len(), degree as u64);
                assert_eq!(
                    naive.deconvolve_column(&y),
                    fwht.deconvolve_column(&y),
                    "degree {degree} {convention:?}"
                );
            }
        }
    }

    #[test]
    fn block_matches_columnwise() {
        let seq = MSequence::new(5);
        let n = seq.len();
        let mz = 4;
        let mut core = NaiveMacCore::new(&seq, NaiveConfig::default());
        let data: Vec<u64> = (0..n * mz).map(|i| (i * 7 % 100) as u64).collect();
        let block = core.deconvolve_block(&data, mz);
        for m in 0..mz {
            let col: Vec<u64> = (0..n).map(|d| data[d * mz + m]).collect();
            let expect = core.deconvolve_column(&col);
            for d in 0..n {
                assert_eq!(block[d * mz + m], expect[d]);
            }
        }
        assert!(core.cycles() > 0);
    }

    #[test]
    fn quadratic_cycle_growth() {
        let mk = |degree: u32| {
            NaiveMacCore::new(&MSequence::new(degree), NaiveConfig::default()).cycles_per_column()
        };
        let c8 = mk(8);
        let c9 = mk(9);
        // Doubling N roughly quadruples the cycles.
        let ratio = c9 as f64 / c8 as f64;
        assert!(ratio > 3.5 && ratio < 4.5, "ratio {ratio}");
    }

    #[test]
    fn enhancement_speedup_is_large_at_instrument_scale() {
        let seq = MSequence::new(9);
        let naive = NaiveMacCore::new(&seq, NaiveConfig::default());
        let fwht = DeconvCore::new(&seq, DeconvConfig::default());
        let speedup = naive.cycles_per_block(1000) as f64 / fwht.cycles_per_block(1000) as f64;
        assert!(speedup > 10.0, "speedup {speedup}");
    }

    #[test]
    fn bram_is_modest() {
        let seq = MSequence::new(9);
        let core = NaiveMacCore::new(&seq, NaiveConfig::default());
        assert!(core.bram_budget(32).total_tiles() <= 4);
    }
}
