//! Golden-file test for the Prometheus text renderer.
//!
//! [`ims_obs::export::render`] is pure over a [`PromMetric`] list, so the
//! expected scrape body can be pinned byte-for-byte: metric-name
//! sanitization (dots/dashes to `_`, leading-digit prefix), `# HELP`
//! escaping (backslash, newline), label syntax, and the cumulative
//! histogram shape (`_bucket{le=…}` … `+Inf`, `_sum`, `_count`) are all
//! load-bearing for a real Prometheus scraper, and a formatting drift
//! should fail loudly here rather than in someone's dashboard.

use ims_obs::export::{render, PromHistogram, PromMetric, PromValue};

/// A fixed family list covering every render path.
fn golden_families() -> Vec<PromMetric> {
    vec![
        PromMetric {
            name: "ims.frames_total".into(),
            help: Some("Frames emitted by the source stage.".into()),
            value: PromValue::Counter(1280),
        },
        PromMetric {
            name: "pipeline.queue_depth.deconvolve".into(),
            help: None,
            value: PromValue::Gauge(3),
        },
        PromMetric {
            name: "9th.percentile-gauge".into(),
            help: Some("escaped \\ backslash and\nnewline".into()),
            value: PromValue::Gauge(7),
        },
        PromMetric {
            name: "deconv.panel_ns.simplex-fast".into(),
            help: Some("Per-panel deconvolution latency.".into()),
            value: PromValue::Histogram(PromHistogram {
                buckets: vec![(64, 2), (96, 5), (128, 11)],
                sum: 1042,
                count: 12, // one sample past the last finite bucket -> +Inf only
            }),
        },
    ]
}

#[test]
fn render_matches_golden_file() {
    let rendered = render(&golden_families());
    let golden = include_str!("golden/metrics.prom");
    assert_eq!(
        rendered, golden,
        "Prometheus text format drifted from tests/golden/metrics.prom — \
         if the change is intentional, update the golden file"
    );
}

#[test]
fn rendered_buckets_are_cumulative_and_monotone() {
    let rendered = render(&golden_families());
    // Pull every `<name>_bucket{le="…"} <count>` line back out and check
    // the invariants a scraper relies on: counts never decrease as `le`
    // grows, and the `+Inf` bucket equals `_count`.
    let mut last_cum = 0u64;
    let mut inf_value = None;
    let mut bucket_lines = 0;
    for line in rendered.lines() {
        let Some((series, value)) = line.rsplit_once(' ') else {
            continue;
        };
        if !series.contains("_bucket{le=") {
            continue;
        }
        bucket_lines += 1;
        let count: u64 = value.parse().expect("bucket count parses");
        assert!(
            count >= last_cum,
            "bucket counts must be cumulative: {line}"
        );
        last_cum = count;
        if series.contains("le=\"+Inf\"") {
            inf_value = Some(count);
        }
    }
    assert_eq!(bucket_lines, 4, "three finite buckets plus +Inf");
    assert_eq!(inf_value, Some(12), "+Inf bucket must equal _count");
    assert!(rendered.contains("deconv_panel_ns_simplex_fast_count 12"));
}

#[test]
fn every_type_line_precedes_its_samples() {
    // Exposition format requires `# TYPE` before the family's samples and
    // at most one TYPE line per family.
    let rendered = render(&golden_families());
    let mut seen_types = std::collections::HashSet::new();
    for line in rendered.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split(' ').next().unwrap();
            assert!(seen_types.insert(name.to_string()), "duplicate TYPE {name}");
        } else if !line.starts_with('#') && !line.is_empty() {
            let series = line.split([' ', '{']).next().unwrap();
            let family = series
                .strip_suffix("_bucket")
                .or_else(|| series.strip_suffix("_sum"))
                .or_else(|| series.strip_suffix("_count"))
                .unwrap_or(series);
            assert!(
                seen_types.contains(family),
                "sample line before its TYPE: {line}"
            );
        }
    }
}
