//! Property tests for the flight-recorder ring: overwrite must keep the
//! newest events and never reorder what survives within a worker shard.

use ims_obs::flight::{FlightKind, FlightRecorder};
use proptest::prelude::*;

const KINDS: [FlightKind; 6] = [
    FlightKind::FrameIngress,
    FlightKind::FrameEgress,
    FlightKind::BlockIngress,
    FlightKind::BlockEgress,
    FlightKind::Fault,
    FlightKind::Quarantine,
];

proptest! {
    /// However many events are pushed through however small a ring, the
    /// snapshot is exactly the newest `min(n, capacity)` events, in the
    /// order they were recorded, payloads intact.
    #[test]
    fn ring_overwrite_preserves_per_worker_order(
        capacity in 1usize..40,
        events in proptest::collection::vec((0u8..6, 0u64..1000), 0..200),
    ) {
        let rec = FlightRecorder::new(1, capacity);
        let s = rec.register("stage");
        for (i, &(kind, item)) in events.iter().enumerate() {
            rec.record_at(s, KINDS[kind as usize], item, i as u64);
        }
        let snap = rec.snapshot();
        prop_assert_eq!(snap.recorded as usize, events.len());
        let survivors = &snap.events[0];
        let expect = events.len().min(rec.capacity());
        prop_assert_eq!(survivors.len(), expect);
        // Survivors are the tail of the recorded sequence, in order.
        let tail = &events[events.len() - expect..];
        for (got, (&(kind, item), offset)) in
            survivors.iter().zip(tail.iter().zip(0u64..))
        {
            let seq = (events.len() - expect) as u64 + offset;
            prop_assert_eq!(got.seq, seq, "claim order survives overwrite");
            prop_assert_eq!(got.kind, KINDS[kind as usize]);
            prop_assert_eq!(got.item, item);
            prop_assert_eq!(got.ts_ns, seq, "timestamp payload intact");
        }
        // And strictly monotone seq — no reordering, no duplicates.
        for pair in survivors.windows(2) {
            prop_assert!(pair[0].seq < pair[1].seq);
        }
    }

    /// A dump renders and parses back for any event mix, and its header
    /// always lists every quarantined item exactly once, ascending.
    #[test]
    fn dump_round_trips_and_lists_quarantines(
        events in proptest::collection::vec((0u8..6, 0u64..50), 1..120),
    ) {
        let rec = FlightRecorder::new(2, 256);
        let s = rec.register("stage");
        let mut quarantined: Vec<u64> = Vec::new();
        for (i, &(kind, item)) in events.iter().enumerate() {
            let kind = KINDS[kind as usize];
            if kind == FlightKind::Quarantine {
                quarantined.push(item);
            }
            rec.record_at(s, kind, item, i as u64);
        }
        quarantined.sort_unstable();
        quarantined.dedup();
        let text = rec.render_dump(&ims_obs::flight::DumpMeta {
            fingerprint: "prop".into(),
            outcome: "degraded".into(),
            reason: "proptest".into(),
            ..Default::default()
        });
        let (header, lines) = ims_obs::flight::parse_dump(&text).unwrap();
        prop_assert_eq!(header.quarantined_frames, quarantined);
        prop_assert_eq!(header.events as usize, lines.len());
        prop_assert_eq!(lines.len(), events.len());
    }
}
