//! Round-trip test for the sampler's JSONL sink: every line written to
//! the time-series file must parse back into a [`SamplePoint`] equal to
//! the one the in-memory ring kept. This is the contract the CI artifact
//! (and any offline plotting script) depends on.
//!
//! Lives in its own integration-test binary so the process-global metrics
//! registry is not shared with other test files.

use ims_obs::{metrics, SamplePoint, Sampler, SamplerConfig};
use std::time::Duration;

#[test]
fn jsonl_sink_round_trips_the_ring() {
    metrics::reset();
    let path = std::env::temp_dir().join(format!(
        "htims_sampler_roundtrip_{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let frames = metrics::counter("test.roundtrip.frames");
    let depth = metrics::gauge("test.roundtrip.depth");
    let lat = metrics::histogram("test.roundtrip.latency_ns");

    let sampler = Sampler::start(SamplerConfig {
        interval: Duration::from_millis(10),
        ring_capacity: 1024, // larger than the run: ring == file
        jsonl_path: Some(path.clone()),
    })
    .unwrap();
    for i in 0..8u64 {
        frames.add(5);
        depth.set(i % 3);
        lat.record(1_000 + i * 250);
        std::thread::sleep(Duration::from_millis(6));
    }
    let ring = sampler.stop();
    assert!(!ring.is_empty());

    let text = std::fs::read_to_string(&path).unwrap();
    let parsed: Vec<SamplePoint> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("sample line parses"))
        .collect();
    std::fs::remove_file(&path).unwrap();

    assert_eq!(
        parsed, ring,
        "JSONL lines must round-trip to exactly the ring contents"
    );

    // The final point carries the finished workload: absolute counter
    // value, histogram count/sum, and per-tick deltas that sum to the
    // absolute value.
    let last = parsed.last().unwrap();
    let c = last
        .counters
        .iter()
        .find(|c| c.name == "test.roundtrip.frames")
        .expect("counter present");
    assert_eq!(c.value, 40);
    let delta_sum: u64 = parsed
        .iter()
        .filter_map(|p| {
            p.counters
                .iter()
                .find(|c| c.name == "test.roundtrip.frames")
                .map(|c| c.delta)
        })
        .sum();
    assert_eq!(delta_sum, 40, "counter deltas must sum to the total");
    let h = last
        .histograms
        .iter()
        .find(|h| h.name == "test.roundtrip.latency_ns")
        .expect("histogram present");
    assert_eq!(h.summary.count, 8);
    let exact: u64 = (0..8u64).map(|i| 1_000 + i * 250).sum();
    assert_eq!(h.summary.sum, exact, "histogram sum is exact");
}
