//! Lock-free metrics: counters, gauges, and log-linear-bucket histograms,
//! behind a global name → handle registry.
//!
//! Recording is wait-free: every instrument is a handful of relaxed atomic
//! operations, so hot paths (per-frame, per-panel) can record
//! unconditionally. Registration (the only locking operation) happens once
//! per name and returns a `&'static` handle — cache it in a `static` (see
//! [`static_counter!`](crate::static_counter) and friends) and the steady
//! state cost is one atomic load to reach the handle plus the record itself.
//!
//! Histograms use HdrHistogram-style log-linear buckets: values below 16
//! get exact unit buckets; above that, each power of two is split into 16
//! linear sub-buckets, giving ≤ 6.25 % relative error across the full `u64`
//! range with a fixed 976-bucket table (~8 KiB per histogram). Quantiles
//! are read from the bucket cumulative counts and clamped into the exact
//! observed `[min, max]`, so a single-sample histogram reports that sample
//! exactly and `u64::MAX` never rounds up (the saturating-max edge case).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};

/// Sub-buckets per power of two (and the exact-bucket cutoff).
const SUB_BUCKETS: u64 = 16;

/// Total bucket count: 16 exact unit buckets for `0..16`, then 16 linear
/// sub-buckets for each power-of-two range `2^4..2^64`.
pub const NUM_BUCKETS: usize = 976;

/// The bucket index holding `v`. Monotonic in `v`; exact for `v < 16`.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let top = 63 - v.leading_zeros() as usize; // >= 4
        (top - 3) * 16 + ((v >> (top - 4)) & 15) as usize
    }
}

/// The smallest value mapping to bucket `i`.
pub(crate) fn bucket_low(i: usize) -> u64 {
    if i < SUB_BUCKETS as usize {
        i as u64
    } else {
        let sub = (i % 16) as u64;
        (16 + sub) << (i / 16 - 1)
    }
}

/// The largest value mapping to bucket `i`.
pub(crate) fn bucket_high(i: usize) -> u64 {
    if i + 1 < NUM_BUCKETS {
        bucket_low(i + 1) - 1
    } else {
        u64::MAX
    }
}

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Relaxed);
    }
}

/// Last-write-wins instantaneous value that also tracks its high-water
/// mark (e.g. a queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// Sets the current value, updating the high-water mark.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    /// Largest value ever set.
    pub fn high_water(&self) -> u64 {
        self.max.load(Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Relaxed);
        self.max.store(0, Relaxed);
    }
}

/// Log-linear-bucket histogram over `u64` samples (latencies in ns, sizes
/// in bytes, …). Recording is a bucket-index computation plus four relaxed
/// atomic RMW operations; snapshots never block recorders.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        write!(
            f,
            "Histogram {{ count: {}, min: {}, max: {}, p50: {} }}",
            s.count, s.min, s.max, s.p50
        )
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([const { AtomicU64::new(0) }; NUM_BUCKETS]),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed); // wraps only after ~584 years of ns
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Records a `Duration` as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// An immutable summary (count, min/max, mean, p50/p90/p99) of the
    /// samples recorded so far.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Relaxed);
        if count == 0 {
            return HistogramSummary::default();
        }
        let min = self.min.load(Relaxed);
        let max = self.max.load(Relaxed);
        let sum = self.sum.load(Relaxed);
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        // A racing recorder may have bumped `count` before its bucket: use
        // the bucket total so the quantile walk is self-consistent.
        let total: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            let target = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut cum = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                cum += c;
                if cum >= target {
                    return bucket_high(i).clamp(min, max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum,
            min,
            max,
            mean: sum as f64 / count as f64,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }

    /// Cumulative bucket counts in Prometheus `le` form: one
    /// `(upper_bound, cumulative_count)` pair per *occupied* bucket, in
    /// increasing bound order. The final entry's count equals the bucket
    /// total, so appending a `+Inf` bucket with the same count yields a
    /// valid Prometheus histogram. Empty histograms return no buckets.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Relaxed);
            if c > 0 {
                cum += c;
                out.push((bucket_high(i), cum));
            }
        }
        out
    }

    fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }
}

/// Serializable point-in-time summary of one [`Histogram`].
///
/// Quantiles are bucket upper bounds clamped into the exact observed
/// `[min, max]` (≤ 6.25 % relative error). An empty histogram is all
/// zeros with `count == 0`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (0 when empty) — with `count`, the exact
    /// Prometheus `_sum`/`_count` pair, so interval means computed from
    /// two snapshots are exact rather than bucket-approximated.
    #[serde(default)]
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// One registered instrument.
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

fn registry() -> &'static Mutex<HashMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Looks up (registering on first use) the counter named `name`.
///
/// # Panics
/// Panics if `name` is already registered as a different instrument kind.
pub fn counter(name: &str) -> &'static Counter {
    match register(name, || Metric::Counter(Box::leak(Box::default()))) {
        Metric::Counter(c) => c,
        other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
    }
}

/// Looks up (registering on first use) the gauge named `name`.
///
/// # Panics
/// Panics if `name` is already registered as a different instrument kind.
pub fn gauge(name: &str) -> &'static Gauge {
    match register(name, || Metric::Gauge(Box::leak(Box::default()))) {
        Metric::Gauge(g) => g,
        other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
    }
}

/// Looks up (registering on first use) the histogram named `name`.
///
/// # Panics
/// Panics if `name` is already registered as a different instrument kind.
pub fn histogram(name: &str) -> &'static Histogram {
    match register(name, || Metric::Histogram(Box::leak(Box::default()))) {
        Metric::Histogram(h) => h,
        other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
    }
}

fn register(name: &str, make: impl FnOnce() -> Metric) -> Metric {
    let mut map = registry().lock().expect("metrics registry poisoned");
    let entry = map.entry(name.to_string()).or_insert_with(make);
    match entry {
        Metric::Counter(c) => Metric::Counter(c),
        Metric::Gauge(g) => Metric::Gauge(g),
        Metric::Histogram(h) => Metric::Histogram(h),
    }
}

/// Zeroes every registered instrument in place (handles stay valid) — the
/// start-of-session reset.
pub fn reset() {
    let map = registry().lock().expect("metrics registry poisoned");
    for metric in map.values() {
        match metric {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
}

/// One named counter value in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One named gauge value in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Registered name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
    /// Largest value ever set.
    pub high_water: u64,
}

/// One named histogram summary in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramEntry {
    /// Registered name.
    pub name: String,
    /// Summary at snapshot time.
    pub summary: HistogramSummary,
}

/// Point-in-time capture of every registered instrument, sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterEntry>,
    /// All gauges.
    pub gauges: Vec<GaugeEntry>,
    /// All histograms.
    pub histograms: Vec<HistogramEntry>,
}

impl MetricsSnapshot {
    /// The named counter's value, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The named histogram's summary, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.summary)
    }
}

/// Every registered histogram as `(name, handle)`, sorted by name. The
/// Prometheus exporter needs live bucket access (for `_bucket` lines),
/// which [`MetricsSnapshot`] deliberately does not carry.
pub(crate) fn histogram_handles() -> Vec<(String, &'static Histogram)> {
    let map = registry().lock().expect("metrics registry poisoned");
    let mut out: Vec<(String, &'static Histogram)> = map
        .iter()
        .filter_map(|(name, m)| match m {
            Metric::Histogram(h) => Some((name.clone(), *h)),
            _ => None,
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Captures every registered instrument.
pub fn snapshot() -> MetricsSnapshot {
    let map = registry().lock().expect("metrics registry poisoned");
    let mut snap = MetricsSnapshot::default();
    for (name, metric) in map.iter() {
        match metric {
            Metric::Counter(c) => snap.counters.push(CounterEntry {
                name: name.clone(),
                value: c.get(),
            }),
            Metric::Gauge(g) => snap.gauges.push(GaugeEntry {
                name: name.clone(),
                value: g.get(),
                high_water: g.high_water(),
            }),
            Metric::Histogram(h) => snap.histograms.push(HistogramEntry {
                name: name.clone(),
                summary: h.summary(),
            }),
        }
    }
    snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    snap
}

/// A `&'static Counter` handle cached in a local `static`: after the first
/// call the cost is one atomic load plus the record.
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// A `&'static Gauge` handle cached in a local `static`.
#[macro_export]
macro_rules! static_gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// A `&'static Histogram` handle cached in a local `static`.
#[macro_export]
macro_rules! static_histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_consistent() {
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            63,
            64,
            1000,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last = 0usize;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i >= last, "index not monotonic at {v}");
            assert!(i < NUM_BUCKETS);
            assert!(
                bucket_low(i) <= v && v <= bucket_high(i),
                "value {v} outside bucket {i}: [{}, {}]",
                bucket_low(i),
                bucket_high(i)
            );
            last = i;
        }
        // Exact unit buckets below 16.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
            assert_eq!(bucket_high(v as usize), v);
        }
        // Boundaries are seamless: every bucket starts where the previous
        // ended.
        for i in 1..NUM_BUCKETS {
            assert_eq!(bucket_low(i), bucket_high(i - 1) + 1, "gap at bucket {i}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Log-linear with 16 sub-buckets ⇒ bucket width ≤ value / 16.
        for &v in &[100u64, 1000, 12345, 1 << 30, u64::MAX / 3] {
            let i = bucket_index(v);
            let width = bucket_high(i) - bucket_low(i);
            assert!(
                (width as f64) <= (v as f64) / 16.0 + 1.0,
                "bucket {i} too wide for {v}: {width}"
            );
        }
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s, HistogramSummary::default());
        assert_eq!(s.count, 0);
        assert_eq!(s.p50, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn single_sample_is_reported_exactly() {
        let h = Histogram::new();
        h.record(42_424_242);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 42_424_242);
        assert_eq!(s.max, 42_424_242);
        assert_eq!(s.p50, 42_424_242);
        assert_eq!(s.p90, 42_424_242);
        assert_eq!(s.p99, 42_424_242);
        assert!((s.mean - 42_424_242.0).abs() < 1e-6);
    }

    #[test]
    fn saturating_max_sample_does_not_overflow() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1);
        let s = h.summary();
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.min, 1);
        assert_eq!(s.p99, u64::MAX);
    }

    #[test]
    fn quantiles_are_ordered_and_accurate() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        // ≤ 6.25 % bucket error.
        assert!((s.p50 as f64 - 5_000.0).abs() / 5_000.0 < 0.07, "{}", s.p50);
        assert!((s.p90 as f64 - 9_000.0).abs() / 9_000.0 < 0.07, "{}", s.p90);
        assert!((s.p99 as f64 - 9_900.0).abs() / 9_900.0 < 0.07, "{}", s.p99);
        assert_eq!(s.max, 10_000);
    }

    #[test]
    fn summary_sum_is_exact() {
        let h = Histogram::new();
        // Values that straddle bucket boundaries: the bucketed mean would
        // be approximate, but `sum` must be the exact total.
        let samples = [3u64, 17, 100, 12_345, 1 << 30];
        for &v in &samples {
            h.record(v);
        }
        let s = h.summary();
        let expect: u64 = samples.iter().sum();
        assert_eq!(s.sum, expect);
        assert_eq!(s.count, samples.len() as u64);
        assert!((s.mean - expect as f64 / samples.len() as f64).abs() < 1e-9);
        // The cumulative bucket walk agrees with count, and its bounds
        // are strictly increasing with monotonic counts.
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last().unwrap().1, s.count);
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
        // A summary serialized without `sum` (pre-PR-4 JSON) still parses.
        let legacy = r#"{"count":1,"min":5,"max":5,"mean":5.0,"p50":5,"p90":5,"p99":5}"#;
        let back: HistogramSummary = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.sum, 0);
        assert_eq!(back.count, 1);
    }

    #[test]
    fn registry_round_trip_and_reset() {
        let _lock = crate::global_test_lock();
        counter("test.registry.counter").add(7);
        gauge("test.registry.gauge").set(3);
        histogram("test.registry.hist").record(99);
        let snap = snapshot();
        assert_eq!(snap.counter("test.registry.counter"), Some(7));
        assert_eq!(snap.histogram("test.registry.hist").unwrap().count, 1);
        // Same name returns the same handle.
        assert!(std::ptr::eq(
            counter("test.registry.counter"),
            counter("test.registry.counter")
        ));
        reset();
        assert_eq!(counter("test.registry.counter").get(), 0);
        assert_eq!(histogram("test.registry.hist").count(), 0);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        counter("test.registry.kind_mismatch");
        gauge("test.registry.kind_mismatch");
    }
}
