//! Per-tenant SLO engine: declarative targets evaluated over sliding
//! windows with multi-window burn-rate alerting.
//!
//! A serving deployment states its objectives once —
//! `--slo p99=5ms,completeness=0.999` — and the engine turns the
//! pipeline's own counters into *burn rates*: the ratio of the observed
//! bad-event fraction to the error budget the objective allows. Burn 1.0
//! means the tenant is consuming its budget exactly as fast as the SLO
//! permits; burn 10 means the budget is gone in a tenth of the window.
//!
//! Two objectives are supported:
//!
//! * `p99=<dur>` — frame end-to-end latency (source packing to
//!   accumulation): at most 1% of frames may exceed `<dur>`. The bad
//!   fraction is `frames_slow / frames_observed`, the budget 0.01.
//! * `completeness=<f>` — delivery: at least fraction `<f>` of expected
//!   frames must reach accumulation (drops, stalls, and quarantines all
//!   eat this budget). The bad fraction is `missing / expected`, the
//!   budget `1 − f`.
//!
//! Following the multi-window SRE recipe, each objective is evaluated
//! over a **fast** (default 10 s) and a **slow** (default 60 s) sliding
//! window; the engine *alerts* only when both exceed the threshold —
//! fast-window-only spikes are noise, slow-window-only burn is stale.
//! [`SloEngine::publish`] surfaces every burn rate as
//! `slo.burn_rate#session=<s>,slo=<obj>,window=<w>` gauges — rendered on
//! `/metrics` as `slo_burn_rate{session="…",slo="…",window="…"}` — in
//! **milli-burn** units (gauges are integers; 1000 = burn 1.0).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Default fast alerting window, seconds.
pub const FAST_WINDOW_S: u64 = 10;
/// Default slow alerting window, seconds.
pub const SLOW_WINDOW_S: u64 = 60;

/// Declarative SLO targets, parsed from the compact CLI grammar.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloSpec {
    /// End-to-end frame-latency target: at most 1% of frames slower than
    /// this many nanoseconds.
    pub p99_ns: Option<u64>,
    /// Fraction of expected frames that must be delivered (0, 1).
    pub completeness: Option<f64>,
}

impl SloSpec {
    /// Parses `p99=5ms,completeness=0.999` (either clause optional, at
    /// least one required).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut spec = SloSpec::default();
        for clause in s.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("bad --slo clause `{clause}`: expected key=value"))?;
            match key.trim() {
                "p99" => spec.p99_ns = Some(parse_duration_ns(value.trim())?),
                "completeness" => {
                    let f: f64 = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad completeness `{value}`"))?;
                    if !(f > 0.0 && f < 1.0) {
                        return Err(format!("completeness must be in (0, 1), got `{value}`"));
                    }
                    spec.completeness = Some(f);
                }
                other => return Err(format!("unknown SLO objective `{other}`")),
            }
        }
        if spec.p99_ns.is_none() && spec.completeness.is_none() {
            return Err("empty --slo spec: expected p99=<dur>,completeness=<f>".into());
        }
        Ok(spec)
    }
}

impl fmt::Display for SloSpec {
    /// Canonical form: `p99=…,completeness=…` in declaration order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        if let Some(ns) = self.p99_ns {
            write!(f, "p99={}", format_duration_ns(ns))?;
            first = false;
        }
        if let Some(c) = self.completeness {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "completeness={c}")?;
        }
        Ok(())
    }
}

/// Parses `5ms` / `2s` / `500us` / `250ns` into nanoseconds.
fn parse_duration_ns(s: &str) -> Result<u64, String> {
    let (digits, unit): (String, String) = (
        s.chars().take_while(|c| c.is_ascii_digit()).collect(),
        s.chars().skip_while(|c| c.is_ascii_digit()).collect(),
    );
    let n: u64 = digits.parse().map_err(|_| format!("bad duration `{s}`"))?;
    let scale = match unit.trim() {
        "ns" => 1,
        "us" | "µs" => 1_000,
        "ms" => 1_000_000,
        "s" => 1_000_000_000,
        _ => return Err(format!("bad duration unit in `{s}` (ns|us|ms|s)")),
    };
    n.checked_mul(scale)
        .ok_or_else(|| format!("duration `{s}` overflows"))
}

/// Renders nanoseconds back in the largest exact unit.
fn format_duration_ns(ns: u64) -> String {
    if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

/// One batch of per-run counters fed to the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloDelta {
    /// Frames whose end-to-end latency was measured.
    pub frames_observed: u64,
    /// Of those, frames slower than the p99 target.
    pub frames_slow: u64,
    /// Frames the run was configured to produce.
    pub frames_expected: u64,
    /// Frames that actually reached accumulation.
    pub frames_delivered: u64,
}

/// Burn rates of one objective over both windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowBurn {
    /// Burn over the fast window (`None` until any events landed in it).
    pub fast: Option<f64>,
    /// Burn over the slow window.
    pub slow: Option<f64>,
}

impl WindowBurn {
    /// Strictly over: burning at exactly the threshold consumes the
    /// budget exactly as fast as the SLO permits, which is not an alert.
    fn over(&self, threshold: f64) -> bool {
        self.fast.is_some_and(|b| b > threshold) && self.slow.is_some_and(|b| b > threshold)
    }
}

/// The engine's verdict at one evaluation instant.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SloStatus {
    /// Latency-objective burn, when `p99` is configured and frames flowed.
    pub p99: Option<WindowBurn>,
    /// Completeness-objective burn.
    pub completeness: Option<WindowBurn>,
    /// Multi-window alert: some objective burns over the threshold on
    /// *both* windows.
    pub alerting: bool,
}

/// Sliding-window burn-rate evaluator for one tenant.
pub struct SloEngine {
    spec: SloSpec,
    fast_s: u64,
    slow_s: u64,
    /// Burn at or above this on both windows raises the alert.
    threshold: f64,
    /// Per-second accumulation buckets `(second, delta)`, oldest first.
    buckets: VecDeque<(u64, SloDelta)>,
}

impl SloEngine {
    /// An engine with the default 10 s / 60 s windows and threshold 1.0.
    pub fn new(spec: SloSpec) -> Self {
        Self::with_windows(spec, FAST_WINDOW_S, SLOW_WINDOW_S, 1.0)
    }

    /// Fully parameterized constructor (tests inject small windows).
    pub fn with_windows(spec: SloSpec, fast_s: u64, slow_s: u64, threshold: f64) -> Self {
        Self {
            spec,
            fast_s: fast_s.max(1),
            slow_s: slow_s.max(fast_s.max(1)),
            threshold,
            buckets: VecDeque::new(),
        }
    }

    /// The configured targets.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Folds one batch of counters into the bucket for `now_s` (seconds
    /// on any monotonic clock; callers use `trace::now_ns() / 1e9`).
    pub fn observe(&mut self, now_s: u64, delta: SloDelta) {
        match self.buckets.back_mut() {
            Some((sec, d)) if *sec == now_s => {
                d.frames_observed += delta.frames_observed;
                d.frames_slow += delta.frames_slow;
                d.frames_expected += delta.frames_expected;
                d.frames_delivered += delta.frames_delivered;
            }
            _ => self.buckets.push_back((now_s, delta)),
        }
        let horizon = now_s.saturating_sub(self.slow_s);
        while self.buckets.front().is_some_and(|(sec, _)| *sec < horizon) {
            self.buckets.pop_front();
        }
    }

    fn window_total(&self, now_s: u64, window_s: u64) -> SloDelta {
        let from = now_s.saturating_sub(window_s.saturating_sub(1));
        let mut total = SloDelta::default();
        for (sec, d) in &self.buckets {
            if *sec >= from && *sec <= now_s {
                total.frames_observed += d.frames_observed;
                total.frames_slow += d.frames_slow;
                total.frames_expected += d.frames_expected;
                total.frames_delivered += d.frames_delivered;
            }
        }
        total
    }

    /// Evaluates both objectives over both windows as of `now_s`.
    pub fn status(&self, now_s: u64) -> SloStatus {
        let windows = [self.fast_s, self.slow_s].map(|w| self.window_total(now_s, w));
        let burn = |bad: u64, total: u64, budget: f64| -> Option<f64> {
            (total > 0).then(|| (bad as f64 / total as f64) / budget.max(1e-12))
        };
        let p99 = self.spec.p99_ns.map(|_| WindowBurn {
            fast: burn(windows[0].frames_slow, windows[0].frames_observed, 0.01),
            slow: burn(windows[1].frames_slow, windows[1].frames_observed, 0.01),
        });
        let completeness = self.spec.completeness.map(|target| {
            let budget = 1.0 - target;
            let missing = |d: &SloDelta| d.frames_expected.saturating_sub(d.frames_delivered);
            WindowBurn {
                fast: burn(missing(&windows[0]), windows[0].frames_expected, budget),
                slow: burn(missing(&windows[1]), windows[1].frames_expected, budget),
            }
        });
        let alerting = p99.is_some_and(|b| b.over(self.threshold))
            || completeness.is_some_and(|b| b.over(self.threshold));
        SloStatus {
            p99,
            completeness,
            alerting,
        }
    }

    /// Publishes `status` into the metrics registry for `session`:
    /// `slo.burn_rate#session=<s>,slo=<obj>,window=<w>` gauges in
    /// milli-burn, plus `slo.alerting#session=<s>`. The exporter renders
    /// the `#…` suffix as Prometheus labels.
    pub fn publish(&self, session: &str, status: &SloStatus) {
        let set = |obj: &str, window: &str, burn: Option<f64>| {
            if let Some(b) = burn {
                let name = format!("slo.burn_rate#session={session},slo={obj},window={window}");
                crate::metrics::gauge(&name).set(milli_burn(b));
            }
        };
        if let Some(b) = status.p99 {
            set("p99", "fast", b.fast);
            set("p99", "slow", b.slow);
        }
        if let Some(b) = status.completeness {
            set("completeness", "fast", b.fast);
            set("completeness", "slow", b.slow);
        }
        crate::metrics::gauge(&format!("slo.alerting#session={session}"))
            .set(status.alerting as u64);
    }

    /// A serializable summary of `status` for ledger lines and reports.
    pub fn summarize(&self, status: &SloStatus) -> SloSummary {
        SloSummary {
            spec: self.spec.to_string(),
            p99_burn_fast: status.p99.and_then(|b| b.fast),
            p99_burn_slow: status.p99.and_then(|b| b.slow),
            completeness_burn_fast: status.completeness.and_then(|b| b.fast),
            completeness_burn_slow: status.completeness.and_then(|b| b.slow),
            alerting: status.alerting,
        }
    }
}

/// Burn expressed in gauge units: 1000 = burn 1.0 (saturating).
pub fn milli_burn(burn: f64) -> u64 {
    (burn * 1000.0).round().clamp(0.0, u64::MAX as f64) as u64
}

/// SLO state stamped into `ObsReport` (schema v4), ledger lines (schema
/// v3), and `/sessions` rows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloSummary {
    /// Canonical target spec (`p99=5ms,completeness=0.999`).
    pub spec: String,
    /// Latency burn over the fast window, if measured.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub p99_burn_fast: Option<f64>,
    /// Latency burn over the slow window.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub p99_burn_slow: Option<f64>,
    /// Completeness burn over the fast window.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub completeness_burn_fast: Option<f64>,
    /// Completeness burn over the slow window.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub completeness_burn_slow: Option<f64>,
    /// Whether the multi-window alert was raised.
    #[serde(default)]
    pub alerting: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_round_trips() {
        let spec = SloSpec::parse("p99=5ms,completeness=0.999").unwrap();
        assert_eq!(spec.p99_ns, Some(5_000_000));
        assert_eq!(spec.completeness, Some(0.999));
        assert_eq!(spec.to_string(), "p99=5ms,completeness=0.999");
        assert_eq!(SloSpec::parse(&spec.to_string()).unwrap(), spec);
        assert_eq!(SloSpec::parse("p99=250us").unwrap().p99_ns, Some(250_000));
        assert_eq!(
            SloSpec::parse("p99=2s").unwrap().p99_ns,
            Some(2_000_000_000)
        );
        assert!(SloSpec::parse("").is_err());
        assert!(SloSpec::parse("p42=5ms").is_err());
        assert!(SloSpec::parse("completeness=1.5").is_err());
        assert!(SloSpec::parse("p99=fast").is_err());
    }

    #[test]
    fn burn_rates_track_bad_fractions() {
        let mut e = SloEngine::with_windows(
            SloSpec::parse("p99=5ms,completeness=0.9").unwrap(),
            2,
            10,
            1.0,
        );
        // 100 frames, 1 slow → bad fraction 0.01 → burn exactly 1.0;
        // 100 expected, 95 delivered → 0.05 / 0.1 budget → burn 0.5.
        e.observe(
            5,
            SloDelta {
                frames_observed: 100,
                frames_slow: 1,
                frames_expected: 100,
                frames_delivered: 95,
            },
        );
        let s = e.status(5);
        let p99 = s.p99.unwrap();
        assert!((p99.fast.unwrap() - 1.0).abs() < 1e-9);
        assert!((p99.slow.unwrap() - 1.0).abs() < 1e-9);
        let c = s.completeness.unwrap();
        assert!((c.fast.unwrap() - 0.5).abs() < 1e-9);
        assert!(!s.alerting, "burn at 1.0 on p99 only is not over both");
    }

    #[test]
    fn multi_window_alert_needs_both_windows_burning() {
        let spec = SloSpec::parse("completeness=0.99").unwrap();
        let mut e = SloEngine::with_windows(spec, 2, 8, 1.0);
        // Old healthy traffic fills the slow window...
        for sec in 0..6 {
            e.observe(
                sec,
                SloDelta {
                    frames_expected: 100,
                    frames_delivered: 100,
                    ..Default::default()
                },
            );
        }
        // ...then a fresh spike of loss.
        e.observe(
            7,
            SloDelta {
                frames_expected: 100,
                frames_delivered: 50,
                ..Default::default()
            },
        );
        let s = e.status(7);
        let c = s.completeness.unwrap();
        assert!(c.fast.unwrap() > 1.0, "fast window sees the spike");
        assert!(
            c.slow.unwrap() > 1.0,
            "a 50% loss burns even the slow window here"
        );
        assert!(s.alerting);
        // A spike that the slow window dilutes below threshold: no alert.
        let mut e2 =
            SloEngine::with_windows(SloSpec::parse("completeness=0.5").unwrap(), 1, 60, 1.0);
        for sec in 0..50 {
            e2.observe(
                sec,
                SloDelta {
                    frames_expected: 100,
                    frames_delivered: 100,
                    ..Default::default()
                },
            );
        }
        e2.observe(
            50,
            SloDelta {
                frames_expected: 100,
                frames_delivered: 30,
                ..Default::default()
            },
        );
        let s2 = e2.status(50);
        let c2 = s2.completeness.unwrap();
        assert!(c2.fast.unwrap() > 1.0);
        assert!(c2.slow.unwrap() < 1.0);
        assert!(!s2.alerting, "fast-only burn must not alert");
    }

    #[test]
    fn buckets_slide_out_of_the_windows() {
        let mut e = SloEngine::with_windows(SloSpec::parse("p99=1ms").unwrap(), 2, 4, 1.0);
        e.observe(
            0,
            SloDelta {
                frames_observed: 10,
                frames_slow: 10,
                ..Default::default()
            },
        );
        assert!(e.status(0).p99.unwrap().fast.is_some());
        // Five seconds later both windows have slid past the burst.
        e.observe(5, SloDelta::default());
        let s = e.status(5);
        assert_eq!(s.p99.unwrap().fast, None);
        assert_eq!(s.p99.unwrap().slow, None);
    }

    #[test]
    fn publish_sets_labeled_gauges() {
        let _lock = crate::global_test_lock();
        crate::metrics::reset();
        let mut e = SloEngine::new(SloSpec::parse("p99=5ms").unwrap());
        e.observe(
            1,
            SloDelta {
                frames_observed: 10,
                frames_slow: 5,
                ..Default::default()
            },
        );
        let status = e.status(1);
        e.publish("s3", &status);
        let snap = crate::metrics::snapshot();
        let g = snap
            .gauges
            .iter()
            .find(|g| g.name == "slo.burn_rate#session=s3,slo=p99,window=fast")
            .expect("burn gauge registered");
        assert_eq!(g.value, 50_000, "0.5 bad / 0.01 budget = burn 50.0");
        let text = crate::export::prometheus_text();
        assert!(
            text.contains("slo_burn_rate{session=\"s3\",slo=\"p99\",window=\"fast\"}"),
            "{text}"
        );
        let summary = e.summarize(&status);
        assert_eq!(summary.spec, "p99=5ms");
        assert!(summary.alerting);
        let json = serde_json::to_string(&summary).unwrap();
        let back: SloSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summary);
    }
}
