//! Continuous cooperative CPU profiler: per-worker tag slots sampled by a
//! background thread into per-`(session, stage, method)` CPU tallies.
//!
//! The pipeline scheduler cannot afford a real profiler on the dispatch
//! path, so attribution is *cooperative*: every worker registers a
//! [`WorkerSlot`] holding its current tag (one `u32`), and stores the tag
//! of each task it dispatches — **one relaxed store per dispatch**, the
//! entire hot-path cost (pinned by the `obs_overhead` bench). A sampler
//! thread, started lazily at [`hz`] samples per second (the
//! `HTIMS_PROF_HZ` environment variable, default 97 — prime, so it does
//! not beat against millisecond-periodic work; `0` disables sampling
//! entirely), walks the slots and charges the wall-clock interval since
//! its previous pass to whatever tag each worker was running, giving a
//! statistical CPU profile with zero per-task bookkeeping.
//!
//! Tags are interned triples `(session, stage, method)` (see
//! [`intern_tag`]; `"-"` marks an absent dimension). Each tag also owns a
//! registry counter `pipeline.cpu_ns.<stage>[#session=<label>]`, updated
//! by the sampler, so `/metrics` exposes per-stage and per-tenant CPU
//! seconds without the method dimension (bounded cardinality); the full
//! triple survives in the folded-stack export
//! (`session;stage;method count`, loadable by inferno or speedscope) and
//! in the schema-versioned `profile.json` written by
//! [`write_profile`].

use crate::metrics::Counter;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Version stamp of the `profile.json` schema (and [`ProfSnapshot`]'s
/// serialized form). Bump on any breaking change to the layout.
pub const PROF_SCHEMA_VERSION: u32 = 1;

/// Hard cap on distinct tags; tag 0 means "idle" and tag 1 is the
/// overflow bucket every intern past the cap collapses into, so a
/// label-cardinality bug degrades the profile instead of growing memory.
const MAX_TAGS: usize = 4096;

/// The reserved overflow tag id (see [`MAX_TAGS`]).
const OVERFLOW_TAG: u32 = 1;

/// Placeholder for an absent tag dimension.
const NONE_DIM: &str = "-";

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One interned tag's identity and its per-stage registry counter.
struct TagInfo {
    session: &'static str,
    stage: &'static str,
    method: &'static str,
    cpu_counter: &'static Counter,
}

/// Per-tag sample tallies, indexed by tag id.
struct Tally {
    samples: AtomicU64,
    cpu_ns: AtomicU64,
}

/// The per-worker slot the sampler walks: the worker's current tag plus
/// its sampled busy/idle time. Slots are `'static` (leaked once, reused
/// across worker generations) so the dispatch-path store needs no guard.
pub struct WorkerSlot {
    active: AtomicBool,
    tag: AtomicU32,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
}

impl WorkerSlot {
    /// Stores the tag of the task this worker is about to run — the one
    /// relaxed store the scheduler pays per dispatch.
    #[inline]
    pub fn set_tag(&self, tag: u32) {
        self.tag.store(tag, Relaxed);
    }

    /// Marks the worker idle (about to park); attribution error is
    /// bounded by the queue-scan time because dispatch overwrites the
    /// tag without clearing it between back-to-back tasks.
    #[inline]
    pub fn clear_tag(&self) {
        self.tag.store(0, Relaxed);
    }
}

/// Keeps a [`WorkerSlot`] registered for the lifetime of a worker thread;
/// dropping it marks the slot idle and returns it to the reuse pool.
pub struct WorkerGuard {
    slot: &'static WorkerSlot,
}

impl WorkerGuard {
    /// The registered slot (store tags through this).
    pub fn slot(&self) -> &'static WorkerSlot {
        self.slot
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.slot.tag.store(0, Relaxed);
        self.slot.active.store(false, Relaxed);
    }
}

struct ProfState {
    /// `session\0stage\0method` → tag id, plus id-indexed infos
    /// (`infos[0]` is a placeholder for the idle tag).
    tags: Mutex<(HashMap<String, u32>, Vec<TagInfo>)>,
    tallies: Box<[Tally]>,
    workers: Mutex<Vec<&'static WorkerSlot>>,
}

fn state() -> &'static ProfState {
    static STATE: OnceLock<ProfState> = OnceLock::new();
    STATE.get_or_init(|| {
        let tallies: Vec<Tally> = (0..MAX_TAGS)
            .map(|_| Tally {
                samples: AtomicU64::new(0),
                cpu_ns: AtomicU64::new(0),
            })
            .collect();
        let state = ProfState {
            tags: Mutex::new((HashMap::new(), Vec::new())),
            tallies: tallies.into_boxed_slice(),
            workers: Mutex::new(Vec::new()),
        };
        {
            let mut tags = lock(&state.tags);
            // Index 0: the idle pseudo-tag (never sampled).
            tags.1.push(TagInfo {
                session: NONE_DIM,
                stage: "idle",
                method: NONE_DIM,
                cpu_counter: crate::metrics::counter("pipeline.cpu_ns.idle"),
            });
            // Index 1 (OVERFLOW_TAG): where intern collapses past the cap.
            tags.1.push(TagInfo {
                session: NONE_DIM,
                stage: "overflow",
                method: NONE_DIM,
                cpu_counter: crate::metrics::counter("pipeline.cpu_ns.overflow"),
            });
        }
        state
    })
}

/// Sampling frequency from `HTIMS_PROF_HZ` (default 97; `0` disables the
/// sampler — the dispatch-path tag store remains, inert). Parsed once.
pub fn hz() -> u32 {
    static HZ: OnceLock<u32> = OnceLock::new();
    *HZ.get_or_init(|| match std::env::var("HTIMS_PROF_HZ") {
        Ok(v) => v.trim().parse().unwrap_or(97),
        Err(_) => 97,
    })
}

/// Whether the sampler is configured to run (`hz() > 0`).
pub fn enabled() -> bool {
    hz() > 0
}

/// Interns a `(session, stage, method)` tag, returning its stable nonzero
/// id. Use `"-"` for an absent dimension. Idempotent and cheap enough for
/// setup paths (node spawn, batch submission) — **not** for per-task
/// paths, which should store a precomputed id. Past [`MAX_TAGS`] distinct
/// tags everything collapses into one overflow bucket.
pub fn intern_tag(session: &str, stage: &str, method: &str) -> u32 {
    let st = state();
    let key = format!("{session}\0{stage}\0{method}");
    let mut tags = lock(&st.tags);
    if let Some(&id) = tags.0.get(&key) {
        return id;
    }
    if tags.1.len() >= MAX_TAGS {
        return OVERFLOW_TAG;
    }
    let id = tags.1.len() as u32;
    let counter_name = if session == NONE_DIM {
        format!("pipeline.cpu_ns.{stage}")
    } else {
        format!("pipeline.cpu_ns.{stage}#session={session}")
    };
    tags.1.push(TagInfo {
        session: crate::intern(session),
        stage: crate::intern(stage),
        method: crate::intern(method),
        cpu_counter: crate::metrics::counter(&counter_name),
    });
    tags.0.insert(key, id);
    id
}

/// Registers the calling worker thread with the profiler (reusing a
/// retired slot when one exists), starts the sampler on first use, and
/// returns a guard that retires the slot when the thread exits.
pub fn register_worker() -> WorkerGuard {
    let st = state();
    let slot = {
        let mut workers = lock(&st.workers);
        match workers.iter().find(|s| !s.active.load(Relaxed)) {
            Some(slot) => {
                slot.busy_ns.store(0, Relaxed);
                slot.idle_ns.store(0, Relaxed);
                slot.tag.store(0, Relaxed);
                slot.active.store(true, Relaxed);
                *slot
            }
            None => {
                let slot: &'static WorkerSlot = Box::leak(Box::new(WorkerSlot {
                    active: AtomicBool::new(true),
                    tag: AtomicU32::new(0),
                    busy_ns: AtomicU64::new(0),
                    idle_ns: AtomicU64::new(0),
                }));
                workers.push(slot);
                slot
            }
        }
    };
    ensure_sampler();
    WorkerGuard { slot }
}

/// Starts the background sampler thread once, if sampling is enabled.
fn ensure_sampler() {
    static STARTED: OnceLock<()> = OnceLock::new();
    if !enabled() {
        return;
    }
    STARTED.get_or_init(|| {
        let period = Duration::from_nanos(1_000_000_000 / u64::from(hz()));
        std::thread::Builder::new()
            .name("obs-prof".into())
            .spawn(move || {
                crate::set_thread_name("obs-prof");
                let mut last = Instant::now();
                loop {
                    std::thread::sleep(period);
                    let now = Instant::now();
                    let elapsed = u64::try_from((now - last).as_nanos()).unwrap_or(u64::MAX);
                    last = now;
                    sample_now(elapsed);
                }
            })
            .expect("spawn profiler sampler");
    });
}

/// One sampling pass: charges `elapsed_ns` of wall-clock to every active
/// worker's current tag (or to its idle tally). The background sampler
/// calls this at [`hz`]; tests call it directly for determinism.
pub fn sample_now(elapsed_ns: u64) {
    let st = state();
    let workers = lock(&st.workers);
    let tags = lock(&st.tags);
    for slot in workers.iter() {
        if !slot.active.load(Relaxed) {
            continue;
        }
        let tag = slot.tag.load(Relaxed) as usize;
        if tag == 0 || tag >= tags.1.len() {
            slot.idle_ns.fetch_add(elapsed_ns, Relaxed);
            continue;
        }
        slot.busy_ns.fetch_add(elapsed_ns, Relaxed);
        st.tallies[tag].samples.fetch_add(1, Relaxed);
        st.tallies[tag].cpu_ns.fetch_add(elapsed_ns, Relaxed);
        tags.1[tag].cpu_counter.add(elapsed_ns);
    }
    crate::static_counter!("prof.sample_passes").incr();
}

/// One tag's accumulated samples in a [`ProfSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TagSample {
    /// Session label (`"-"` when unlabeled).
    pub session: String,
    /// Stage label.
    pub stage: String,
    /// Method label (`"-"` when not method-scoped).
    pub method: String,
    /// Sampler hits attributed to this tag.
    pub samples: u64,
    /// Wall-clock nanoseconds attributed to this tag.
    pub cpu_ns: u64,
}

/// One worker's sampled utilization in a [`ProfSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerSample {
    /// Nanoseconds sampled while running a tagged task.
    pub busy_ns: u64,
    /// Nanoseconds sampled while idle (parked or scanning).
    pub idle_ns: u64,
    /// Whether the slot still belongs to a live worker.
    pub active: bool,
}

/// Point-in-time capture of the profiler: per-tag CPU tallies plus
/// per-worker busy/idle time. Serializes as the `profile.json` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfSnapshot {
    /// [`PROF_SCHEMA_VERSION`] at capture time.
    pub schema_version: u32,
    /// Configured sampling frequency (0 = sampler disabled).
    pub hz: u32,
    /// Tags with at least one sample, sorted by descending `cpu_ns`.
    pub tags: Vec<TagSample>,
    /// Every registered worker slot, registration order.
    pub workers: Vec<WorkerSample>,
}

impl ProfSnapshot {
    /// Renders the snapshot as folded stacks — one
    /// `session;stage;method count` line per tag, the format inferno's
    /// `flamegraph.pl` descendants and speedscope load directly. The
    /// count is the sample tally (proportional to CPU time at a fixed
    /// sampling rate).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for t in &self.tags {
            if t.samples == 0 {
                continue;
            }
            out.push_str(&format!(
                "{};{};{} {}\n",
                t.session, t.stage, t.method, t.samples
            ));
        }
        out
    }

    /// The interval profile `after − self`, matching tags by identity —
    /// how `/profile?seconds=N` turns two cumulative snapshots into a
    /// windowed one. Tags absent from `self` count from zero.
    pub fn delta(&self, after: &ProfSnapshot) -> ProfSnapshot {
        let before: HashMap<(&str, &str, &str), (u64, u64)> = self
            .tags
            .iter()
            .map(|t| {
                (
                    (t.session.as_str(), t.stage.as_str(), t.method.as_str()),
                    (t.samples, t.cpu_ns),
                )
            })
            .collect();
        let mut tags: Vec<TagSample> = after
            .tags
            .iter()
            .map(|t| {
                let (s0, c0) = before
                    .get(&(t.session.as_str(), t.stage.as_str(), t.method.as_str()))
                    .copied()
                    .unwrap_or((0, 0));
                TagSample {
                    session: t.session.clone(),
                    stage: t.stage.clone(),
                    method: t.method.clone(),
                    samples: t.samples.saturating_sub(s0),
                    cpu_ns: t.cpu_ns.saturating_sub(c0),
                }
            })
            .filter(|t| t.samples > 0 || t.cpu_ns > 0)
            .collect();
        tags.sort_by_key(|t| std::cmp::Reverse(t.cpu_ns));
        let workers = after
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let (b0, i0) = self
                    .workers
                    .get(i)
                    .map(|w0| (w0.busy_ns, w0.idle_ns))
                    .unwrap_or((0, 0));
                WorkerSample {
                    busy_ns: w.busy_ns.saturating_sub(b0),
                    idle_ns: w.idle_ns.saturating_sub(i0),
                    active: w.active,
                }
            })
            .collect();
        ProfSnapshot {
            schema_version: after.schema_version,
            hz: after.hz,
            tags,
            workers,
        }
    }
}

/// Captures the current per-tag tallies and per-worker utilization.
pub fn snapshot() -> ProfSnapshot {
    let st = state();
    let tags_guard = lock(&st.tags);
    let mut tags: Vec<TagSample> = tags_guard
        .1
        .iter()
        .enumerate()
        .skip(1) // 0 is the idle placeholder
        .filter_map(|(id, info)| {
            let samples = st.tallies[id].samples.load(Relaxed);
            let cpu_ns = st.tallies[id].cpu_ns.load(Relaxed);
            (samples > 0 || cpu_ns > 0).then(|| TagSample {
                session: info.session.to_string(),
                stage: info.stage.to_string(),
                method: info.method.to_string(),
                samples,
                cpu_ns,
            })
        })
        .collect();
    tags.sort_by_key(|t| std::cmp::Reverse(t.cpu_ns));
    drop(tags_guard);
    let workers = lock(&st.workers)
        .iter()
        .map(|s| WorkerSample {
            busy_ns: s.busy_ns.load(Relaxed),
            idle_ns: s.idle_ns.load(Relaxed),
            active: s.active.load(Relaxed),
        })
        .collect();
    ProfSnapshot {
        schema_version: PROF_SCHEMA_VERSION,
        hz: hz(),
        tags,
        workers,
    }
}

/// Zeroes every tally and worker utilization counter in place (tag ids
/// and slots stay valid) — the start-of-profile reset. Registry
/// `pipeline.cpu_ns.*` counters are owned by [`crate::metrics`] and reset
/// with it, not here.
pub fn reset() {
    let st = state();
    for t in st.tallies.iter() {
        t.samples.store(0, Relaxed);
        t.cpu_ns.store(0, Relaxed);
    }
    for s in lock(&st.workers).iter() {
        s.busy_ns.store(0, Relaxed);
        s.idle_ns.store(0, Relaxed);
    }
}

/// Writes the current profile into `dir` as `profile.folded` (folded
/// stacks) and `profile.json` (the schema-versioned [`ProfSnapshot`]),
/// creating the directory if needed. Returns the snapshot it wrote.
pub fn write_profile(dir: &std::path::Path) -> std::io::Result<ProfSnapshot> {
    let snap = snapshot();
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("profile.folded"), snap.folded())?;
    let json = serde_json::to_string_pretty(&snap).expect("profile snapshot serializes");
    std::fs::write(dir.join("profile.json"), json)?;
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_distinct() {
        let a = intern_tag("s1", "deconvolve", "fwht");
        let b = intern_tag("s1", "deconvolve", "fwht");
        let c = intern_tag("s1", "deconvolve", "direct");
        let d = intern_tag("-", "deconvolve", "fwht");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert!(a > OVERFLOW_TAG);
    }

    #[test]
    fn sampling_attributes_to_the_current_tag() {
        let _lock = crate::global_test_lock();
        reset();
        let guard = register_worker();
        let tag = intern_tag("t0", "prof-test-stage", "m0");
        guard.slot().set_tag(tag);
        sample_now(1_000_000);
        sample_now(1_000_000);
        guard.slot().clear_tag();
        sample_now(500_000);
        let snap = snapshot();
        let t = snap
            .tags
            .iter()
            .find(|t| t.stage == "prof-test-stage" && t.session == "t0")
            .expect("sampled tag present");
        assert_eq!(t.samples, 2);
        assert_eq!(t.cpu_ns, 2_000_000);
        assert_eq!(t.method, "m0");
        // The worker's busy/idle split matches the passes above.
        let w = snap
            .workers
            .iter()
            .find(|w| w.active && w.busy_ns == 2_000_000)
            .expect("worker sampled busy");
        assert!(w.idle_ns >= 500_000);
        // Folded output carries the full triple.
        let folded = snap.folded();
        assert!(folded.contains("t0;prof-test-stage;m0 2"), "{folded}");
        // The per-stage registry counter saw the same nanoseconds.
        assert_eq!(
            crate::metrics::counter("pipeline.cpu_ns.prof-test-stage#session=t0").get(),
            2_000_000
        );
        drop(guard);
        reset();
    }

    #[test]
    fn retired_slots_are_reused_and_skipped() {
        let _lock = crate::global_test_lock();
        reset();
        let g1 = register_worker();
        let slot1 = g1.slot() as *const WorkerSlot;
        drop(g1);
        let g2 = register_worker();
        assert!(
            std::ptr::eq(slot1, g2.slot()),
            "retired slot is reused, not leaked again"
        );
        drop(g2);
        // A pass over only-retired slots attributes nothing.
        let before = snapshot();
        sample_now(1_000_000);
        let after = snapshot();
        let d = before.delta(&after);
        assert!(d.tags.is_empty(), "retired workers sampled: {:?}", d.tags);
        reset();
    }

    #[test]
    fn delta_and_reset_round_trip() {
        let _lock = crate::global_test_lock();
        reset();
        let guard = register_worker();
        let tag = intern_tag("-", "prof-delta-stage", "-");
        guard.slot().set_tag(tag);
        sample_now(100);
        let first = snapshot();
        sample_now(100);
        sample_now(100);
        guard.slot().clear_tag();
        let second = snapshot();
        let d = first.delta(&second);
        let t = d
            .tags
            .iter()
            .find(|t| t.stage == "prof-delta-stage")
            .expect("delta tag");
        assert_eq!(t.samples, 2);
        assert_eq!(t.cpu_ns, 200);
        assert_eq!(d.schema_version, PROF_SCHEMA_VERSION);
        drop(guard);
        reset();
        let cleared = snapshot();
        assert!(!cleared.tags.iter().any(|t| t.stage == "prof-delta-stage"));
    }

    #[test]
    fn profile_json_schema_round_trips() {
        let _lock = crate::global_test_lock();
        reset();
        let guard = register_worker();
        guard
            .slot()
            .set_tag(intern_tag("s9", "prof-json-stage", "mj"));
        sample_now(42);
        guard.slot().clear_tag();
        let dir = std::env::temp_dir().join(format!("htims-prof-test-{}", std::process::id()));
        let snap = write_profile(&dir).expect("write profile");
        assert_eq!(snap.schema_version, PROF_SCHEMA_VERSION);
        let json = std::fs::read_to_string(dir.join("profile.json")).unwrap();
        let back: ProfSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema_version, PROF_SCHEMA_VERSION);
        assert!(back.tags.iter().any(|t| t.stage == "prof-json-stage"));
        let folded = std::fs::read_to_string(dir.join("profile.folded")).unwrap();
        assert!(folded.contains("s9;prof-json-stage;mj 1"), "{folded}");
        let _ = std::fs::remove_dir_all(&dir);
        drop(guard);
        reset();
    }
}
