//! Background time-series sampler over the metrics registry.
//!
//! [`Sampler::start`] spawns one thread that snapshots every registered
//! instrument at a fixed interval into:
//!
//! * an in-memory ring of the most recent [`SamplePoint`]s (bounded by
//!   `ring_capacity`, oldest evicted first), and
//! * optionally an append-only JSONL file — one `SamplePoint` per line —
//!   for offline plotting and the CI scrape artifacts.
//!
//! Counters are recorded as `(value, delta)` pairs (delta since the
//! previous tick), so a consumer gets rates without keeping its own
//! history; histogram summaries carry exact `sum`/`count`, so
//! mean-over-interval is `Δsum / Δcount`. Stopping takes one final sample
//! first, so even a window shorter than the interval yields a point.
//!
//! When no sampler is running there is no cost anywhere: recording paths
//! are untouched and no thread exists.

use crate::metrics::{self, GaugeEntry, HistogramEntry};
use crate::trace;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::path::PathBuf;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How the sampler runs.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Time between samples.
    pub interval: Duration,
    /// Most recent samples kept in memory.
    pub ring_capacity: usize,
    /// Append-only JSONL sink (one [`SamplePoint`] per line), if any.
    pub jsonl_path: Option<PathBuf>,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(200),
            ring_capacity: 512,
            jsonl_path: None,
        }
    }
}

/// One counter at one tick: absolute value plus delta since the previous
/// tick (the rate numerator).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Registered name.
    pub name: String,
    /// Absolute value at this tick.
    pub value: u64,
    /// Increase since the previous tick (value itself on the first tick).
    pub delta: u64,
}

/// One tick of the whole registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Nanoseconds since the process trace epoch (monotonic; comparable
    /// with span timestamps in the same process).
    pub timestamp_ns: u64,
    /// Milliseconds since the Unix epoch (wall clock; joins across runs).
    pub unix_ms: u64,
    /// Every counter with its delta.
    pub counters: Vec<CounterSample>,
    /// Every gauge (value + high-water).
    pub gauges: Vec<GaugeEntry>,
    /// Every histogram summary (count/sum/min/max/mean/quantiles).
    pub histograms: Vec<HistogramEntry>,
}

/// A running sampler. Dropping without [`stop`](Sampler::stop) detaches
/// the thread (it keeps sampling until process exit); call `stop` for a
/// clean join and the final ring contents.
pub struct Sampler {
    stop_tx: mpsc::Sender<()>,
    handle: std::thread::JoinHandle<()>,
    ring: Arc<Mutex<VecDeque<SamplePoint>>>,
}

impl Sampler {
    /// Spawns the sampling thread. Fails only if the JSONL sink cannot be
    /// opened for append.
    pub fn start(cfg: SamplerConfig) -> std::io::Result<Self> {
        let mut sink = match &cfg.jsonl_path {
            Some(path) => Some(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ),
            None => None,
        };
        let ring = Arc::new(Mutex::new(VecDeque::with_capacity(
            cfg.ring_capacity.max(1),
        )));
        let ring_thread = ring.clone();
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let interval = cfg.interval.max(Duration::from_millis(1));
        let capacity = cfg.ring_capacity.max(1);
        // Baseline the counter deltas *before* spawning: everything the
        // caller records after `start()` returns is guaranteed to show up
        // in some tick's delta (taking the baseline on the sampler thread
        // would race with the caller's first increments).
        let mut prev: HashMap<String, u64> = metrics::snapshot()
            .counters
            .into_iter()
            .map(|c| (c.name, c.value))
            .collect();
        let handle = std::thread::Builder::new()
            .name("obs-sampler".to_string())
            .spawn(move || {
                loop {
                    let stopping = !matches!(
                        stop_rx.recv_timeout(interval),
                        Err(RecvTimeoutError::Timeout)
                    );
                    let point = take_sample(&mut prev);
                    if let Some(file) = sink.as_mut() {
                        let mut line = serde_json::to_string(&point).expect("sample serialization");
                        line.push('\n');
                        if let Err(e) = file.write_all(line.as_bytes()) {
                            // Best-effort: stop writing, keep sampling — but
                            // not silently. The drop is counted in the
                            // registry (so scrapes and reports show it), the
                            // `obs.sampler.sink_failed` gauge latches to 1 so
                            // the condition stays visible on every later
                            // `/metrics` scrape, and stderr is warned once
                            // per process.
                            crate::static_counter!("obs.sampler.sink_dropped").incr();
                            crate::static_gauge!("obs.sampler.sink_failed").set(1);
                            static WARNED: std::sync::Once = std::sync::Once::new();
                            WARNED.call_once(|| {
                                eprintln!(
                                    "warning: sampler JSONL sink failed ({e}); dropping the \
                                     sink and sampling to memory only \
                                     (obs.sampler.sink_dropped)"
                                );
                            });
                            sink = None;
                        }
                    }
                    let mut ring = ring_thread.lock().expect("sampler ring poisoned");
                    if ring.len() == capacity {
                        ring.pop_front();
                    }
                    ring.push_back(point);
                    drop(ring);
                    if stopping {
                        break;
                    }
                }
            })
            .expect("spawn obs-sampler thread");
        Ok(Self {
            stop_tx,
            handle,
            ring,
        })
    }

    /// The ring contents so far, oldest first.
    pub fn samples(&self) -> Vec<SamplePoint> {
        self.ring
            .lock()
            .expect("sampler ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Stops the thread (after one final sample) and returns the ring.
    pub fn stop(self) -> Vec<SamplePoint> {
        let _ = self.stop_tx.send(());
        self.handle.join().expect("sampler thread panicked");
        Arc::try_unwrap(self.ring)
            .map(|m| m.into_inner().expect("sampler ring poisoned").into())
            .unwrap_or_default()
    }
}

/// Snapshots the registry into one [`SamplePoint`], updating `prev` with
/// the counter values this tick observed.
fn take_sample(prev: &mut HashMap<String, u64>) -> SamplePoint {
    let snap = metrics::snapshot();
    let counters = snap
        .counters
        .into_iter()
        .map(|c| {
            let before = prev.insert(c.name.clone(), c.value).unwrap_or(0);
            CounterSample {
                delta: c.value.saturating_sub(before),
                name: c.name,
                value: c.value,
            }
        })
        .collect();
    SamplePoint {
        timestamp_ns: trace::now_ns(),
        unix_ms: unix_ms(),
        counters,
        gauges: snap.gauges,
        histograms: snap.histograms,
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before 1970).
pub(crate) fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_captures_deltas_and_bounds_ring() {
        let _lock = crate::global_test_lock();
        metrics::reset();
        let c = metrics::counter("test.sampler.ticks");
        let sampler = Sampler::start(SamplerConfig {
            interval: Duration::from_millis(5),
            ring_capacity: 4,
            jsonl_path: None,
        })
        .unwrap();
        for _ in 0..10 {
            c.add(3);
            std::thread::sleep(Duration::from_millis(4));
        }
        let samples = sampler.stop();
        assert!(!samples.is_empty());
        assert!(samples.len() <= 4, "ring not bounded: {}", samples.len());
        // Timestamps increase monotonically across the ring.
        for pair in samples.windows(2) {
            assert!(pair[0].timestamp_ns <= pair[1].timestamp_ns);
        }
        // The final sample (taken at stop) sees the final counter value,
        // and deltas never exceed the absolute value.
        let last = samples.last().unwrap();
        let tick = last
            .counters
            .iter()
            .find(|c| c.name == "test.sampler.ticks")
            .expect("counter sampled");
        assert_eq!(tick.value, 30);
        for s in &samples {
            for c in &s.counters {
                assert!(c.delta <= c.value, "{c:?}");
            }
        }
    }

    #[test]
    fn short_window_still_yields_a_sample() {
        let _lock = crate::global_test_lock();
        metrics::reset();
        let sampler = Sampler::start(SamplerConfig {
            interval: Duration::from_secs(3600),
            ring_capacity: 8,
            jsonl_path: None,
        })
        .unwrap();
        let samples = sampler.stop();
        assert_eq!(samples.len(), 1, "stop must take a final sample");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn failed_sink_write_is_counted_not_silent() {
        let _lock = crate::global_test_lock();
        metrics::reset();
        // /dev/full accepts the open but fails every write with ENOSPC —
        // exactly the mid-run sink failure we degrade from.
        let sampler = Sampler::start(SamplerConfig {
            interval: Duration::from_millis(5),
            ring_capacity: 8,
            jsonl_path: Some(PathBuf::from("/dev/full")),
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let samples = sampler.stop();
        assert!(!samples.is_empty(), "sampling must continue without a sink");
        let snap = metrics::snapshot();
        let dropped = snap
            .counters
            .iter()
            .find(|c| c.name == "obs.sampler.sink_dropped")
            .map(|c| c.value)
            .unwrap_or(0);
        assert_eq!(dropped, 1, "the sink is dropped exactly once");
        let failed = snap
            .gauges
            .iter()
            .find(|g| g.name == "obs.sampler.sink_failed")
            .map(|g| g.value);
        assert_eq!(
            failed,
            Some(1),
            "persistent sink failure must latch a gauge for scrapers"
        );
    }
}
