//! Minimal `std::net` HTTP server exposing the live registry.
//!
//! Zero-dependency on purpose (the repo is offline): one accept-loop
//! thread, blocking I/O, `Connection: close` per request. Three routes:
//!
//! * `GET /metrics` — Prometheus text exposition of every registered
//!   counter/gauge/histogram ([`crate::export::prometheus_text`]).
//! * `GET /report.json` — the current [`ObsReport`] built from a live
//!   snapshot (no spans: those belong to a bracketed `TraceSession`).
//! * `GET /healthz` — liveness probe, `ok`.
//!
//! This is an instrument-control-network exporter, not an internet-facing
//! server: bind it to loopback (the default in `htims serve`) unless the
//! scrape network is trusted.

use crate::export;
use crate::metrics;
use crate::session::{ObsReport, Provenance};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A running exporter. [`stop`](ObsServer::stop) shuts the accept loop
/// down cleanly; dropping without `stop` detaches it.
pub struct ObsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`; port 0 picks a free port)
    /// and starts serving. `provenance` stamps every `/report.json`.
    pub fn start(addr: &str, provenance: Provenance) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let started = Instant::now();
        let handle = std::thread::Builder::new()
            .name("obs-http".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // One request per connection, served inline: scrape
                    // traffic is one client every few seconds, not load.
                    let _ = serve_one(stream, &provenance, started);
                }
            })
            .expect("spawn obs-http thread");
        Ok(Self {
            addr: local,
            shutdown,
            handle,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Wake the blocking accept with one throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = self.handle.join();
    }
}

/// Reads one request line, routes it, writes one response.
fn serve_one(stream: TcpStream, provenance: &Provenance, started: Instant) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients don't see a reset mid-send.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let mut stream = reader.into_inner();

    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
    }
    match path.split('?').next().unwrap_or("") {
        "/metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &export::prometheus_text(),
        ),
        "/report.json" => {
            let report = ObsReport {
                provenance: provenance.clone(),
                wall_seconds: started.elapsed().as_secs_f64(),
                metrics: metrics::snapshot(),
                threads: Vec::new(),
                spans: Vec::new(),
            };
            let mut body = serde_json::to_string_pretty(&report).expect("report serialization");
            body.push('\n');
            respond(&mut stream, 200, "application/json", &body)
        }
        "/healthz" => respond(&mut stream, 200, "text/plain; charset=utf-8", "ok\n"),
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        (status, head.to_string(), body.to_string())
    }

    #[test]
    fn endpoints_serve_metrics_report_and_health() {
        let _lock = crate::global_test_lock();
        metrics::reset();
        metrics::counter("test.http.requests").add(2);
        let server = ObsServer::start("127.0.0.1:0", Provenance::collect(4, 32)).unwrap();
        let addr = server.local_addr();

        let (status, _, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, head, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("test_http_requests 2"), "{body}");

        let (status, _, body) = get(addr, "/report.json");
        assert_eq!(status, 200);
        let report: ObsReport = serde_json::from_str(&body).unwrap();
        assert_eq!(report.provenance.panel_width, 32);
        assert_eq!(report.metrics.counter("test.http.requests"), Some(2));
        assert!(report.spans.is_empty());

        let (status, _, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        server.stop();
    }
}
