//! Minimal `std::net` HTTP server exposing the live registry.
//!
//! Zero-dependency on purpose (the repo is offline): one accept-loop
//! thread, blocking I/O, `Connection: close` per request. Routes:
//!
//! * `GET /metrics` — Prometheus text exposition of every registered
//!   counter/gauge/histogram ([`crate::export::prometheus_text`]).
//! * `GET /report.json` — the current [`ObsReport`] built from a live
//!   snapshot (no spans: those belong to a bracketed `TraceSession`).
//! * `GET /healthz` — liveness probe: a small JSON document carrying
//!   uptime, artifact schema versions, and git-describe provenance, so
//!   fleet probes can detect version skew instead of a bare `ok`.
//! * `GET /profile?seconds=N` — a windowed CPU profile from
//!   [`crate::prof`]: snapshots the sampler tallies, sleeps `N` seconds
//!   (default 2, capped at 30), and serves the delta as JSON with a
//!   folded-stack rendering inline. The wait happens on the accept loop
//!   (one request per connection), so concurrent scrapes queue behind
//!   it — acceptable for an operator tool, worth knowing.
//!
//! This is an instrument-control-network exporter, not an internet-facing
//! server: bind it to loopback (the default in `htims serve`) unless the
//! scrape network is trusted.

use crate::export;
use crate::metrics;
use crate::session::{ObsReport, Provenance};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Builds the `/sessions` response body on demand. Injected by the
/// embedding binary (the session manager lives above this crate), so the
/// exporter stays dependency-free; the closure returns a complete JSON
/// document.
pub type SessionsProvider = Arc<dyn Fn() -> String + Send + Sync>;

/// A running exporter. [`stop`](ObsServer::stop) shuts the accept loop
/// down cleanly; dropping without `stop` detaches it.
pub struct ObsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"`; port 0 picks a free port)
    /// and starts serving. `provenance` stamps every `/report.json`.
    /// `GET /sessions` answers 404; use
    /// [`start_with_sessions`](Self::start_with_sessions) to wire it.
    pub fn start(addr: &str, provenance: Provenance) -> std::io::Result<Self> {
        Self::serve(addr, provenance, None)
    }

    /// [`start`](Self::start), plus a `GET /sessions` route serving
    /// whatever JSON `sessions` returns at request time (the live
    /// per-session status table of a multi-tenant serve).
    pub fn start_with_sessions(
        addr: &str,
        provenance: Provenance,
        sessions: SessionsProvider,
    ) -> std::io::Result<Self> {
        Self::serve(addr, provenance, Some(sessions))
    }

    fn serve(
        addr: &str,
        provenance: Provenance,
        sessions: Option<SessionsProvider>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let started = Instant::now();
        let handle = std::thread::Builder::new()
            .name("obs-http".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if flag.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // One request per connection, served inline: scrape
                    // traffic is one client every few seconds, not load.
                    let _ = serve_one(stream, &provenance, sessions.as_ref(), started);
                }
            })
            .expect("spawn obs-http thread");
        Ok(Self {
            addr: local,
            shutdown,
            handle,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Wake the blocking accept with one throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = self.handle.join();
    }
}

/// Total bytes of request line + headers a client may send. Scrape
/// requests are a few hundred bytes; anything near this cap is garbage
/// or abuse, and an unbounded `read_line` would buffer it all.
const MAX_REQUEST_BYTES: u64 = 8 * 1024;

/// Reads one request line, routes it, writes one response.
fn serve_one(
    mut stream: TcpStream,
    provenance: &Provenance,
    sessions: Option<&SessionsProvider>,
    started: Instant,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = std::io::Read::take(BufReader::new(stream.try_clone()?), MAX_REQUEST_BYTES);
    let mut request_line = String::new();
    // Malformed input is a client error, not a server error: non-UTF-8
    // bytes (read_line fails), an empty connection, or a request line
    // truncated by the size cap all get a 400, never an unbounded buffer.
    let malformed = match reader.read_line(&mut request_line) {
        Err(_) | Ok(0) => true,
        Ok(_) => !request_line.ends_with('\n'),
    };
    // Drain remaining headers (still under the cap) so well-behaved
    // clients don't see a reset mid-send; give up on garbage or EOF.
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Err(_) | Ok(0) => break,
            Ok(_) if header.trim_end().is_empty() || !header.ends_with('\n') => break,
            Ok(_) => {}
        }
    }

    let mut parts = request_line.split_whitespace();
    let (method, path, version) = (
        parts.next().unwrap_or(""),
        parts.next().unwrap_or(""),
        parts.next().unwrap_or(""),
    );
    if malformed || method.is_empty() || path.is_empty() || !version.starts_with("HTTP/") {
        let r = respond(
            &mut stream,
            400,
            "text/plain; charset=utf-8",
            "bad request\n",
        );
        // Discard whatever else the client streamed (bounded, fixed
        // scratch) so it reads the 400 instead of a connection reset.
        let mut inner = reader.into_inner();
        let mut scratch = [0u8; 4096];
        let mut discarded: u64 = 0;
        while discarded < (1 << 20) {
            match std::io::Read::read(&mut inner, &mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(n) => discarded += n as u64,
            }
        }
        return r;
    }
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
    }
    let (route, query) = match path.split_once('?') {
        Some((r, q)) => (r, q),
        None => (path, ""),
    };
    match route {
        "/metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &export::prometheus_text(),
        ),
        "/report.json" => {
            let report = ObsReport {
                provenance: provenance.clone(),
                wall_seconds: started.elapsed().as_secs_f64(),
                metrics: metrics::snapshot(),
                threads: Vec::new(),
                spans: Vec::new(),
                slo: None,
            };
            let mut body = serde_json::to_string_pretty(&report).expect("report serialization");
            body.push('\n');
            respond(&mut stream, 200, "application/json", &body)
        }
        "/healthz" => {
            let health = serde_json::json!({
                "status": "ok",
                "uptime_seconds": started.elapsed().as_secs_f64(),
                "git_describe": provenance.git_describe,
                "schema_versions": serde_json::json!({
                    "obs": crate::session::OBS_SCHEMA_VERSION,
                    "flight": crate::flight::FLIGHT_SCHEMA_VERSION,
                    "profile": crate::prof::PROF_SCHEMA_VERSION,
                }),
            });
            let mut body = serde_json::to_string(&health).expect("health serialization");
            body.push('\n');
            respond(&mut stream, 200, "application/json", &body)
        }
        "/profile" => {
            let seconds = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("seconds="))
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(2.0)
                .clamp(0.0, 30.0);
            let before = crate::prof::snapshot();
            if seconds > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(seconds));
            }
            let window = before.delta(&crate::prof::snapshot());
            let payload = serde_json::json!({
                "schema_version": crate::prof::PROF_SCHEMA_VERSION,
                "hz": window.hz,
                "seconds": seconds,
                "folded": window.folded(),
                "profile": window,
            });
            let mut body = serde_json::to_string_pretty(&payload).expect("profile serialization");
            body.push('\n');
            respond(&mut stream, 200, "application/json", &body)
        }
        "/sessions" => match sessions {
            Some(provider) => {
                let mut body = provider();
                if !body.ends_with('\n') {
                    body.push('\n');
                }
                respond(&mut stream, 200, "application/json", &body)
            }
            None => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
        },
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        (status, head.to_string(), body.to_string())
    }

    #[test]
    fn endpoints_serve_metrics_report_and_health() {
        let _lock = crate::global_test_lock();
        metrics::reset();
        metrics::counter("test.http.requests").add(2);
        let server = ObsServer::start("127.0.0.1:0", Provenance::collect(4, 32)).unwrap();
        let addr = server.local_addr();

        let (status, _, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        let health: serde_json::Value =
            serde_json::from_str(body.trim_end()).expect("healthz is JSON");
        assert_eq!(health.field("status").as_str(), Some("ok"));
        assert!(health.field("uptime_seconds").as_f64().unwrap() >= 0.0);
        assert!(health.field("git_describe").as_str().is_some());
        let versions = health.field("schema_versions");
        assert_eq!(
            versions.field("obs").as_u64(),
            Some(crate::session::OBS_SCHEMA_VERSION)
        );
        assert_eq!(
            versions.field("profile").as_u64(),
            Some(u64::from(crate::prof::PROF_SCHEMA_VERSION))
        );

        let (status, head, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("test_http_requests 2"), "{body}");

        let (status, _, body) = get(addr, "/report.json");
        assert_eq!(status, 200);
        let report: ObsReport = serde_json::from_str(&body).unwrap();
        assert_eq!(report.provenance.panel_width, 32);
        assert_eq!(report.metrics.counter("test.http.requests"), Some(2));
        assert!(report.spans.is_empty());

        let (status, _, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        server.stop();
    }

    #[test]
    fn sessions_route_serves_injected_json_or_404() {
        let _lock = crate::global_test_lock();
        metrics::reset();
        // Without a provider the route does not exist.
        let server = ObsServer::start("127.0.0.1:0", Provenance::collect(1, 32)).unwrap();
        let (status, _, _) = get(server.local_addr(), "/sessions");
        assert_eq!(status, 404);
        server.stop();

        // With one, it serves whatever the provider says *now*.
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let counted = hits.clone();
        let provider: SessionsProvider = Arc::new(move || {
            let n = counted.fetch_add(1, Ordering::Relaxed) + 1;
            format!("{{\"sessions\":[],\"scrapes\":{n}}}")
        });
        let server =
            ObsServer::start_with_sessions("127.0.0.1:0", Provenance::collect(1, 32), provider)
                .unwrap();
        let addr = server.local_addr();
        let (status, head, body) = get(addr, "/sessions");
        assert_eq!(status, 200);
        assert!(head.contains("application/json"), "{head}");
        assert_eq!(body, "{\"sessions\":[],\"scrapes\":1}\n");
        let (_, _, body) = get(addr, "/sessions");
        assert_eq!(
            body, "{\"sessions\":[],\"scrapes\":2}\n",
            "live, not cached"
        );
        server.stop();
    }

    #[test]
    fn profile_endpoint_serves_a_windowed_snapshot() {
        let _lock = crate::global_test_lock();
        metrics::reset();
        crate::prof::reset();
        let server = ObsServer::start("127.0.0.1:0", Provenance::collect(1, 32)).unwrap();
        let addr = server.local_addr();
        // seconds=0: snapshot-delta of an idle profiler — valid, empty.
        let (status, head, body) = get(addr, "/profile?seconds=0");
        assert_eq!(status, 200);
        assert!(head.contains("application/json"), "{head}");
        let v: serde_json::Value = serde_json::from_str(body.trim_end()).unwrap();
        assert_eq!(
            v.field("schema_version").as_u64(),
            Some(u64::from(crate::prof::PROF_SCHEMA_VERSION))
        );
        assert!(v.field("folded").as_str().is_some());
        assert!(matches!(
            v.field("profile").field("tags"),
            serde_json::Value::Array(_)
        ));
        // A negative window clamps to zero instead of erroring.
        let (status, _, _) = get(addr, "/profile?x=1&seconds=-5");
        assert_eq!(status, 200);
        server.stop();
    }

    /// Sends raw bytes and returns the response status (0 when the server
    /// closed without a status line).
    fn send_raw(addr: SocketAddr, bytes: &[u8]) -> u16 {
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(bytes);
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut raw = Vec::new();
        let _ = s.read_to_end(&mut raw);
        String::from_utf8_lossy(&raw)
            .split_whitespace()
            .nth(1)
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    }

    #[test]
    fn malformed_and_oversized_requests_get_400_not_a_buffer() {
        let _lock = crate::global_test_lock();
        metrics::reset();
        let server = ObsServer::start("127.0.0.1:0", Provenance::collect(1, 32)).unwrap();
        let addr = server.local_addr();

        // Non-UTF-8 garbage in the request line.
        assert_eq!(send_raw(addr, b"\xff\xfe\x00garbage\r\n\r\n"), 400);
        // A structurally invalid request line (no path, no version).
        assert_eq!(send_raw(addr, b"NONSENSE\r\n\r\n"), 400);
        // Missing HTTP version.
        assert_eq!(send_raw(addr, b"GET /metrics\r\n\r\n"), 400);
        // A request line far over the size cap: rejected, not buffered.
        let mut huge = b"GET /".to_vec();
        huge.extend(std::iter::repeat_n(b'a', 64 * 1024));
        huge.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert_eq!(send_raw(addr, &huge), 400);
        // Wrong method still gets its own status.
        assert_eq!(send_raw(addr, b"POST /metrics HTTP/1.1\r\n\r\n"), 405);
        // And the server still serves a well-formed request afterwards.
        let (status, _, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        server.stop();
    }
}
