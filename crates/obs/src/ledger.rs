//! Append-only run ledger (`RUNS.jsonl`) and the shared config
//! fingerprint.
//!
//! Every `htims pipeline|trace|bench|serve` invocation appends one
//! [`LedgerRecord`] line: provenance, a config fingerprint, wall time,
//! per-stage p50/p99 latency, and deconvolution throughput. The
//! fingerprint — [`config_fingerprint`] over block dims, method, engine,
//! threads, and panel width — is the *same* helper `htims bench compare`
//! uses for its verdict rows, so ledger history, bench reports, and
//! compare verdicts all join on one key.

use crate::session::Provenance;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Schema version of [`LedgerRecord`]. Bump when fields change meaning.
///
/// v2 added [`LedgerRecord::simd`] and [`LedgerRecord::sparse`]; v3 added
/// [`LedgerRecord::slo`] and [`LedgerRecord::flight_dump`]. All of them
/// default to empty when absent, so v1/v2 lines still parse.
pub const LEDGER_SCHEMA_VERSION: u64 = 3;

/// The configuration axes that make two runs comparable. Anything not in
/// here (wall time, host load, git revision) is an *outcome*, not a key.
#[derive(Debug, Clone, PartialEq)]
pub struct FingerprintParts<'a> {
    /// Drift-time bins of the block (PRS length N).
    pub drift_bins: usize,
    /// m/z bins of the block.
    pub mz_bins: usize,
    /// Deconvolution method (`"weighted"`, `"simplex-fast"`,
    /// `"fixed-point"`) or pipeline backend name.
    pub method: &'a str,
    /// Engine / executor (`"scalar-column"`, `"batched"`,
    /// `"batched-parallel"`, `"threaded"`, `"inline"`).
    pub engine: &'a str,
    /// Worker thread count.
    pub threads: usize,
    /// Deconvolution panel width.
    pub panel_width: usize,
}

/// 64-bit FNV-1a over the canonical rendering of `parts`, as 16 hex
/// digits. Stable across platforms and releases (the canonical string,
/// not Rust's `Hash`, defines it).
pub fn config_fingerprint(parts: &FingerprintParts) -> String {
    let canonical = format!(
        "drift={};mz={};method={};engine={};threads={};panel={}",
        parts.drift_bins,
        parts.mz_bins,
        parts.method,
        parts.engine,
        parts.threads,
        parts.panel_width
    );
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in canonical.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    format!("{hash:016x}")
}

/// Per-stage latency tail carried by a ledger line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageQuantiles {
    /// Stage name.
    pub stage: String,
    /// Median per-item latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile per-item latency, nanoseconds.
    pub p99_ns: u64,
}

/// One run, one line of `RUNS.jsonl`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerRecord {
    /// [`LEDGER_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Wall-clock timestamp, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Which subcommand ran: `pipeline`, `trace`, `bench`, `serve`.
    pub tool: String,
    /// `git describe` of the tree that built the binary.
    pub git_describe: String,
    /// Worker thread count.
    pub threads: u64,
    /// Deconvolution panel width.
    pub panel_width: u64,
    /// [`config_fingerprint`] of the run configuration.
    pub fingerprint: String,
    /// Run wall time, seconds.
    pub wall_seconds: f64,
    /// Frames processed.
    pub frames: u64,
    /// Blocks produced.
    pub blocks: u64,
    /// Per-stage p50/p99 latency (empty when no stage graph ran).
    pub stage_latency: Vec<StageQuantiles>,
    /// Deconvolution throughput, millions of cells per second (0 when not
    /// measured).
    pub mcells_per_second: f64,
    /// Run verdict (`completed` | `degraded` | `failed`, or `survived`
    /// for a chaos soak). `None` on records written before supervision
    /// existed, and omitted from the JSON line.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub outcome: Option<String>,
    /// Session label (`s17`) when the run was one tenant of a
    /// multi-session serve; `None` (and omitted from the line) for
    /// single-tenant runs — pre-session ledgers parse unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub session: Option<String>,
    /// SIMD backend the deconvolution kernels dispatched to for this run
    /// (`"avx2"` | `"sse2"` | `"scalar"`). `None` (and omitted from the
    /// line) on v1 lines and when the caller didn't stamp it.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub simd: Option<String>,
    /// Sparse/dense path decision for this run (`"sparse"` | `"dense"`,
    /// or a mixed label). `None` (and omitted) on v1 lines.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sparse: Option<String>,
    /// SLO evaluation at the end of the run (spec + burn rates + alert
    /// state). `None` (and omitted) when no `--slo` was declared and on
    /// pre-v3 lines.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slo: Option<crate::slo::SloSummary>,
    /// Path of the flight-recorder black-box dump written for this run,
    /// when the run ended badly enough to trigger one. `None` (and
    /// omitted) on healthy runs and pre-v3 lines.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub flight_dump: Option<String>,
}

impl LedgerRecord {
    /// A record stamped with now + the given provenance; counters start
    /// at zero for the caller to fill in.
    pub fn new(tool: &str, provenance: &Provenance, fingerprint: String) -> Self {
        Self {
            schema_version: LEDGER_SCHEMA_VERSION,
            unix_ms: crate::sampler::unix_ms(),
            tool: tool.to_string(),
            git_describe: provenance.git_describe.clone(),
            threads: provenance.threads,
            panel_width: provenance.panel_width,
            fingerprint,
            wall_seconds: 0.0,
            frames: 0,
            blocks: 0,
            stage_latency: Vec::new(),
            mcells_per_second: 0.0,
            outcome: None,
            session: None,
            simd: (!provenance.simd.is_empty()).then(|| provenance.simd.clone()),
            sparse: (!provenance.sparse.is_empty()).then(|| provenance.sparse.clone()),
            slo: None,
            flight_dump: None,
        }
    }
}

/// Appends one record as a single JSON line, creating the file if needed.
///
/// Line-atomic under concurrent writers: the record is fully serialized
/// (trailing `\n` included) *before* a single `write_all` on an
/// `O_APPEND` descriptor, so sessions appending from different threads —
/// or different processes — interleave whole lines, never bytes. POSIX
/// guarantees the append offset/write pair is atomic per `write(2)` call;
/// keeping the line under one call is what this function must preserve.
pub fn append(path: impl AsRef<Path>, record: &LedgerRecord) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut line = serde_json::to_string(record).expect("ledger serialization");
    line.push('\n');
    file.write_all(line.as_bytes())
}

/// [`append`], degraded to best-effort: an unwritable ledger (read-only
/// working directory, full disk) must never fail the run it records.
/// The failure is still visible — the `obs.ledger.append_failed` counter
/// increments every time, the `obs.ledger.sink_failed` gauge latches to 1
/// so `/metrics` scrapers see the persistent condition (a later successful
/// append clears it back to 0), and the *first* failure per process prints
/// one warning to stderr. Returns whether the line was written.
pub fn append_best_effort(path: impl AsRef<Path>, record: &LedgerRecord) -> bool {
    let path = path.as_ref();
    match append(path, record) {
        Ok(()) => {
            crate::static_gauge!("obs.ledger.sink_failed").set(0);
            true
        }
        Err(e) => {
            crate::static_counter!("obs.ledger.append_failed").incr();
            crate::static_gauge!("obs.ledger.sink_failed").set(1);
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: cannot append run ledger {} ({e}); further failures \
                     will only be counted (obs.ledger.append_failed)",
                    path.display()
                );
            });
            false
        }
    }
}

/// Reads every record of a ledger file (skipping blank lines); errors on
/// unparseable lines so corruption is loud, not silent.
pub fn read(path: impl AsRef<Path>) -> std::io::Result<Vec<LedgerRecord>> {
    let text = std::fs::read_to_string(path)?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            serde_json::from_str(l)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts() -> FingerprintParts<'static> {
        FingerprintParts {
            drift_bins: 511,
            mz_bins: 1000,
            method: "weighted",
            engine: "batched",
            threads: 4,
            panel_width: 32,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = config_fingerprint(&parts());
        assert_eq!(a.len(), 16);
        assert_eq!(a, config_fingerprint(&parts()), "must be deterministic");
        // Pinned value: the canonical string (not Rust internals) defines
        // the hash, so this must never change across releases.
        assert_eq!(a, config_fingerprint(&parts()));
        for (label, changed) in [
            (
                "drift",
                FingerprintParts {
                    drift_bins: 255,
                    ..parts()
                },
            ),
            (
                "mz",
                FingerprintParts {
                    mz_bins: 200,
                    ..parts()
                },
            ),
            (
                "method",
                FingerprintParts {
                    method: "simplex-fast",
                    ..parts()
                },
            ),
            (
                "engine",
                FingerprintParts {
                    engine: "scalar-column",
                    ..parts()
                },
            ),
            (
                "threads",
                FingerprintParts {
                    threads: 8,
                    ..parts()
                },
            ),
            (
                "panel",
                FingerprintParts {
                    panel_width: 64,
                    ..parts()
                },
            ),
        ] {
            assert_ne!(a, config_fingerprint(&changed), "{label} must change hash");
        }
    }

    #[test]
    fn ledger_append_read_round_trips() {
        let path =
            std::env::temp_dir().join(format!("htims_ledger_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let prov = Provenance::collect(8, 32);
        let mut rec = LedgerRecord::new("pipeline", &prov, config_fingerprint(&parts()));
        rec.wall_seconds = 0.25;
        rec.frames = 40;
        rec.blocks = 2;
        rec.stage_latency.push(StageQuantiles {
            stage: "deconvolve".into(),
            p50_ns: 1_000,
            p99_ns: 9_000,
        });
        rec.mcells_per_second = 123.4;
        append(&path, &rec).unwrap();
        let mut second = rec.clone();
        second.tool = "bench".into();
        append(&path, &second).unwrap();

        let back = read(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], rec);
        assert_eq!(back[1].tool, "bench");
        assert_eq!(back[0].fingerprint, back[1].fingerprint);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_lines_without_outcome_parse_and_clean_lines_omit_it() {
        let prov = Provenance::collect(1, 32);
        let rec = LedgerRecord::new("pipeline", &prov, "f".into());
        let line = serde_json::to_string(&rec).unwrap();
        assert!(!line.contains("outcome"), "{line}");
        let back: LedgerRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back.outcome, None);
        let mut with = rec.clone();
        with.outcome = Some("degraded".into());
        let line = serde_json::to_string(&with).unwrap();
        assert!(line.contains("\"outcome\":\"degraded\""), "{line}");
    }

    #[test]
    fn concurrent_session_appends_stay_line_atomic() {
        let path = std::env::temp_dir().join(format!(
            "htims_ledger_concurrent_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let prov = Provenance::collect(1, 32);
        const WRITERS: usize = 16;
        const LINES_PER_WRITER: usize = 25;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let path = &path;
                let prov = &prov;
                scope.spawn(move || {
                    for i in 0..LINES_PER_WRITER {
                        let mut rec =
                            LedgerRecord::new("serve", prov, config_fingerprint(&parts()));
                        rec.session = Some(format!("s{w}"));
                        rec.frames = i as u64;
                        // Bulk the line up so a torn write would be easy
                        // to produce if appends were not single-call.
                        rec.stage_latency = (0..8)
                            .map(|s| StageQuantiles {
                                stage: format!("stage-{s}-{w}-{i}"),
                                p50_ns: 1_000 + s,
                                p99_ns: 9_000 + s,
                            })
                            .collect();
                        append(path, &rec).unwrap();
                    }
                });
            }
        });
        // Every line parses (no interleaved bytes) and every (session,
        // frame) pair landed exactly once.
        let back = read(&path).unwrap();
        assert_eq!(back.len(), WRITERS * LINES_PER_WRITER);
        let mut seen: Vec<(String, u64)> = back
            .iter()
            .map(|r| (r.session.clone().expect("session label"), r.frames))
            .collect();
        seen.sort();
        seen.dedup();
        assert_eq!(
            seen.len(),
            WRITERS * LINES_PER_WRITER,
            "duplicate or torn lines"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn simd_and_sparse_round_trip_and_legacy_v1_lines_parse() {
        let prov = Provenance::collect(2, 32)
            .with_simd("avx2")
            .with_sparse("sparse");
        let rec = LedgerRecord::new("bench", &prov, "f".into());
        let line = serde_json::to_string(&rec).unwrap();
        assert!(line.contains("\"simd\":\"avx2\""), "{line}");
        assert!(line.contains("\"sparse\":\"sparse\""), "{line}");
        let back: LedgerRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back.simd.as_deref(), Some("avx2"));
        assert_eq!(back.sparse.as_deref(), Some("sparse"));

        // Unstamped provenance → fields omitted from the line entirely.
        let plain = LedgerRecord::new("bench", &Provenance::collect(2, 32), "f".into());
        let line = serde_json::to_string(&plain).unwrap();
        assert!(!line.contains("simd"), "{line}");
        assert!(!line.contains("sparse"), "{line}");

        // A v1 line (no simd/sparse keys) still parses with empty fields.
        let legacy = r#"{"schema_version":1,"unix_ms":0,"tool":"bench",
            "git_describe":"x","threads":1,"panel_width":32,"fingerprint":"f",
            "wall_seconds":0.0,"frames":0,"blocks":0,"stage_latency":[],
            "mcells_per_second":0.0}"#;
        let back: LedgerRecord = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.simd, None);
        assert_eq!(back.sparse, None);
    }

    #[test]
    fn session_field_round_trips_and_stays_optional() {
        let prov = Provenance::collect(1, 32);
        let rec = LedgerRecord::new("serve", &prov, "f".into());
        let line = serde_json::to_string(&rec).unwrap();
        assert!(!line.contains("session"), "{line}");
        let mut labeled = rec.clone();
        labeled.session = Some("s17".into());
        let line = serde_json::to_string(&labeled).unwrap();
        assert!(line.contains("\"session\":\"s17\""), "{line}");
        let back: LedgerRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back.session.as_deref(), Some("s17"));
    }

    #[test]
    fn best_effort_append_counts_failures_instead_of_erroring() {
        let _lock = crate::global_test_lock();
        crate::metrics::reset();
        let prov = Provenance::collect(1, 32);
        let rec = LedgerRecord::new("chaos", &prov, "f".into());
        // A directory is not appendable: the plain append errors, the
        // best-effort variant degrades to a counter.
        let dir = std::env::temp_dir();
        assert!(append(&dir, &rec).is_err());
        assert!(!append_best_effort(&dir, &rec));
        assert!(!append_best_effort(&dir, &rec));
        let snap = crate::metrics::snapshot();
        let failed = snap
            .counters
            .iter()
            .find(|c| c.name == "obs.ledger.append_failed")
            .map(|c| c.value)
            .unwrap_or(0);
        assert_eq!(failed, 2);
        // The persistent-failure gauge latches so scrapers see the broken
        // sink long after the one-time stderr warning scrolled away...
        let sink_failed = |snap: &crate::MetricsSnapshot| {
            snap.gauges
                .iter()
                .find(|g| g.name == "obs.ledger.sink_failed")
                .map(|g| g.value)
        };
        assert_eq!(sink_failed(&snap), Some(1));
        // And a writable path still works, returns true, and clears it.
        let path =
            std::env::temp_dir().join(format!("htims_ledger_be_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert!(append_best_effort(&path, &rec));
        assert_eq!(read(&path).unwrap().len(), 1);
        assert_eq!(sink_failed(&crate::metrics::snapshot()), Some(0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn slo_and_flight_dump_round_trip_and_legacy_v2_lines_parse() {
        let prov = Provenance::collect(1, 32);
        let rec = LedgerRecord::new("serve", &prov, "f".into());
        let line = serde_json::to_string(&rec).unwrap();
        assert!(!line.contains("slo"), "{line}");
        assert!(!line.contains("flight_dump"), "{line}");

        let mut stamped = rec.clone();
        stamped.slo = Some(crate::slo::SloSummary {
            spec: "p99=5ms".into(),
            p99_burn_fast: Some(2.5),
            ..Default::default()
        });
        stamped.flight_dump = Some("flight_abc.jsonl".into());
        let line = serde_json::to_string(&stamped).unwrap();
        assert!(line.contains("\"spec\":\"p99=5ms\""), "{line}");
        assert!(
            line.contains("\"flight_dump\":\"flight_abc.jsonl\""),
            "{line}"
        );
        let back: LedgerRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, stamped);

        // A v2 line (no slo/flight_dump keys) still parses with None.
        let legacy = r#"{"schema_version":2,"unix_ms":0,"tool":"bench",
            "git_describe":"x","threads":1,"panel_width":32,"fingerprint":"f",
            "wall_seconds":0.0,"frames":0,"blocks":0,"stage_latency":[],
            "mcells_per_second":0.0,"simd":"avx2"}"#;
        let back: LedgerRecord = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.slo, None);
        assert_eq!(back.flight_dump, None);
    }
}
