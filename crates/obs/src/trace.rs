//! Span/event tracer: monotonic timestamps recorded into per-thread
//! buffers, drained into Chrome-trace-event records.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled must be ~free.** [`span`] starts with one relaxed atomic
//!    load of the global enable flag; when tracing is off it returns an
//!    inert guard and touches nothing else (no timestamp, no thread-local,
//!    no allocation). Hot loops can therefore stay instrumented
//!    unconditionally — the microbench in `crates/bench/benches/
//!    obs_overhead.rs` pins the cost.
//! 2. **Recording never contends.** Each thread appends to its own buffer;
//!    the buffer's mutex is only ever contended by [`drain`], which runs
//!    after the workload. Buffers register themselves in a global sink on
//!    first use, so events survive thread exit (scoped pipeline threads)
//!    and thread reuse (scheduler pool workers) alike.
//! 3. **Timestamps are monotonic** and shared: nanoseconds since a global
//!    epoch (`Instant`-based), so spans from different threads interleave
//!    correctly on one timeline.
//!
//! Span names and categories are `&'static str` by construction — no
//! per-event allocation. The convention used by the pipeline: `cat` is the
//! *what* ("source", "link", "deconvolve", "deconv_batch", "dma"), `name`
//! is the *operation* ("process", "recv-wait", "send-wait", "panel"), and
//! each pipeline thread names itself after its stage, so a Perfetto track
//! reads as `stage → process | recv-wait | send-wait` slices.

use std::cell::OnceCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Trace-event phase, mirroring the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`ph: "X"`, has a duration).
    Complete,
    /// An instantaneous event (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`, has a value).
    Counter,
}

impl Phase {
    /// The Chrome trace-event phase letter.
    pub fn letter(self) -> &'static str {
        match self {
            Phase::Complete => "X",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }
}

/// One recorded event (internal, allocation-free form).
#[derive(Debug, Clone)]
pub struct Event {
    /// Operation name (slice label in the timeline viewer).
    pub name: &'static str,
    /// Category (the subsystem or stage the event belongs to).
    pub cat: &'static str,
    /// Phase.
    pub ph: Phase,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (0 unless `ph` is `Complete`).
    pub dur_ns: u64,
    /// Counter value (0 unless `ph` is `Counter`).
    pub value: f64,
    /// Recording thread's trace id.
    pub tid: u64,
}

struct ThreadBuf {
    tid: u64,
    inner: Mutex<ThreadBufInner>,
}

#[derive(Default)]
struct ThreadBufInner {
    name: Option<String>,
    events: Vec<Event>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn sink() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static SINK: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the (process-global) trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Is the tracer recording? One relaxed atomic load — the entire cost of a
/// disabled span.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Turns recording on or off. Usually driven by
/// [`TraceSession`](crate::session::TraceSession) rather than called
/// directly.
pub fn set_enabled(on: bool) {
    if on {
        epoch(); // pin the epoch before the first event
    }
    ENABLED.store(on, Relaxed);
}

thread_local! {
    static LOCAL_BUF: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
}

fn with_buf<R>(f: impl FnOnce(&mut ThreadBufInner) -> R) -> R {
    LOCAL_BUF.with(|cell| {
        let buf = cell.get_or_init(|| {
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Relaxed),
                inner: Mutex::new(ThreadBufInner::default()),
            });
            sink()
                .lock()
                .expect("trace sink poisoned")
                .push(buf.clone());
            buf
        });
        let mut inner = buf.inner.lock().expect("thread buffer poisoned");
        if inner.name.is_none() {
            inner.name = Some(
                std::thread::current()
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("thread-{}", buf.tid)),
            );
        }
        f(&mut inner)
    })
}

/// Names the calling thread's trace track (e.g. after its pipeline stage).
/// No-op when tracing is disabled.
pub fn set_thread_name(name: &str) {
    if !enabled() {
        return;
    }
    let name = name.to_string();
    with_buf(|inner| inner.name = Some(name));
}

/// RAII span: records one complete (`ph: "X"`) event from construction to
/// drop. Inert — and nearly free — when tracing is disabled.
#[must_use = "a span records its duration when dropped"]
pub struct SpanGuard {
    name: &'static str,
    cat: &'static str,
    /// `u64::MAX` marks an inert (disabled-at-construction) guard.
    start_ns: u64,
}

impl SpanGuard {
    #[inline]
    fn inert() -> Self {
        Self {
            name: "",
            cat: "",
            start_ns: u64::MAX,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.start_ns == u64::MAX {
            return;
        }
        let end = now_ns();
        let ev = Event {
            name: self.name,
            cat: self.cat,
            ph: Phase::Complete,
            ts_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            value: 0.0,
            tid: 0, // filled by with_buf's owner
        };
        with_buf(move |inner| inner.events.push(ev));
    }
}

/// Opens a span with an empty category. See [`span_cat`].
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_cat("", name)
}

/// Opens a span: records a complete event named `name` in category `cat`
/// when the returned guard drops. When tracing is disabled this is one
/// atomic load and an inert guard.
#[inline]
pub fn span_cat(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    SpanGuard {
        name,
        cat,
        start_ns: now_ns(),
    }
}

/// Records an instantaneous (`ph: "i"`) event. No-op when disabled.
#[inline]
pub fn instant(cat: &'static str, name: &'static str) {
    if !enabled() {
        return;
    }
    let ev = Event {
        name,
        cat,
        ph: Phase::Instant,
        ts_ns: now_ns(),
        dur_ns: 0,
        value: 0.0,
        tid: 0,
    };
    with_buf(move |inner| inner.events.push(ev));
}

/// Records a counter (`ph: "C"`) sample — a stepped value track in the
/// timeline viewer (e.g. queue depth over time). No-op when disabled.
#[inline]
pub fn counter_sample(cat: &'static str, name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    let ev = Event {
        name,
        cat,
        ph: Phase::Counter,
        ts_ns: now_ns(),
        dur_ns: 0,
        value,
        tid: 0,
    };
    with_buf(move |inner| inner.events.push(ev));
}

/// Interns a string into a process-lifetime `&'static str`.
///
/// The span and counter APIs take `&'static str` so the disabled path
/// stays one atomic load with zero allocation. Dynamic track identities —
/// per-session span categories like `link@s17`, scheduler worker names —
/// go through this table instead of leaking ad hoc. Each *distinct*
/// string leaks exactly once, so callers must keep cardinality bounded
/// (for sessions: labels × stages, capped by the admission table).
pub fn intern(s: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<std::collections::HashSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(std::collections::HashSet::new()));
    let mut guard = table.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hit) = guard.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    guard.insert(leaked);
    leaked
}

/// Everything [`drain`] returns: the events of every thread that recorded
/// any, with their track names.
#[derive(Debug, Default)]
pub struct Drained {
    /// All events, sorted by start timestamp.
    pub events: Vec<Event>,
    /// `(tid, thread name)` for every thread that recorded events.
    pub threads: Vec<(u64, String)>,
}

/// Takes every recorded event out of every per-thread buffer (clearing
/// them), tagging each event with its thread id. Safe to call while other
/// threads record — their in-flight events simply land in the next drain.
pub fn drain() -> Drained {
    let bufs: Vec<Arc<ThreadBuf>> = sink().lock().expect("trace sink poisoned").clone();
    let mut out = Drained::default();
    for buf in bufs {
        let mut inner = buf.inner.lock().expect("thread buffer poisoned");
        if inner.events.is_empty() {
            continue;
        }
        let name = inner
            .name
            .clone()
            .unwrap_or_else(|| format!("thread-{}", buf.tid));
        out.threads.push((buf.tid, name));
        for mut ev in inner.events.drain(..) {
            ev.tid = buf.tid;
            out.events.push(ev);
        }
    }
    out.events.sort_by_key(|e| e.ts_ns);
    out.threads.sort_by_key(|&(tid, _)| tid);
    out
}

/// Clears all recorded events without returning them — the
/// start-of-session reset.
pub fn clear() {
    let bufs: Vec<Arc<ThreadBuf>> = sink().lock().expect("trace sink poisoned").clone();
    for buf in bufs {
        buf.inner
            .lock()
            .expect("thread buffer poisoned")
            .events
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global state, so the tests below run as one
    // test (Rust runs #[test] fns of a module concurrently otherwise).
    #[test]
    fn tracer_end_to_end() {
        let _lock = crate::global_test_lock();
        // Disabled: spans record nothing.
        set_enabled(false);
        {
            let _g = span("ignored");
        }
        assert!(drain().events.is_empty());

        // Enabled: spans, instants, and counters are captured in order.
        set_enabled(true);
        set_thread_name("tracer-test");
        {
            let _g = span_cat("test", "outer");
            instant("test", "mark");
        }
        counter_sample("test", "depth", 3.0);
        let worker = std::thread::spawn(|| {
            let _g = span_cat("test", "worker-span");
        });
        worker.join().unwrap();
        set_enabled(false);

        let drained = drain();
        let names: Vec<&str> = drained.events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"outer"));
        assert!(names.contains(&"mark"));
        assert!(names.contains(&"depth"));
        assert!(names.contains(&"worker-span"), "{names:?}");
        let outer = drained.events.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(outer.ph, Phase::Complete);
        assert!(outer.tid > 0);
        let mark = drained.events.iter().find(|e| e.name == "mark").unwrap();
        // The instant fired inside the outer span.
        assert!(mark.ts_ns >= outer.ts_ns);
        assert!(mark.ts_ns <= outer.ts_ns + outer.dur_ns);
        // Worker ran on a different track, and both tracks are named.
        let worker_ev = drained
            .events
            .iter()
            .find(|e| e.name == "worker-span")
            .unwrap();
        assert_ne!(worker_ev.tid, outer.tid);
        assert_eq!(drained.threads.len(), 2);
        assert!(drained
            .threads
            .iter()
            .any(|(tid, name)| *tid == outer.tid && name == "tracer-test"));

        // Drain cleared the buffers.
        assert!(drain().events.is_empty());
    }
}
