//! `ims_obs` — hand-rolled observability for the hybrid IMS pipeline.
//!
//! Zero external dependencies (the repo is offline/vendored): three small
//! pieces that compose into one report.
//!
//! * [`metrics`] — a lock-free registry of named [`Counter`]s, [`Gauge`]s,
//!   and log-linear-bucket [`Histogram`]s behind cheap `&'static` handles
//!   (see [`static_counter!`], [`static_gauge!`], [`static_histogram!`]).
//! * [`trace`] — a span/event tracer writing monotonic timestamps into
//!   per-thread buffers; a disabled span costs one relaxed atomic load.
//! * [`session`] — [`TraceSession`] brackets a workload and snapshots
//!   both worlds into a serde-serializable [`ObsReport`], whose
//!   [`chrome_trace_json`](ObsReport::chrome_trace_json) output loads
//!   directly into Perfetto / `chrome://tracing`.
//!
//! On top of those sit the *continuous* telemetry pieces — live series
//! rather than post-hoc snapshots:
//!
//! * [`prof`] — a cooperative continuous CPU profiler: workers publish a
//!   current-task tag, a sampler thread charges wall-clock to it, and the
//!   tallies egress as folded stacks, `profile.json`, and
//!   `pipeline.cpu_ns` counters.
//! * [`sampler`] — a background thread snapshotting the registry at a
//!   fixed interval into a bounded in-memory ring and an optional
//!   append-only JSONL time series (counter deltas included).
//! * [`export`] + [`http`] — Prometheus text exposition rendering and a
//!   zero-dependency `GET /metrics` / `/report.json` / `/healthz` server.
//! * [`ledger`] — the append-only `RUNS.jsonl` run history and the shared
//!   [`config_fingerprint`](ledger::config_fingerprint) that joins ledger
//!   lines, bench reports, and `htims bench compare` verdicts.
//!
//! Instrumentation points record unconditionally; whether anything is
//! *kept* is decided by the single tracer flag, so the pipeline code has
//! no `#[cfg]`s and no plumbed-through handles.

#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod http;
pub mod ledger;
pub mod metrics;
pub mod prof;
pub mod sampler;
pub mod session;
pub mod slo;
pub mod trace;

pub use export::prometheus_text;
pub use flight::{FlightKind, FlightRecorder, FLIGHT_SCHEMA_VERSION};
pub use http::{ObsServer, SessionsProvider};
pub use ledger::{config_fingerprint, FingerprintParts, LedgerRecord};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, MetricsSnapshot};
pub use prof::{ProfSnapshot, WorkerSlot, PROF_SCHEMA_VERSION};
pub use sampler::{SamplePoint, Sampler, SamplerConfig};
pub use session::{
    ObsReport, Provenance, SpanRecord, ThreadInfo, TraceSession, OBS_SCHEMA_VERSION,
};
pub use slo::{SloDelta, SloEngine, SloSpec, SloStatus, SloSummary};
pub use trace::{counter_sample, instant, intern, set_thread_name, span, span_cat, SpanGuard};

/// Serializes tests that mutate the process-global tracer/registry (the
/// test harness runs `#[test]` fns concurrently in one process).
#[cfg(test)]
pub(crate) fn global_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
