//! `TraceSession`: one bracketed observation window that snapshots the
//! tracer and the metrics registry into a single serializable
//! [`ObsReport`], with a Chrome trace-event JSON exporter.
//!
//! ```no_run
//! let session = ims_obs::TraceSession::start(ims_obs::Provenance::collect(8, 32));
//! // ... run the workload ...
//! let report = session.finish();
//! std::fs::write("trace.json", report.chrome_trace_json()).unwrap();
//! std::fs::write("metrics.json", serde_json::to_string_pretty(&report).unwrap()).unwrap();
//! ```
//!
//! Open `trace.json` at <https://ui.perfetto.dev> (or `chrome://tracing`):
//! it is a plain JSON array of trace events, one track per pipeline
//! thread, with `ph:"X"` slices for spans, `ph:"C"` counter tracks for
//! queue depths, and `ph:"M"` metadata naming each track after its stage.

use crate::metrics::{self, MetricsSnapshot};
use crate::trace;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// Schema version of [`ObsReport`] and the `htims bench`/`htims trace`
/// JSON outputs. Bump when fields change meaning.
///
/// v3 added [`Provenance::simd`] and [`Provenance::sparse`]; both default
/// to empty on v2 (and older) artifacts, which still parse.
///
/// v4 added [`ObsReport::slo`] (per-tenant burn-rate state, see
/// [`crate::slo`]); it defaults to `None` on v3 (and older) artifacts,
/// which still parse.
pub const OBS_SCHEMA_VERSION: u64 = 4;

/// Where a report came from: enough to compare BENCH_*.json and trace
/// artifacts across PRs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Report schema version ([`OBS_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// `git describe --always --dirty --tags` of the tree that built this
    /// binary (stamped at compile time; "unknown" outside a checkout).
    pub git_describe: String,
    /// Worker thread count the workload ran with.
    pub threads: u64,
    /// Deconvolution panel width the workload ran with.
    pub panel_width: u64,
    /// SIMD backend the deconvolution kernels dispatched to
    /// (`"avx2"` | `"sse2"` | `"scalar"`). Empty on pre-v3 artifacts and
    /// when the caller didn't stamp it. `ims_obs` stays dependency-free,
    /// so the workload crate passes the name in via [`with_simd`]
    /// (Provenance::with_simd).
    #[serde(default)]
    pub simd: String,
    /// Sparse/dense path decision for the run (`"sparse"` | `"dense"`, or
    /// a mixed label such as `"sparse:3/8"` when blocks split). Empty on
    /// pre-v3 artifacts and when not stamped.
    #[serde(default)]
    pub sparse: String,
}

impl Provenance {
    /// Provenance for a run using `threads` workers and `panel_width`-wide
    /// deconvolution panels. SIMD backend and sparse decision start empty;
    /// stamp them with [`with_simd`](Self::with_simd) /
    /// [`with_sparse`](Self::with_sparse).
    pub fn collect(threads: usize, panel_width: usize) -> Self {
        Self {
            schema_version: OBS_SCHEMA_VERSION,
            git_describe: env!("IMS_OBS_GIT_DESCRIBE").to_string(),
            threads: threads as u64,
            panel_width: panel_width as u64,
            simd: String::new(),
            sparse: String::new(),
        }
    }

    /// Stamps the dispatched SIMD backend name.
    pub fn with_simd(mut self, simd: &str) -> Self {
        self.simd = simd.to_string();
        self
    }

    /// Stamps the sparse/dense path decision.
    pub fn with_sparse(mut self, sparse: &str) -> Self {
        self.sparse = sparse.to_string();
        self
    }
}

/// One recorded span/event in serializable form (timestamps in
/// nanoseconds since the session epoch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Operation name.
    pub name: String,
    /// Category (stage / subsystem).
    pub cat: String,
    /// Chrome phase letter: "X" (complete), "i" (instant), "C" (counter).
    pub ph: String,
    /// Start, nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for non-span events).
    pub dur_ns: u64,
    /// Counter value (0 for non-counter events).
    pub value: f64,
    /// Trace id of the recording thread.
    pub tid: u64,
}

/// A thread that recorded events during the session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadInfo {
    /// Trace id (the `tid` on [`SpanRecord`]s).
    pub tid: u64,
    /// Track name (pipeline stage name where instrumented).
    pub name: String,
}

/// Everything one [`TraceSession`] observed: provenance, a metrics
/// snapshot, and the full span timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Build/run provenance.
    pub provenance: Provenance,
    /// Wall-clock length of the session in seconds.
    pub wall_seconds: f64,
    /// Every registered counter/gauge/histogram at session end.
    pub metrics: MetricsSnapshot,
    /// Threads that recorded events.
    pub threads: Vec<ThreadInfo>,
    /// All recorded spans/events, ordered by start time.
    pub spans: Vec<SpanRecord>,
    /// SLO burn-rate state at session end, when the run declared targets
    /// (`--slo`). Absent on v3 and older artifacts and untargeted runs.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slo: Option<crate::slo::SloSummary>,
}

impl ObsReport {
    /// Renders the span timeline as Chrome trace-event JSON: a single
    /// array of event objects loadable by Perfetto / `chrome://tracing`.
    /// Timestamps and durations are microseconds (the format's unit);
    /// `pid` is always 1 (one process).
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<Value> = Vec::with_capacity(self.spans.len() + self.threads.len());
        for t in &self.threads {
            events.push(json!({
                "name": "thread_name",
                "ph": "M",
                "pid": 1u64,
                "tid": t.tid,
                "args": json!({ "name": t.name }),
            }));
        }
        for s in &self.spans {
            let ts_us = s.ts_ns as f64 / 1_000.0;
            let ev = match s.ph.as_str() {
                "X" => json!({
                    "name": s.name,
                    "cat": s.cat,
                    "ph": "X",
                    "pid": 1u64,
                    "tid": s.tid,
                    "ts": ts_us,
                    "dur": s.dur_ns as f64 / 1_000.0,
                }),
                "C" => json!({
                    "name": s.name,
                    "cat": s.cat,
                    "ph": "C",
                    "pid": 1u64,
                    "tid": s.tid,
                    "ts": ts_us,
                    "args": json!({ "value": s.value }),
                }),
                _ => json!({
                    "name": s.name,
                    "cat": s.cat,
                    "ph": "i",
                    "pid": 1u64,
                    "tid": s.tid,
                    "ts": ts_us,
                    "s": "t",
                }),
            };
            events.push(ev);
        }
        serde_json::to_string(&Value::Array(events)).expect("trace serialization cannot fail")
    }
}

/// A bracketed observation window: [`start`](TraceSession::start) resets
/// the registry and turns the tracer on; [`finish`](TraceSession::finish)
/// turns it off and snapshots everything into an [`ObsReport`].
///
/// Only one session should be active at a time (the tracer and registry
/// are process-global); concurrent sessions would see each other's events.
pub struct TraceSession {
    provenance: Provenance,
    started: std::time::Instant,
}

impl TraceSession {
    /// Clears previously recorded events, zeroes all registered metrics,
    /// and enables tracing.
    pub fn start(provenance: Provenance) -> Self {
        metrics::reset();
        trace::clear();
        trace::set_enabled(true);
        Self {
            provenance,
            started: std::time::Instant::now(),
        }
    }

    /// Disables tracing and snapshots the tracer + metrics registry.
    pub fn finish(self) -> ObsReport {
        trace::set_enabled(false);
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let drained = trace::drain();
        ObsReport {
            provenance: self.provenance,
            wall_seconds,
            metrics: metrics::snapshot(),
            threads: drained
                .threads
                .into_iter()
                .map(|(tid, name)| ThreadInfo { tid, name })
                .collect(),
            spans: drained
                .events
                .into_iter()
                .map(|e| SpanRecord {
                    name: e.name.to_string(),
                    cat: e.cat.to_string(),
                    ph: e.ph.letter().to_string(),
                    ts_ns: e.ts_ns,
                    dur_ns: e.dur_ns,
                    value: e.value,
                    tid: e.tid,
                })
                .collect(),
            slo: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ObsReport {
        ObsReport {
            provenance: Provenance::collect(4, 32),
            wall_seconds: 1.25,
            metrics: MetricsSnapshot::default(),
            threads: vec![ThreadInfo {
                tid: 1,
                name: "deconvolve".to_string(),
            }],
            spans: vec![
                SpanRecord {
                    name: "process".to_string(),
                    cat: "deconvolve".to_string(),
                    ph: "X".to_string(),
                    ts_ns: 1_500,
                    dur_ns: 2_000,
                    value: 0.0,
                    tid: 1,
                },
                SpanRecord {
                    name: "queue_depth".to_string(),
                    cat: "pipeline".to_string(),
                    ph: "C".to_string(),
                    ts_ns: 2_000,
                    dur_ns: 0,
                    value: 3.0,
                    tid: 1,
                },
            ],
            slo: None,
        }
    }

    #[test]
    fn obs_report_serde_round_trip() {
        let mut report = sample_report();
        report.provenance = report.provenance.with_simd("avx2").with_sparse("dense");
        let text = serde_json::to_string_pretty(&report).unwrap();
        let back: ObsReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.provenance.schema_version, OBS_SCHEMA_VERSION);
        assert_eq!(back.provenance.panel_width, 32);
        assert_eq!(back.provenance.simd, "avx2");
        assert_eq!(back.provenance.sparse, "dense");
    }

    #[test]
    fn legacy_v2_provenance_parses_with_empty_simd_and_sparse() {
        // A pre-v3 provenance object has no simd/sparse keys; it must
        // still deserialize, with both defaulting to empty.
        let legacy = r#"{
            "schema_version": 2,
            "git_describe": "abc1234",
            "threads": 4,
            "panel_width": 32
        }"#;
        let back: Provenance = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.schema_version, 2);
        assert_eq!(back.simd, "");
        assert_eq!(back.sparse, "");
    }

    #[test]
    fn legacy_v3_report_parses_without_slo_and_v4_round_trips_it() {
        // A v3 report has no `slo` key: it must parse as None, and a v4
        // report carrying SLO state must round-trip.
        let mut report = sample_report();
        let v3_text = serde_json::to_string(&report).unwrap();
        assert!(!v3_text.contains("\"slo\""), "{v3_text}");
        let back: ObsReport = serde_json::from_str(&v3_text).unwrap();
        assert!(back.slo.is_none());
        report.slo = Some(crate::slo::SloSummary {
            spec: "p99=5ms".into(),
            p99_burn_fast: Some(2.5),
            p99_burn_slow: Some(0.5),
            completeness_burn_fast: None,
            completeness_burn_slow: None,
            alerting: false,
        });
        let v4_text = serde_json::to_string(&report).unwrap();
        let back: ObsReport = serde_json::from_str(&v4_text).unwrap();
        assert_eq!(back.slo, report.slo);
    }

    #[test]
    fn chrome_trace_is_valid_event_array() {
        let report = sample_report();
        let trace: Value = serde_json::from_str(&report.chrome_trace_json()).unwrap();
        let Value::Array(events) = trace else {
            panic!("trace must be a JSON array");
        };
        // Metadata event names the thread track.
        let meta = &events[0];
        assert_eq!(meta.field("ph").as_str(), Some("M"));
        assert_eq!(
            meta.field("args").field("name").as_str(),
            Some("deconvolve")
        );
        // Complete span: ts/dur in microseconds.
        let span = events
            .iter()
            .find(|e| e.field("ph").as_str() == Some("X"))
            .expect("one complete span");
        assert_eq!(span.field("name").as_str(), Some("process"));
        assert_eq!(span.field("ts"), &Value::Float(1.5));
        assert_eq!(span.field("dur"), &Value::Float(2.0));
        assert_eq!(span.field("pid"), &Value::UInt(1));
        // Counter sample carries its value in args.
        let counter = events
            .iter()
            .find(|e| e.field("ph").as_str() == Some("C"))
            .expect("one counter event");
        assert_eq!(counter.field("args").field("value"), &Value::Float(3.0));
    }

    #[test]
    fn session_start_finish_captures_spans_and_metrics() {
        let _lock = crate::global_test_lock();
        let session = TraceSession::start(Provenance::collect(2, 16));
        {
            let _g = trace::span_cat("session-test", "work");
        }
        metrics::counter("test.session.counter").incr();
        let report = session.finish();
        assert!(!trace::enabled());
        assert!(report.wall_seconds >= 0.0);
        assert!(report
            .spans
            .iter()
            .any(|s| s.name == "work" && s.cat == "session-test" && s.ph == "X"));
        assert_eq!(report.metrics.counter("test.session.counter"), Some(1));
        assert!(!report.provenance.git_describe.is_empty());
    }
}
