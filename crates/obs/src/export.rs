//! Prometheus text exposition rendering for the metrics registry.
//!
//! Zero-dependency: the renderer emits [text exposition format
//! 0.0.4](https://prometheus.io/docs/instrumenting/exposition_formats/)
//! by hand. Histograms come out in native Prometheus shape — cumulative
//! `_bucket{le="…"}` lines derived from the log-linear bucket table, plus
//! exact `_sum`/`_count` — so `rate()`/`histogram_quantile()` work
//! unmodified against a scrape of `htims serve`.
//!
//! The renderer itself is pure ([`render`] over a [`PromMetric`] list),
//! which is what the golden-file test in `tests/prometheus_golden.rs`
//! exercises; [`gather`] walks the process-global registry and
//! [`prometheus_text`] composes the two.

use crate::metrics::{self, Histogram};

/// A histogram flattened into Prometheus shape: cumulative occupied
/// buckets (upper bound, cumulative count), exact sum, and total count.
#[derive(Debug, Clone, PartialEq)]
pub struct PromHistogram {
    /// `(le, cumulative_count)` per occupied bucket, increasing `le`.
    pub buckets: Vec<(u64, u64)>,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Total samples (the implicit `+Inf` bucket).
    pub count: u64,
}

impl PromHistogram {
    /// Snapshots a live [`Histogram`] into Prometheus shape. `count` is
    /// taken from the cumulative bucket walk (not the independent count
    /// atomic) so the rendered series is self-consistent under racing
    /// recorders.
    pub fn from_histogram(h: &Histogram) -> Self {
        let buckets = h.cumulative_buckets();
        let count = buckets.last().map(|&(_, c)| c).unwrap_or(0);
        Self {
            buckets,
            sum: h.summary().sum,
            count,
        }
    }
}

/// The value of one exported metric family.
#[derive(Debug, Clone, PartialEq)]
pub enum PromValue {
    /// Monotonic counter.
    Counter(u64),
    /// Instantaneous gauge.
    Gauge(u64),
    /// Distribution.
    Histogram(PromHistogram),
}

/// One metric family ready to render: a name (sanitized at render time),
/// an optional `# HELP` line, and the value.
#[derive(Debug, Clone, PartialEq)]
pub struct PromMetric {
    /// Registry name (dots and dashes allowed; sanitized when rendered).
    pub name: String,
    /// Optional help text (`\` and newlines are escaped when rendered).
    pub help: Option<String>,
    /// The family value.
    pub value: PromValue,
}

/// Maps a registry name onto the Prometheus metric-name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`, and a
/// leading digit gets an underscore prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes help text per the exposition format: backslash and newline.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Splits a registry name into its metric part and an optional label
/// suffix. Everything after the first `#` is a comma-separated
/// `key=value` list: `pipeline.items_total.link#session=s17` renders as
/// `pipeline_items_total_link{session="s17"}`, so one registry (which
/// keys strictly by name) can carry a bounded label dimension without a
/// second data model. Names without `#` render exactly as before.
pub fn split_labels(raw: &str) -> (&str, Vec<(String, String)>) {
    match raw.split_once('#') {
        None => (raw, Vec::new()),
        Some((base, suffix)) => {
            let labels = suffix
                .split(',')
                .filter_map(|pair| pair.split_once('='))
                .map(|(k, v)| (sanitize_metric_name(k), sanitize_label_value(v)))
                .collect();
            (base, labels)
        }
    }
}

/// Maps a label value onto a charset that needs no exposition-format
/// escaping: alphanumerics plus `_ . : -`, everything else becomes `_`.
fn sanitize_label_value(v: &str) -> String {
    v.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders a `{k="v",…}` block; empty (no braces) when there is nothing
/// to say. `extra` appends a final label (the histogram `le`).
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let rendered: Vec<String> = labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra)
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    format!("{{{}}}", rendered.join(","))
}

/// Renders metric families as Prometheus text exposition format 0.0.4.
/// Families render in the order given; [`gather`] pre-sorts by name, so
/// labeled variants of one family (`…#session=s0`, `…#session=s1`) land
/// adjacent and share a single `# TYPE` line (the format forbids
/// repeating it).
pub fn render(families: &[PromMetric]) -> String {
    let mut out = String::new();
    let mut typed: std::collections::HashSet<String> = std::collections::HashSet::new();
    for f in families {
        let (base, labels) = split_labels(&f.name);
        let name = sanitize_metric_name(base);
        let lbl = label_block(&labels, None);
        if typed.insert(name.clone()) {
            if let Some(help) = &f.help {
                out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
            }
            let kind = match &f.value {
                PromValue::Counter(_) => "counter",
                PromValue::Gauge(_) => "gauge",
                PromValue::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# TYPE {name} {kind}\n"));
        }
        match &f.value {
            PromValue::Counter(v) => {
                out.push_str(&format!("{name}{lbl} {v}\n"));
            }
            PromValue::Gauge(v) => {
                out.push_str(&format!("{name}{lbl} {v}\n"));
            }
            PromValue::Histogram(h) => {
                for &(le, cum) in &h.buckets {
                    let le = le.to_string();
                    let b = label_block(&labels, Some(("le", &le)));
                    out.push_str(&format!("{name}_bucket{b} {cum}\n"));
                }
                let b = label_block(&labels, Some(("le", "+Inf")));
                out.push_str(&format!("{name}_bucket{b} {}\n", h.count));
                out.push_str(&format!("{name}_sum{lbl} {}\n", h.sum));
                out.push_str(&format!("{name}_count{lbl} {}\n", h.count));
            }
        }
    }
    out
}

/// Walks the global registry into renderable families, sorted by name
/// within each kind (counters, then gauges, then histograms). Gauges
/// additionally export their high-water mark as `<name>_high_water`.
pub fn gather() -> Vec<PromMetric> {
    let snap = metrics::snapshot();
    let mut families = Vec::new();
    for c in &snap.counters {
        families.push(PromMetric {
            name: c.name.clone(),
            help: None,
            value: PromValue::Counter(c.value),
        });
    }
    let mut high_water = Vec::new();
    for g in &snap.gauges {
        families.push(PromMetric {
            name: g.name.clone(),
            help: None,
            value: PromValue::Gauge(g.value),
        });
        // The `_high_water` suffix goes on the metric name, *before* any
        // `#key=value` label suffix — appending to the full interned name
        // would corrupt the label value (`session="s0_high_water"`).
        let name = match g.name.split_once('#') {
            Some((base, labels)) => format!("{base}_high_water#{labels}"),
            None => format!("{}_high_water", g.name),
        };
        high_water.push(PromMetric {
            name,
            help: None,
            value: PromValue::Gauge(g.high_water),
        });
    }
    // After the base gauges, not interleaved: the exposition format wants
    // all series of one family in a single group, and labeled gauges put
    // several series in each family.
    families.append(&mut high_water);
    for (name, h) in metrics::histogram_handles() {
        families.push(PromMetric {
            name,
            help: None,
            value: PromValue::Histogram(PromHistogram::from_histogram(h)),
        });
    }
    families
}

/// The whole registry as one Prometheus scrape body — what `GET /metrics`
/// serves.
pub fn prometheus_text() -> String {
    render(&gather())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_covers_the_charset() {
        assert_eq!(
            sanitize_metric_name("pipeline.stage_latency_ns.source"),
            "pipeline_stage_latency_ns_source"
        );
        assert_eq!(
            sanitize_metric_name("deconv.panel_ns.simplex-fast"),
            "deconv_panel_ns_simplex_fast"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a:b_c1"), "a:b_c1");
    }

    #[test]
    fn session_label_suffixes_render_as_prometheus_labels() {
        let families = vec![
            PromMetric {
                name: "pipeline.items_total.link#session=s0".into(),
                help: None,
                value: PromValue::Counter(3),
            },
            PromMetric {
                name: "pipeline.items_total.link#session=s1".into(),
                help: None,
                value: PromValue::Counter(5),
            },
            PromMetric {
                name: "pipeline.stage_latency_ns.link#session=s0".into(),
                help: None,
                value: PromValue::Histogram(PromHistogram {
                    buckets: vec![(64, 2)],
                    sum: 90,
                    count: 2,
                }),
            },
        ];
        let text = render(&families);
        assert!(
            text.contains("pipeline_items_total_link{session=\"s0\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("pipeline_items_total_link{session=\"s1\"} 5"),
            "{text}"
        );
        // One TYPE line per family even with many labeled series.
        assert_eq!(
            text.matches("# TYPE pipeline_items_total_link counter")
                .count(),
            1,
            "{text}"
        );
        // Histogram series carry the session label alongside `le`.
        assert!(
            text.contains("pipeline_stage_latency_ns_link_bucket{session=\"s0\",le=\"64\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("pipeline_stage_latency_ns_link_bucket{session=\"s0\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("pipeline_stage_latency_ns_link_sum{session=\"s0\"} 90"),
            "{text}"
        );
        // Hostile label values are sanitized, not escaped.
        let (base, labels) = split_labels("a.b#session=s\"0\nx");
        assert_eq!(base, "a.b");
        assert_eq!(labels, vec![("session".into(), "s_0_x".into())]);
    }

    #[test]
    fn gather_exports_live_registry_values() {
        let _lock = crate::global_test_lock();
        metrics::reset();
        metrics::counter("test.export.counter").add(5);
        metrics::gauge("test.export.gauge").set(9);
        metrics::gauge("test.export.gauge").set(4);
        metrics::gauge("test.export.depth#session=s0").set(7);
        metrics::gauge("test.export.depth#session=s0").set(2);
        metrics::histogram("test.export.hist").record(100);
        let text = prometheus_text();
        assert!(text.contains("test_export_counter 5"), "{text}");
        assert!(text.contains("test_export_gauge 4"), "{text}");
        assert!(text.contains("test_export_gauge_high_water 9"), "{text}");
        // A labeled gauge's high-water suffix lands on the name, not
        // inside the label value.
        assert!(
            text.contains("test_export_depth{session=\"s0\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("test_export_depth_high_water{session=\"s0\"} 7"),
            "{text}"
        );
        assert!(!text.contains("s0_high_water"), "{text}");
        assert!(text.contains("# TYPE test_export_hist histogram"), "{text}");
        assert!(text.contains("test_export_hist_sum 100"), "{text}");
        assert!(text.contains("test_export_hist_count 1"), "{text}");
        assert!(
            text.contains("test_export_hist_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
    }
}
