//! Prometheus text exposition rendering for the metrics registry.
//!
//! Zero-dependency: the renderer emits [text exposition format
//! 0.0.4](https://prometheus.io/docs/instrumenting/exposition_formats/)
//! by hand. Histograms come out in native Prometheus shape — cumulative
//! `_bucket{le="…"}` lines derived from the log-linear bucket table, plus
//! exact `_sum`/`_count` — so `rate()`/`histogram_quantile()` work
//! unmodified against a scrape of `htims serve`.
//!
//! The renderer itself is pure ([`render`] over a [`PromMetric`] list),
//! which is what the golden-file test in `tests/prometheus_golden.rs`
//! exercises; [`gather`] walks the process-global registry and
//! [`prometheus_text`] composes the two.

use crate::metrics::{self, Histogram};

/// A histogram flattened into Prometheus shape: cumulative occupied
/// buckets (upper bound, cumulative count), exact sum, and total count.
#[derive(Debug, Clone, PartialEq)]
pub struct PromHistogram {
    /// `(le, cumulative_count)` per occupied bucket, increasing `le`.
    pub buckets: Vec<(u64, u64)>,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Total samples (the implicit `+Inf` bucket).
    pub count: u64,
}

impl PromHistogram {
    /// Snapshots a live [`Histogram`] into Prometheus shape. `count` is
    /// taken from the cumulative bucket walk (not the independent count
    /// atomic) so the rendered series is self-consistent under racing
    /// recorders.
    pub fn from_histogram(h: &Histogram) -> Self {
        let buckets = h.cumulative_buckets();
        let count = buckets.last().map(|&(_, c)| c).unwrap_or(0);
        Self {
            buckets,
            sum: h.summary().sum,
            count,
        }
    }
}

/// The value of one exported metric family.
#[derive(Debug, Clone, PartialEq)]
pub enum PromValue {
    /// Monotonic counter.
    Counter(u64),
    /// Instantaneous gauge.
    Gauge(u64),
    /// Distribution.
    Histogram(PromHistogram),
}

/// One metric family ready to render: a name (sanitized at render time),
/// an optional `# HELP` line, and the value.
#[derive(Debug, Clone, PartialEq)]
pub struct PromMetric {
    /// Registry name (dots and dashes allowed; sanitized when rendered).
    pub name: String,
    /// Optional help text (`\` and newlines are escaped when rendered).
    pub help: Option<String>,
    /// The family value.
    pub value: PromValue,
}

/// Maps a registry name onto the Prometheus metric-name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`, and a
/// leading digit gets an underscore prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes help text per the exposition format: backslash and newline.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Renders metric families as Prometheus text exposition format 0.0.4.
/// Families render in the order given; [`gather`] pre-sorts by name.
pub fn render(families: &[PromMetric]) -> String {
    let mut out = String::new();
    for f in families {
        let name = sanitize_metric_name(&f.name);
        if let Some(help) = &f.help {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
        }
        match &f.value {
            PromValue::Counter(v) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
            }
            PromValue::Gauge(v) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
            PromValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                for &(le, cum) in &h.buckets {
                    out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                out.push_str(&format!("{name}_sum {}\n", h.sum));
                out.push_str(&format!("{name}_count {}\n", h.count));
            }
        }
    }
    out
}

/// Walks the global registry into renderable families, sorted by name
/// within each kind (counters, then gauges, then histograms). Gauges
/// additionally export their high-water mark as `<name>_high_water`.
pub fn gather() -> Vec<PromMetric> {
    let snap = metrics::snapshot();
    let mut families = Vec::new();
    for c in &snap.counters {
        families.push(PromMetric {
            name: c.name.clone(),
            help: None,
            value: PromValue::Counter(c.value),
        });
    }
    for g in &snap.gauges {
        families.push(PromMetric {
            name: g.name.clone(),
            help: None,
            value: PromValue::Gauge(g.value),
        });
        families.push(PromMetric {
            name: format!("{}_high_water", g.name),
            help: None,
            value: PromValue::Gauge(g.high_water),
        });
    }
    for (name, h) in metrics::histogram_handles() {
        families.push(PromMetric {
            name,
            help: None,
            value: PromValue::Histogram(PromHistogram::from_histogram(h)),
        });
    }
    families
}

/// The whole registry as one Prometheus scrape body — what `GET /metrics`
/// serves.
pub fn prometheus_text() -> String {
    render(&gather())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_covers_the_charset() {
        assert_eq!(
            sanitize_metric_name("pipeline.stage_latency_ns.source"),
            "pipeline_stage_latency_ns_source"
        );
        assert_eq!(
            sanitize_metric_name("deconv.panel_ns.simplex-fast"),
            "deconv_panel_ns_simplex_fast"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a:b_c1"), "a:b_c1");
    }

    #[test]
    fn gather_exports_live_registry_values() {
        let _lock = crate::global_test_lock();
        metrics::reset();
        metrics::counter("test.export.counter").add(5);
        metrics::gauge("test.export.gauge").set(9);
        metrics::gauge("test.export.gauge").set(4);
        metrics::histogram("test.export.hist").record(100);
        let text = prometheus_text();
        assert!(text.contains("test_export_counter 5"), "{text}");
        assert!(text.contains("test_export_gauge 4"), "{text}");
        assert!(text.contains("test_export_gauge_high_water 9"), "{text}");
        assert!(text.contains("# TYPE test_export_hist histogram"), "{text}");
        assert!(text.contains("test_export_hist_sum 100"), "{text}");
        assert!(text.contains("test_export_hist_count 1"), "{text}");
        assert!(
            text.contains("test_export_hist_bucket{le=\"+Inf\"} 1"),
            "{text}"
        );
    }
}
