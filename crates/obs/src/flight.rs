//! Always-on flight recorder: per-worker lock-free ring buffers of
//! frame/block lifecycle events, dumped as a schema-versioned JSONL
//! black box when a run ends badly.
//!
//! Every pipeline node records one event per item it touches — frame
//! ingress/egress, block ingress/egress, fault-site firings, quarantines
//! — into a fixed-capacity ring owned by the recording thread's shard.
//! The healthy-path cost is one thread-local read, one relaxed
//! `fetch_add` on the shard head, and three relaxed/release stores into
//! the claimed slot (no locks, no allocation, no branching on buffer
//! fullness — old events are simply overwritten). The `obs_overhead`
//! criterion bench pins this next to the span/counter costs.
//!
//! Each event packs into three `u64` words:
//!
//! ```text
//! seq   claim index + 1 (0 = never written; validates the slot)
//! meta  ts_ns(48 bits) | label(8 bits) | kind(8 bits)
//! item  frame_id (= FramePacket::seq_no) or block index
//! ```
//!
//! Snapshots are taken after the run has quiesced (the executor joins
//! every node before dumping), so relaxed stores are safe: the join's own
//! synchronization orders them. A slot whose `seq` does not match its
//! claim index mid-scan (a torn write from a racing recorder on the same
//! shard) is skipped rather than misread.
//!
//! The black-box dump is JSONL: line 1 is a [`DumpHeader`] (schema
//! version, fingerprint, outcome, blamed stage, quarantined frame ids,
//! fault-site tallies, and per-offending-item causal [`DumpChain`]s);
//! every following line is one [`DumpEvent`]. Event lines are sorted by
//! `(item, label registration order, kind)` — *not* per-worker order —
//! because worker/shard assignment varies run to run while the logical
//! event set of a seeded run does not; with timestamps normalized (see
//! [`strip_timestamps`]) two same-`(seed, spec)` runs dump byte-identical
//! black boxes as long as the rings did not overflow.

use crate::trace;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Version of the black-box dump schema. Bump on breaking change.
pub const FLIGHT_SCHEMA_VERSION: u32 = 1;

/// Hard cap on registered labels (stage names + fault sites): the packed
/// event word keeps 8 bits for the label index.
pub const MAX_LABELS: usize = 256;

/// Causal chains kept in a dump header (offending items beyond this are
/// still listed in `quarantined_frames` / event lines, just not expanded
/// into chains). Applied after sorting item ids, so it is deterministic.
const MAX_CHAINS: usize = 128;

const TS_BITS: u32 = 48;
const TS_MASK: u64 = (1 << TS_BITS) - 1;

/// What happened to an item at a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlightKind {
    /// A frame entered a stage's `process`.
    FrameIngress = 0,
    /// A frame left a stage (was emitted / accepted downstream).
    FrameEgress = 1,
    /// A block entered a stage's `process`.
    BlockIngress = 2,
    /// A block left a stage.
    BlockEgress = 3,
    /// A deterministic fault site fired on this frame (label = site name).
    Fault = 4,
    /// The item failed its integrity check and was quarantined.
    Quarantine = 5,
    /// A deterministic fault site fired on this block (label = site
    /// name). Distinct from [`FlightKind::Fault`] because frame ids and
    /// block indices share the `item` namespace, and causal chains must
    /// not mix the two.
    BlockFault = 6,
}

impl FlightKind {
    /// Stable wire name used in dump lines.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::FrameIngress => "frame_ingress",
            FlightKind::FrameEgress => "frame_egress",
            FlightKind::BlockIngress => "block_ingress",
            FlightKind::BlockEgress => "block_egress",
            FlightKind::Fault => "fault",
            FlightKind::Quarantine => "quarantine",
            FlightKind::BlockFault => "block_fault",
        }
    }

    fn from_bits(b: u64) -> Option<Self> {
        Some(match b {
            0 => FlightKind::FrameIngress,
            1 => FlightKind::FrameEgress,
            2 => FlightKind::BlockIngress,
            3 => FlightKind::BlockEgress,
            4 => FlightKind::Fault,
            5 => FlightKind::Quarantine,
            6 => FlightKind::BlockFault,
            _ => return None,
        })
    }
}

/// Which item namespace a wire kind belongs to: frame ids and block
/// indices overlap numerically, so chains are keyed `(class, item)`.
fn item_class(kind: &str) -> &'static str {
    match kind {
        "block_ingress" | "block_egress" | "block_fault" => "block",
        _ => "frame",
    }
}

/// One decoded event out of a ring snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Shard (worker ring) the event was recorded into.
    pub worker: usize,
    /// Claim index within the shard: recording order per worker.
    pub seq: u64,
    /// Nanoseconds since the process trace epoch (48-bit truncated).
    pub ts_ns: u64,
    /// Index into the recorder's label table (stage or fault site).
    pub label: u16,
    /// Event kind.
    pub kind: FlightKind,
    /// Frame id (`FramePacket::seq_no`) or block index.
    pub item: u64,
}

/// A quiescent-point snapshot of every ring.
#[derive(Debug, Clone)]
pub struct FlightSnapshot {
    /// Registered labels; `FlightEvent::label` indexes this.
    pub labels: Vec<String>,
    /// Surviving events per worker shard, oldest first.
    pub events: Vec<Vec<FlightEvent>>,
    /// Total events ever recorded (including overwritten ones).
    pub recorded: u64,
}

impl FlightSnapshot {
    /// All surviving events across workers, flattened.
    pub fn flat(&self) -> Vec<FlightEvent> {
        self.events.iter().flatten().cloned().collect()
    }
}

struct Slot {
    seq: AtomicU64,
    meta: AtomicU64,
    item: AtomicU64,
}

struct Ring {
    head: AtomicU64,
    mask: u64,
    slots: Box<[Slot]>,
}

struct Inner {
    rings: Vec<Ring>,
    labels: Mutex<Vec<String>>,
}

/// The recorder handle stages and executors hold. Cheap to clone (one
/// `Arc`); all clones share the same rings and label table.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

/// Returns this thread's stable shard ordinal (assigned on first use).
fn thread_ordinal() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static ORDINAL: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    ORDINAL.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            c.set(v);
        }
        v
    })
}

impl FlightRecorder {
    /// A recorder with `workers` ring shards of `capacity` events each
    /// (capacity rounds up to a power of two, at least 8).
    pub fn new(workers: usize, capacity: usize) -> Self {
        let workers = workers.max(1);
        let capacity = capacity.max(8).next_power_of_two();
        let rings = (0..workers)
            .map(|_| Ring {
                head: AtomicU64::new(0),
                mask: capacity as u64 - 1,
                slots: (0..capacity)
                    .map(|_| Slot {
                        seq: AtomicU64::new(0),
                        meta: AtomicU64::new(0),
                        item: AtomicU64::new(0),
                    })
                    .collect(),
            })
            .collect();
        Self {
            inner: Arc::new(Inner {
                rings,
                labels: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Number of ring shards.
    pub fn workers(&self) -> usize {
        self.inner.rings.len()
    }

    /// Per-shard event capacity.
    pub fn capacity(&self) -> usize {
        self.inner.rings[0].slots.len()
    }

    /// Registers a label (stage name or fault-site name) and returns its
    /// index; registering the same label twice returns the same index.
    /// Cold path — called at arm time, never per event.
    ///
    /// # Panics
    /// When more than [`MAX_LABELS`] distinct labels are registered.
    pub fn register(&self, label: &str) -> u16 {
        let mut labels = self.inner.labels.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(i) = labels.iter().position(|l| l == label) {
            return i as u16;
        }
        assert!(
            labels.len() < MAX_LABELS,
            "flight recorder label table full"
        );
        labels.push(label.to_string());
        (labels.len() - 1) as u16
    }

    /// Records one event. Lock-free hot path: shard by thread ordinal,
    /// claim a slot with a relaxed `fetch_add`, store the payload.
    #[inline]
    pub fn record(&self, label: u16, kind: FlightKind, item: u64) {
        self.record_at(label, kind, item, trace::now_ns());
    }

    /// [`record`](Self::record) with an explicit timestamp (tests).
    #[inline]
    pub fn record_at(&self, label: u16, kind: FlightKind, item: u64, ts_ns: u64) {
        let rings = &self.inner.rings;
        let ring = &rings[thread_ordinal() % rings.len()];
        let idx = ring.head.fetch_add(1, Ordering::Relaxed);
        let slot = &ring.slots[(idx & ring.mask) as usize];
        let meta = ((ts_ns & TS_MASK) << 16) | ((label as u64 & 0xff) << 8) | kind as u64;
        slot.item.store(item, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Relaxed);
        // seq last, Release: a snapshot that Acquire-reads the expected
        // seq sees the matching payload stores.
        slot.seq.store(idx + 1, Ordering::Release);
    }

    /// Decodes every ring. Meant for the quiescent point after a run has
    /// joined; slots a racing recorder has part-written are skipped.
    pub fn snapshot(&self) -> FlightSnapshot {
        let labels = self
            .inner
            .labels
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let mut events = Vec::with_capacity(self.inner.rings.len());
        let mut recorded = 0u64;
        for (w, ring) in self.inner.rings.iter().enumerate() {
            let head = ring.head.load(Ordering::Acquire);
            recorded += head;
            let cap = ring.slots.len() as u64;
            let start = head.saturating_sub(cap);
            let mut shard = Vec::with_capacity((head - start) as usize);
            for i in start..head {
                let slot = &ring.slots[(i & ring.mask) as usize];
                if slot.seq.load(Ordering::Acquire) != i + 1 {
                    continue;
                }
                let item = slot.item.load(Ordering::Relaxed);
                let meta = slot.meta.load(Ordering::Relaxed);
                if slot.seq.load(Ordering::Acquire) != i + 1 {
                    continue; // overwritten while being read
                }
                let Some(kind) = FlightKind::from_bits(meta & 0xff) else {
                    continue;
                };
                shard.push(FlightEvent {
                    worker: w,
                    seq: i,
                    ts_ns: meta >> 16,
                    label: ((meta >> 8) & 0xff) as u16,
                    kind,
                    item,
                });
            }
            events.push(shard);
        }
        FlightSnapshot {
            labels,
            events,
            recorded,
        }
    }

    /// Renders the black-box dump as JSONL text (header line + one line
    /// per event, canonically sorted — see the module docs).
    pub fn render_dump(&self, meta: &DumpMeta) -> String {
        // The label registration index orders same-timestamp tiebreaks
        // (registration order is pipeline order) but is not part of the
        // wire format, so it rides next to each event, not inside it.
        let snap = self.snapshot();
        let mut events: Vec<(u16, DumpEvent)> = snap
            .flat()
            .into_iter()
            .map(|e| {
                (
                    e.label,
                    DumpEvent {
                        stage: snap
                            .labels
                            .get(e.label as usize)
                            .cloned()
                            .unwrap_or_else(|| format!("label{}", e.label)),
                        kind: e.kind.as_str().to_string(),
                        item: e.item,
                        ts_ns: e.ts_ns,
                    },
                )
            })
            .collect();
        events.sort_by(|(la, a), (lb, b)| {
            (a.item, *la, a.kind.as_str())
                .cmp(&(b.item, *lb, b.kind.as_str()))
                .then(a.ts_ns.cmp(&b.ts_ns))
        });

        let quarantined: BTreeSet<u64> = events
            .iter()
            .filter(|(_, e)| e.kind == "quarantine")
            .map(|(_, e)| e.item)
            .collect();
        let mut fault_sites: BTreeMap<String, u64> = BTreeMap::new();
        // Offenders keyed (class, item): frame ids and block indices
        // overlap numerically, so a quarantined frame 0 must not inherit
        // block 0's journey (and vice versa).
        let mut offending: BTreeSet<(&'static str, u64)> =
            quarantined.iter().map(|&i| ("frame", i)).collect();
        for (_, e) in &events {
            if e.kind == "fault" || e.kind == "block_fault" {
                *fault_sites.entry(e.stage.clone()).or_insert(0) += 1;
                offending.insert((item_class(&e.kind), e.item));
            }
        }
        let chains_truncated = offending.len() > MAX_CHAINS;
        let chains: Vec<DumpChain> = offending
            .iter()
            .take(MAX_CHAINS)
            .map(|&(class, item)| {
                let mut chain: Vec<(u16, DumpEvent)> = events
                    .iter()
                    .filter(|(_, e)| e.item == item && item_class(&e.kind) == class)
                    .cloned()
                    .collect();
                // Causal order within one item's journey: timestamps, with
                // (label, kind) as the deterministic tiebreak — label
                // registration order is pipeline order.
                chain.sort_by(|(la, a), (lb, b)| {
                    (a.ts_ns, *la, a.kind.as_str()).cmp(&(b.ts_ns, *lb, b.kind.as_str()))
                });
                DumpChain {
                    item,
                    class: class.to_string(),
                    events: chain.into_iter().map(|(_, e)| e).collect(),
                }
            })
            .collect();

        // Blame: the supervisor's verdict wins (watchdog/panic stage);
        // otherwise the stage that quarantined the most frames, else the
        // hottest fault site.
        let blamed_stage = meta.blamed_stage.clone().or_else(|| {
            let mut by_stage: BTreeMap<&str, u64> = BTreeMap::new();
            for (_, e) in &events {
                if e.kind == "quarantine" {
                    *by_stage.entry(e.stage.as_str()).or_insert(0) += 1;
                }
            }
            by_stage
                .iter()
                .max_by_key(|(_, &n)| n)
                .map(|(s, _)| s.to_string())
                .or_else(|| {
                    fault_sites
                        .iter()
                        .max_by_key(|(_, &n)| n)
                        .map(|(s, _)| s.clone())
                })
        });

        let header = DumpHeader {
            schema_version: FLIGHT_SCHEMA_VERSION,
            fingerprint: meta.fingerprint.clone(),
            session: meta.session.clone(),
            outcome: meta.outcome.clone(),
            reason: meta.reason.clone(),
            blamed_stage,
            quarantined_frames: quarantined.into_iter().collect(),
            fault_sites: fault_sites.into_iter().collect(),
            chains,
            chains_truncated,
            workers: snap.events.len(),
            events: events.len() as u64,
            recorded: snap.recorded,
        };
        let mut out = serde_json::to_string(&header).expect("dump header serialization");
        out.push('\n');
        for (_, e) in &events {
            out.push_str(&serde_json::to_string(e).expect("dump event serialization"));
            out.push('\n');
        }
        out
    }

    /// Writes the dump to `dir/flight_<fingerprint>.jsonl` (overwriting a
    /// previous dump of the same config) and returns the path.
    pub fn write_dump(&self, dir: &Path, meta: &DumpMeta) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flight_{}.jsonl", meta.fingerprint));
        std::fs::write(&path, self.render_dump(meta))?;
        Ok(path)
    }
}

/// Run identity and verdict stamped into a dump header by the executor.
#[derive(Debug, Clone, Default)]
pub struct DumpMeta {
    /// Config fingerprint of the run (see [`crate::ledger`]).
    pub fingerprint: String,
    /// Tenant label, when the run was a multiplexed session.
    pub session: Option<String>,
    /// Run verdict (`degraded` | `failed`).
    pub outcome: String,
    /// Why the dump was taken (`degraded_run`, `watchdog_stall`, …).
    pub reason: String,
    /// Stage the supervisor blamed (watchdog/panic provenance); when
    /// `None` the dump derives blame from quarantine/fault tallies.
    pub blamed_stage: Option<String>,
}

/// Line 1 of a black-box dump.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DumpHeader {
    /// [`FLIGHT_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Config fingerprint of the run.
    pub fingerprint: String,
    /// Tenant label, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub session: Option<String>,
    /// Run verdict.
    pub outcome: String,
    /// Dump trigger.
    pub reason: String,
    /// The stage held responsible.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub blamed_stage: Option<String>,
    /// Frame ids quarantined by integrity checks, ascending.
    pub quarantined_frames: Vec<u64>,
    /// Fault-site firings surviving in the rings, `(site, count)` pairs
    /// sorted by site name (the vendored serde has no map impls).
    pub fault_sites: Vec<(String, u64)>,
    /// Per-offending-item causal chains (frame id → stage timestamps →
    /// fault sites hit).
    pub chains: Vec<DumpChain>,
    /// Whether offending items beyond [`MAX_CHAINS`] were left unexpanded.
    #[serde(default)]
    pub chains_truncated: bool,
    /// Ring shards the recorder kept.
    pub workers: usize,
    /// Event lines following this header.
    pub events: u64,
    /// Total events recorded, including ones the rings overwrote.
    pub recorded: u64,
}

impl DumpHeader {
    /// Firing count of one fault site (0 when the site never fired).
    pub fn fault_site_count(&self, site: &str) -> u64 {
        self.fault_sites
            .iter()
            .find(|(s, _)| s == site)
            .map_or(0, |(_, n)| *n)
    }
}

/// One item's causal chain in a dump header.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DumpChain {
    /// Frame id or block index (see `class` for which).
    pub item: u64,
    /// Item namespace: `frame` or `block`.
    pub class: String,
    /// Every surviving event for this item, in causal order.
    pub events: Vec<DumpEvent>,
}

/// One event line of a black-box dump.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DumpEvent {
    /// Stage or fault-site name.
    pub stage: String,
    /// [`FlightKind::as_str`] wire name.
    pub kind: String,
    /// Frame id or block index.
    pub item: u64,
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
}

/// Parses a dump back into its header and event lines.
pub fn parse_dump(text: &str) -> Result<(DumpHeader, Vec<DumpEvent>), String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header: DumpHeader = serde_json::from_str(lines.next().ok_or("empty dump")?)
        .map_err(|e| format!("bad dump header: {e}"))?;
    let events: Result<Vec<DumpEvent>, String> = lines
        .map(|l| serde_json::from_str(l).map_err(|e| format!("bad dump event `{l}`: {e}")))
        .collect();
    Ok((header, events?))
}

/// Replaces every `"ts_ns":<digits>` value in dump text with `"ts_ns":0`
/// — the normalization under which two same-`(seed, spec)` runs must be
/// byte-identical.
pub fn strip_timestamps(text: &str) -> String {
    const KEY: &str = "\"ts_ns\":";
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find(KEY) {
        let after = pos + KEY.len();
        out.push_str(&rest[..after]);
        out.push('0');
        rest = rest[after..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> DumpMeta {
        DumpMeta {
            fingerprint: "deadbeef".into(),
            session: None,
            outcome: "degraded".into(),
            reason: "test".into(),
            blamed_stage: None,
        }
    }

    #[test]
    fn record_and_snapshot_round_trip_in_order() {
        let rec = FlightRecorder::new(1, 64);
        let src = rec.register("source");
        let link = rec.register("link");
        assert_eq!(rec.register("source"), src, "idempotent registration");
        for i in 0..10u64 {
            rec.record_at(src, FlightKind::FrameEgress, i, 100 + i);
            rec.record_at(link, FlightKind::FrameIngress, i, 200 + i);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.labels, vec!["source", "link"]);
        assert_eq!(snap.recorded, 20);
        let events = &snap.events[0];
        assert_eq!(events.len(), 20);
        // Per-worker recording order is preserved.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
        assert_eq!(events[0].kind, FlightKind::FrameEgress);
        assert_eq!(events[0].item, 0);
        assert_eq!(events[0].ts_ns, 100);
        assert_eq!(events[1].label, link);
    }

    #[test]
    fn overwrite_keeps_the_newest_events() {
        let rec = FlightRecorder::new(1, 8);
        let s = rec.register("s");
        for i in 0..20u64 {
            rec.record_at(s, FlightKind::FrameEgress, i, i);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.recorded, 20);
        let items: Vec<u64> = snap.events[0].iter().map(|e| e.item).collect();
        assert_eq!(items, (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn dump_carries_chains_blame_and_parses_back() {
        let rec = FlightRecorder::new(2, 64);
        let src = rec.register("source");
        let acc = rec.register("accumulate");
        let site = rec.register("dma.bitflip");
        for i in 0..4u64 {
            rec.record_at(src, FlightKind::FrameEgress, i, 10 + i);
        }
        rec.record_at(site, FlightKind::Fault, 2, 20);
        rec.record_at(acc, FlightKind::FrameIngress, 2, 21);
        rec.record_at(acc, FlightKind::Quarantine, 2, 22);
        let text = rec.render_dump(&meta());
        let (header, events) = parse_dump(&text).unwrap();
        assert_eq!(header.schema_version, FLIGHT_SCHEMA_VERSION);
        assert_eq!(header.quarantined_frames, vec![2]);
        assert_eq!(header.fault_site_count("dma.bitflip"), 1);
        assert_eq!(header.blamed_stage.as_deref(), Some("accumulate"));
        assert_eq!(header.events as usize, events.len());
        assert_eq!(header.chains.len(), 1);
        let chain = &header.chains[0];
        assert_eq!(chain.item, 2);
        let kinds: Vec<&str> = chain.events.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(
            kinds,
            vec!["frame_egress", "fault", "frame_ingress", "quarantine"],
            "chain is in causal (timestamp) order"
        );
    }

    #[test]
    fn dump_is_deterministic_across_worker_assignment() {
        // The same logical events recorded from different threads (hence
        // different shards) must render identical dumps modulo timestamps.
        let render = |spread: bool| {
            let rec = FlightRecorder::new(4, 64);
            let src = rec.register("source");
            let acc = rec.register("accumulate");
            let record = move |items: &[u64], rec: &FlightRecorder| {
                for &i in items {
                    rec.record(src, FlightKind::FrameEgress, i);
                    rec.record(acc, FlightKind::FrameIngress, i);
                }
            };
            if spread {
                let r2 = rec.clone();
                std::thread::spawn(move || record(&[0, 2], &r2))
                    .join()
                    .unwrap();
                record(&[1, 3], &rec);
            } else {
                record(&[0, 1, 2, 3], &rec);
            }
            strip_timestamps(&rec.render_dump(&meta()))
        };
        assert_eq!(render(false), render(true));
    }

    #[test]
    fn strip_timestamps_normalizes_every_value() {
        let s = "{\"ts_ns\":123456}\n{\"x\":1,\"ts_ns\":9}\n";
        assert_eq!(
            strip_timestamps(s),
            "{\"ts_ns\":0}\n{\"x\":1,\"ts_ns\":0}\n"
        );
    }
}
