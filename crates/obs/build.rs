//! Stamps the build with `git describe` so every `ObsReport` and bench JSON
//! records exactly which tree produced it (the repo is offline, so this is
//! the only provenance source available).

use std::process::Command;

fn main() {
    let describe = Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=IMS_OBS_GIT_DESCRIBE={describe}");
    // Re-stamp when the checked-out commit moves (best-effort: the .git
    // layout is stable enough for a build hint, and a stale describe only
    // mislabels provenance, never correctness).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    println!("cargo:rerun-if-changed=../../.git/index");
}
