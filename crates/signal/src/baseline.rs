//! Baseline estimation and subtraction.
//!
//! Chemical background in IMS-TOF spectra varies slowly compared with peak
//! widths, so a rolling-minimum (morphological opening) followed by a light
//! smoothing recovers it well without eating into real peaks.

use crate::smooth::Smoother;

/// Estimates a slowly varying baseline via a rolling minimum of half-width
/// `half_window`, followed by a rolling maximum of the same width (a
/// morphological opening) and a moving-average polish.
pub fn rolling_baseline(signal: &[f64], half_window: usize) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let eroded = rolling_extreme(signal, half_window, f64::min);
    let opened = rolling_extreme(&eroded, half_window, f64::max);
    Smoother::moving_average(half_window.min(n / 2).max(1)).apply(&opened)
}

/// Subtracts the rolling baseline; the result is clamped at ≥ 0 when
/// `clamp` is set (counts cannot be negative).
pub fn subtract_baseline(signal: &[f64], half_window: usize, clamp: bool) -> Vec<f64> {
    let base = rolling_baseline(signal, half_window);
    signal
        .iter()
        .zip(base.iter())
        .map(|(&s, &b)| {
            let v = s - b;
            if clamp {
                v.max(0.0)
            } else {
                v
            }
        })
        .collect()
}

fn rolling_extreme(signal: &[f64], half_window: usize, op: fn(f64, f64) -> f64) -> Vec<f64> {
    let n = signal.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half_window);
            let hi = (i + half_window + 1).min(n);
            signal[lo..hi]
                .iter()
                .copied()
                .reduce(op)
                .expect("window is never empty")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peaks::gaussian_profile;

    #[test]
    fn flat_offset_is_recovered() {
        let sig = vec![5.0; 200];
        let base = rolling_baseline(&sig, 10);
        assert!(base.iter().all(|&b| (b - 5.0).abs() < 1e-9));
    }

    #[test]
    fn narrow_peak_survives_subtraction() {
        let mut sig = gaussian_profile(400, 200.0, 4.0, 1000.0);
        for v in sig.iter_mut() {
            *v += 10.0;
        }
        let out = subtract_baseline(&sig, 40, true);
        // Peak apex should retain most of its height…
        let apex = out[200];
        let original_apex = 1000.0 / (4.0 * (2.0 * std::f64::consts::PI).sqrt());
        assert!(
            apex > 0.85 * original_apex,
            "apex {apex} vs {original_apex}"
        );
        // …while the far field is close to zero.
        assert!(out[10] < 1.0, "far field {}", out[10]);
        assert!(out[390] < 1.0);
    }

    #[test]
    fn sloped_baseline_is_tracked() {
        let sig: Vec<f64> = (0..300).map(|i| 2.0 + i as f64 * 0.05).collect();
        let base = rolling_baseline(&sig, 15);
        for i in 30..270 {
            assert!(
                (base[i] - sig[i]).abs() < 1.6,
                "bin {i}: baseline {} vs signal {}",
                base[i],
                sig[i]
            );
        }
    }

    #[test]
    fn clamp_removes_negatives() {
        let sig = vec![1.0, 0.0, 1.0, 0.0, 1.0];
        let out = subtract_baseline(&sig, 1, true);
        assert!(out.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn empty_input() {
        assert!(rolling_baseline(&[], 5).is_empty());
        assert!(subtract_baseline(&[], 5, true).is_empty());
    }
}
