//! Elementary statistics shared by the estimators and the experiment harness.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance (0 for slices shorter than 2).
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Median (0 for an empty slice). `O(n log n)`.
pub fn median(x: &[f64]) -> f64 {
    percentile(x, 50.0)
}

/// Percentile in `[0, 100]` with linear interpolation between order
/// statistics. Returns 0 for an empty slice.
pub fn percentile(x: &[f64], p: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = x.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median absolute deviation, scaled by 1.4826 so it estimates σ for
/// Gaussian data. Robust to outliers (peaks riding on the noise floor).
pub fn mad_sigma(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let med = median(x);
    let deviations: Vec<f64> = x.iter().map(|v| (v - med).abs()).collect();
    1.4826 * median(&deviations)
}

/// Pearson correlation coefficient (0 if either side is constant).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    if x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Root-mean-square error between two equal-length series.
pub fn rmse(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    if x.is_empty() {
        return 0.0;
    }
    let se: f64 = x.iter().zip(y.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
    (se / x.len() as f64).sqrt()
}

/// Largest absolute value in the slice (0 if empty).
pub fn max_abs(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |acc, v| acc.max(v.abs()))
}

/// Index and value of the maximum element (`None` if empty).
pub fn argmax(x: &[f64]) -> Option<(usize, f64)> {
    x.iter().enumerate().fold(None, |best, (i, &v)| match best {
        Some((_, bv)) if bv >= v => best,
        _ => Some((i, v)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-12);
        assert!((variance(&x) - 4.0).abs() < 1e-12);
        assert!((std_dev(&x) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let x = [10.0, 20.0, 30.0, 40.0];
        assert!((percentile(&x, 0.0) - 10.0).abs() < 1e-12);
        assert!((percentile(&x, 100.0) - 40.0).abs() < 1e-12);
        assert!((percentile(&x, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn mad_estimates_gaussian_sigma() {
        // Deterministic pseudo-Gaussian ramp through the quantile function is
        // overkill; a symmetric triangular set is enough to sanity-check scale.
        let x: Vec<f64> = (-500..=500).map(|i| i as f64 / 100.0).collect();
        let sigma = mad_sigma(&x);
        assert!(sigma > 3.0 && sigma < 4.5, "sigma {sigma}");
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let z: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
        let c = vec![5.0; 50];
        assert_eq!(pearson(&x, &c), 0.0);
    }

    #[test]
    fn rmse_zero_for_identical() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&x, &x), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn argmax_finds_first_max() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), Some((1, 5.0)));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(mad_sigma(&[]), 0.0);
        assert_eq!(max_abs(&[]), 0.0);
    }
}
