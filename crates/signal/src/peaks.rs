//! Peak detection and shape analysis for reconstructed mobility spectra.
//!
//! The evaluation scores every deconvolution by the peaks it recovers:
//! centroid position (drift-time accuracy), FWHM (resolving power), area
//! (quantitation), and height over the local noise floor (SNR). The detector
//! here is a prominence-gated local-maximum finder with sub-bin centroiding —
//! deliberately simple, deterministic, and fully testable.

use crate::stats;
use serde::{Deserialize, Serialize};

/// A detected peak.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Index of the apex bin.
    pub apex: usize,
    /// Intensity-weighted centroid, in fractional bins.
    pub centroid: f64,
    /// Apex height (above the supplied baseline, if any).
    pub height: f64,
    /// Integrated area between the half-height crossings.
    pub area: f64,
    /// Full width at half maximum, in bins (linear-interpolated).
    pub fwhm: f64,
}

impl Peak {
    /// Resolving power `R = t/Δt` for a peak centred at `centroid` bins.
    ///
    /// In drift-time units this is exactly the conventional IMS resolving
    /// power when the axis origin is the gate-opening time.
    pub fn resolving_power(&self) -> f64 {
        if self.fwhm <= 0.0 {
            return 0.0;
        }
        self.centroid / self.fwhm
    }
}

/// Configuration of the peak finder.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PeakFinder {
    /// Minimum apex height (absolute units) for a candidate.
    pub min_height: f64,
    /// Minimum prominence relative to the higher of the two flanking valleys.
    pub min_prominence: f64,
    /// Half-window (bins) used for centroiding and area integration.
    pub window: usize,
}

impl Default for PeakFinder {
    fn default() -> Self {
        Self {
            min_height: 0.0,
            min_prominence: 0.0,
            window: 10,
        }
    }
}

impl PeakFinder {
    /// Creates a finder with an absolute height threshold.
    pub fn with_min_height(min_height: f64) -> Self {
        Self {
            min_height,
            ..Default::default()
        }
    }

    /// Finds peaks in `signal`, most intense first.
    pub fn find(&self, signal: &[f64]) -> Vec<Peak> {
        let n = signal.len();
        if n < 3 {
            return Vec::new();
        }
        let mut peaks = Vec::new();
        let mut i = 1;
        while i + 1 < n {
            // A plateau apex counts once, at its left edge.
            if signal[i] > signal[i - 1] && signal[i] >= signal[i + 1] {
                let apex = i;
                let height = signal[apex];
                if height >= self.min_height {
                    let prominence = self.prominence(signal, apex);
                    if prominence >= self.min_prominence {
                        peaks.push(self.characterise(signal, apex));
                    }
                }
                // Skip the plateau.
                let mut j = i + 1;
                while j + 1 < n && signal[j] == signal[apex] {
                    j += 1;
                }
                i = j;
            } else {
                i += 1;
            }
        }
        peaks.sort_by(|a, b| b.height.partial_cmp(&a.height).expect("NaN peak height"));
        peaks
    }

    /// Prominence: apex height minus the higher of the two valley minima
    /// between this apex and the nearest higher terrain (or signal edge).
    fn prominence(&self, signal: &[f64], apex: usize) -> f64 {
        let h = signal[apex];
        let mut left_min = h;
        let mut i = apex;
        while i > 0 {
            i -= 1;
            if signal[i] > h {
                break;
            }
            left_min = left_min.min(signal[i]);
        }
        let mut right_min = h;
        let mut j = apex;
        while j + 1 < signal.len() {
            j += 1;
            if signal[j] > h {
                break;
            }
            right_min = right_min.min(signal[j]);
        }
        h - left_min.max(right_min)
    }

    fn characterise(&self, signal: &[f64], apex: usize) -> Peak {
        let n = signal.len();
        let lo = apex.saturating_sub(self.window);
        let hi = (apex + self.window + 1).min(n);
        let height = signal[apex];
        let half = height / 2.0;

        // Half-height crossings with linear interpolation.
        let mut left = apex as f64;
        for i in (lo..apex).rev() {
            if signal[i] <= half {
                let (y0, y1) = (signal[i], signal[i + 1]);
                let frac = if y1 > y0 {
                    (half - y0) / (y1 - y0)
                } else {
                    0.5
                };
                left = i as f64 + frac;
                break;
            }
            left = i as f64;
        }
        let mut right = apex as f64;
        for i in apex + 1..hi {
            if signal[i] <= half {
                let (y0, y1) = (signal[i - 1], signal[i]);
                let frac = if y0 > y1 {
                    (y0 - half) / (y0 - y1)
                } else {
                    0.5
                };
                right = (i - 1) as f64 + frac;
                break;
            }
            right = i as f64;
        }
        let fwhm = (right - left).max(f64::MIN_POSITIVE);

        // Centroid and area over the window, only counting positive signal.
        let mut wsum = 0.0;
        let mut isum = 0.0;
        for (i, &v) in signal[lo..hi].iter().enumerate() {
            let v = v.max(0.0);
            wsum += v * (lo + i) as f64;
            isum += v;
        }
        let centroid = if isum > 0.0 { wsum / isum } else { apex as f64 };
        Peak {
            apex,
            centroid,
            height,
            area: isum,
            fwhm,
        }
    }
}

/// Convenience: find peaks above `k·σ` where σ is a robust (MAD) noise
/// estimate of the whole trace.
pub fn find_peaks_sigma(signal: &[f64], k: f64) -> Vec<Peak> {
    let sigma = stats::mad_sigma(signal);
    let baseline = stats::median(signal);
    PeakFinder {
        min_height: baseline + k * sigma.max(f64::MIN_POSITIVE),
        min_prominence: k * sigma.max(f64::MIN_POSITIVE) / 2.0,
        window: 15,
    }
    .find(signal)
}

/// Generates a Gaussian peak profile (`area`, centre `mu` bins, σ in bins)
/// sampled on `n` bins — the canonical arrival-time envelope used throughout
/// the tests and workload generators.
pub fn gaussian_profile(n: usize, mu: f64, sigma: f64, area: f64) -> Vec<f64> {
    assert!(sigma > 0.0, "sigma must be positive");
    let norm = area / (sigma * (2.0 * std::f64::consts::PI).sqrt());
    (0..n)
        .map(|i| {
            let z = (i as f64 - mu) / sigma;
            norm * (-0.5 * z * z).exp()
        })
        .collect()
}

/// Error function, Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5×10⁻⁷).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Gaussian peak deposited by *bin integration* (exact area regardless of
/// σ/bin ratio): bin `i` receives the integral of the Gaussian over
/// `[i, i+1)`. Use this instead of [`gaussian_profile`] whenever σ can drop
/// below ~1 bin (e.g. high-resolution TOF peaks on a coarse m/z grid).
pub fn gaussian_binned(n: usize, mu: f64, sigma: f64, area: f64) -> Vec<f64> {
    assert!(sigma > 0.0, "sigma must be positive");
    let inv = 1.0 / (sigma * std::f64::consts::SQRT_2);
    let cdf = |x: f64| 0.5 * (1.0 + erf((x - mu) * inv));
    let mut out = vec![0.0; n];
    // Only bins within ±8σ matter.
    let lo = ((mu - 8.0 * sigma).floor().max(0.0)) as usize;
    let hi = ((mu + 8.0 * sigma).ceil().min(n as f64).max(0.0)) as usize;
    for (i, o) in out.iter_mut().enumerate().take(hi).skip(lo) {
        *o = area * (cdf(i as f64 + 1.0) - cdf(i as f64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1e-6); // A&S 7.1.26 has |ε| ≤ 1.5e-7
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-6);
    }

    #[test]
    fn binned_gaussian_conserves_area_even_when_narrow() {
        for sigma in [0.1, 0.3, 1.0, 5.0] {
            let sig = gaussian_binned(200, 100.3, sigma, 1234.0);
            let total: f64 = sig.iter().sum();
            assert!((total - 1234.0).abs() < 0.5, "sigma {sigma}: area {total}");
        }
    }

    #[test]
    fn binned_matches_sampled_for_wide_peaks() {
        let a = gaussian_binned(300, 150.0, 8.0, 100.0);
        let b = gaussian_profile(300, 149.5, 8.0, 100.0); // bin-centre offset
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < 0.05, "bin {i}: {x} vs {y}");
        }
    }

    #[test]
    fn finds_single_gaussian() {
        let sig = gaussian_profile(200, 100.0, 5.0, 1000.0);
        let peaks = PeakFinder::default().find(&sig);
        assert_eq!(peaks.len(), 1);
        let p = peaks[0];
        assert!((p.centroid - 100.0).abs() < 0.2, "centroid {}", p.centroid);
        // FWHM of a Gaussian = 2.3548 σ.
        assert!((p.fwhm - 2.3548 * 5.0).abs() < 0.5, "fwhm {}", p.fwhm);
    }

    #[test]
    fn resolves_two_separated_peaks() {
        let mut sig = gaussian_profile(400, 100.0, 4.0, 500.0);
        let second = gaussian_profile(400, 300.0, 4.0, 250.0);
        for (a, b) in sig.iter_mut().zip(second.iter()) {
            *a += b;
        }
        let peaks = PeakFinder::default().find(&sig);
        assert_eq!(peaks.len(), 2);
        // Sorted most intense first.
        assert!((peaks[0].centroid - 100.0).abs() < 1.0);
        assert!((peaks[1].centroid - 300.0).abs() < 1.0);
        assert!(peaks[0].height > peaks[1].height);
    }

    #[test]
    fn height_threshold_suppresses_small_peaks() {
        let mut sig = gaussian_profile(400, 100.0, 4.0, 500.0);
        let second = gaussian_profile(400, 300.0, 4.0, 10.0);
        for (a, b) in sig.iter_mut().zip(second.iter()) {
            *a += b;
        }
        let peaks = PeakFinder::with_min_height(5.0).find(&sig);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].apex, 100);
    }

    #[test]
    fn prominence_rejects_ripple_on_shoulder() {
        // A big peak with a tiny ripple on its far tail (the bump must exceed
        // the local slope to form a local maximum at all).
        let mut sig = gaussian_profile(200, 100.0, 10.0, 1000.0);
        sig[130] += 0.4; // small bump on the descending tail
        let strict = PeakFinder {
            min_prominence: 1.0,
            ..Default::default()
        };
        assert_eq!(strict.find(&sig).len(), 1);
        let lax = PeakFinder::default();
        assert!(lax.find(&sig).len() >= 2);
    }

    #[test]
    fn plateau_counts_once() {
        let mut sig = vec![0.0; 20];
        for v in sig.iter_mut().take(12).skip(8) {
            *v = 5.0;
        }
        let peaks = PeakFinder::default().find(&sig);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].apex, 8);
    }

    #[test]
    fn resolving_power_scales_with_position() {
        let sig = gaussian_profile(1000, 800.0, 4.0, 1000.0);
        let p = PeakFinder::default().find(&sig)[0];
        let r = p.resolving_power();
        assert!((r - 800.0 / (2.3548 * 4.0)).abs() < 5.0, "R = {r}");
    }

    #[test]
    fn sigma_gate_on_noisy_trace() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let mut sig = gaussian_profile(500, 250.0, 5.0, 2000.0);
        crate::noise::add_electronic_noise(&mut rng, &mut sig, 1.0);
        let peaks = find_peaks_sigma(&sig, 5.0);
        assert!(!peaks.is_empty());
        assert!((peaks[0].centroid - 250.0).abs() < 2.0);
    }

    #[test]
    fn short_signals_yield_nothing() {
        assert!(PeakFinder::default().find(&[]).is_empty());
        assert!(PeakFinder::default().find(&[1.0, 2.0]).is_empty());
    }

    #[test]
    fn gaussian_profile_area_is_conserved() {
        let sig = gaussian_profile(400, 200.0, 8.0, 1234.0);
        let total: f64 = sig.iter().sum();
        assert!((total - 1234.0).abs() < 1.0, "area {total}");
    }
}
