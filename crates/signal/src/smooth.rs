//! Smoothing filters: Savitzky–Golay (least-squares polynomial) and moving
//! average, with reflective edge handling.
//!
//! Savitzky–Golay coefficients are derived from first principles by solving
//! the polynomial least-squares fit with the dense solver in
//! [`crate::matrix`], rather than hard-coding the classic tables — the
//! published table values appear as test vectors instead.

use crate::matrix::Matrix;

/// A symmetric FIR smoothing filter.
#[derive(Debug, Clone)]
pub struct Smoother {
    /// Symmetric filter kernel of odd length.
    kernel: Vec<f64>,
}

impl Smoother {
    /// Savitzky–Golay smoother with window `2m+1` and polynomial order `p`.
    ///
    /// # Panics
    /// Panics if the window does not fit the polynomial (`2m + 1 <= p`).
    pub fn savitzky_golay(half_window: usize, poly_order: usize) -> Self {
        let w = 2 * half_window + 1;
        assert!(
            w > poly_order,
            "window {w} too small for polynomial order {poly_order}"
        );
        // Design matrix A[i][j] = t_i^j, t_i = -m..=m. The smoothed value at
        // the window centre is the fitted polynomial at t = 0, i.e. the
        // coefficient c_0 of the LS fit: c = (AᵀA)⁻¹Aᵀy, kernel row = first
        // row of (AᵀA)⁻¹Aᵀ.
        let a = Matrix::from_fn(w, poly_order + 1, |i, j| {
            let t = i as f64 - half_window as f64;
            t.powi(j as i32)
        });
        let at = a.transpose();
        let ata = at.matmul(&a);
        let inv = ata
            .inverse()
            .expect("Savitzky-Golay normal equations are singular");
        let pseudo = inv.matmul(&at);
        let kernel = pseudo.row(0).to_vec();
        Self { kernel }
    }

    /// Simple moving average over a window of `2m+1`.
    pub fn moving_average(half_window: usize) -> Self {
        let w = 2 * half_window + 1;
        Self {
            kernel: vec![1.0 / w as f64; w],
        }
    }

    /// Filter kernel (odd length, centred).
    pub fn kernel(&self) -> &[f64] {
        &self.kernel
    }

    /// Applies the filter with reflective boundary extension.
    pub fn apply(&self, signal: &[f64]) -> Vec<f64> {
        let n = signal.len();
        let m = self.kernel.len() / 2;
        if n == 0 {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                self.kernel
                    .iter()
                    .enumerate()
                    .map(|(k, &c)| {
                        let offset = k as isize - m as isize;
                        c * signal[reflect(i as isize + offset, n)]
                    })
                    .sum()
            })
            .collect()
    }
}

/// Reflects an index into `[0, n)` (mirror boundary, no repeated edge).
fn reflect(idx: isize, n: usize) -> usize {
    let n = n as isize;
    let mut i = idx;
    // Period of the reflected extension is 2n - 2 (for n > 1).
    if n == 1 {
        return 0;
    }
    let period = 2 * n - 2;
    i = i.rem_euclid(period);
    if i >= n {
        i = period - i;
    }
    i as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sg_quadratic_window5_matches_published_table() {
        // Classic SG (m=2, order 2): (-3, 12, 17, 12, -3)/35.
        let s = Smoother::savitzky_golay(2, 2);
        let expect = [
            -3.0 / 35.0,
            12.0 / 35.0,
            17.0 / 35.0,
            12.0 / 35.0,
            -3.0 / 35.0,
        ];
        for (a, b) in s.kernel().iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-10, "kernel {a} vs table {b}");
        }
    }

    #[test]
    fn sg_preserves_polynomials_up_to_order() {
        // An order-2 SG filter must pass quadratics through unchanged.
        let s = Smoother::savitzky_golay(3, 2);
        let sig: Vec<f64> = (0..50)
            .map(|i| {
                let t = i as f64;
                0.5 * t * t - 3.0 * t + 7.0
            })
            .collect();
        let out = s.apply(&sig);
        for (i, (a, b)) in sig.iter().zip(out.iter()).enumerate().skip(3).take(44) {
            assert!((a - b).abs() < 1e-8, "bin {i}: {a} vs {b}");
        }
    }

    #[test]
    fn kernel_sums_to_one() {
        for (m, p) in [(2, 2), (3, 2), (4, 3), (6, 4)] {
            let s = Smoother::savitzky_golay(m, p);
            let sum: f64 = s.kernel().iter().sum();
            assert!((sum - 1.0).abs() < 1e-10, "m={m} p={p}: sum {sum}");
        }
    }

    #[test]
    fn moving_average_flattens_constant() {
        let s = Smoother::moving_average(3);
        let sig = vec![4.0; 20];
        let out = s.apply(&sig);
        assert!(out.iter().all(|&v| (v - 4.0).abs() < 1e-12));
    }

    #[test]
    fn moving_average_reduces_noise_variance() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let mut sig = vec![0.0; 2000];
        crate::noise::add_electronic_noise(&mut rng, &mut sig, 1.0);
        let out = Smoother::moving_average(2).apply(&sig);
        let v_in = crate::stats::variance(&sig);
        let v_out = crate::stats::variance(&out);
        // 5-point average divides white-noise variance by ~5.
        assert!(v_out < v_in / 3.5, "variance {v_in} -> {v_out}");
    }

    #[test]
    fn reflect_boundary_indices() {
        assert_eq!(reflect(-1, 5), 1);
        assert_eq!(reflect(-2, 5), 2);
        assert_eq!(reflect(5, 5), 3);
        assert_eq!(reflect(6, 5), 2);
        assert_eq!(reflect(0, 1), 0);
        assert_eq!(reflect(3, 5), 3);
    }

    #[test]
    fn empty_signal() {
        let s = Smoother::moving_average(1);
        assert!(s.apply(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn sg_window_checked() {
        let _ = Smoother::savitzky_golay(1, 3);
    }
}
