//! Digital signal processing substrate for the HT-IMS simulation.
//!
//! Everything here is implemented from first principles (no external DSP
//! crates): fast Walsh–Hadamard and Fourier transforms, circular
//! correlation/convolution, dense linear algebra, counting-statistics noise
//! models, and the peak-shape analysis used to score reconstructed ion
//! mobility spectra.
//!
//! The modules are deliberately generic — none of them know anything about
//! ion mobility — so they double as the numerical kernels for both the
//! "software component" (floating point) and, via [`crate::fft`]-validated
//! reference results, the fixed-point FPGA model in `ims-fpga`.
//!
//! # Example: find a peak in a noisy trace
//!
//! ```
//! use ims_signal::peaks::{gaussian_profile, PeakFinder};
//!
//! let trace = gaussian_profile(200, 120.0, 4.0, 1000.0);
//! let peaks = PeakFinder::default().find(&trace);
//! assert_eq!(peaks.len(), 1);
//! assert!((peaks[0].centroid - 120.0).abs() < 0.5);
//! assert!((peaks[0].fwhm - 2.3548 * 4.0).abs() < 0.5);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod correlate;
pub mod fft;
pub mod fwht;
pub mod matrix;
pub mod noise;
pub mod peaks;
pub mod resample;
pub mod simd;
pub mod smooth;
pub mod snr;
pub mod stats;

pub use fft::Complex;
pub use matrix::Matrix;
pub use peaks::Peak;
pub use simd::{DEFAULT_PANEL_WIDTH, FIXED_POINT_PANEL_WIDTH};
