//! Complex FFT: iterative radix-2 for power-of-two lengths and Bluestein's
//! chirp-z algorithm for arbitrary lengths.
//!
//! HT-IMS works with sequences of length `N = 2ⁿ − 1` (odd by construction),
//! so an arbitrary-length transform is required for the Fourier-domain
//! deconvolution paths (circulant inverses, Wiener/weighted deconvolution,
//! invertibility conditioning of oversampled sequences).

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real complex number.
    pub fn from_re(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// Unnormalised forward transform: `X[f] = Σ_k x[k]·e^{−2πi f k / M}`.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fft_pow2(data: &mut [Complex]) {
    fft_pow2_dir(data, false);
}

/// In-place inverse FFT (normalised by `1/M`) for power-of-two lengths.
pub fn ifft_pow2(data: &mut [Complex]) {
    fft_pow2_dir(data, true);
    let inv = 1.0 / data.len() as f64;
    for v in data.iter_mut() {
        *v = v.scale(inv);
    }
}

fn fft_pow2_dir(data: &mut [Complex], inverse: bool) {
    let m = data.len();
    if m <= 1 {
        return;
    }
    assert!(m.is_power_of_two(), "FFT length {m} is not a power of two");
    // Bit-reversal permutation.
    let bits = m.trailing_zeros();
    for i in 0..m {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= m {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for block in (0..m).step_by(len) {
            let mut w = Complex::ONE;
            for i in block..block + len / 2 {
                let u = data[i];
                let v = data[i + len / 2] * w;
                data[i] = u + v;
                data[i + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward DFT of arbitrary length (Bluestein chirp-z for non-powers of two).
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = input.to_vec();
        fft_pow2(&mut buf);
        return buf;
    }
    bluestein(input, false)
}

/// Inverse DFT of arbitrary length, normalised by `1/N`.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = input.to_vec();
        ifft_pow2(&mut buf);
        return buf;
    }
    let mut out = bluestein(input, true);
    let inv = 1.0 / n as f64;
    for v in out.iter_mut() {
        *v = v.scale(inv);
    }
    out
}

/// Forward DFT of a real signal.
pub fn rfft(input: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = input.iter().map(|&x| Complex::from_re(x)).collect();
    fft(&buf)
}

/// Bluestein's algorithm: express the DFT as a linear convolution with a
/// chirp, evaluated via a zero-padded power-of-two cyclic convolution.
fn bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp c[k] = e^{sign·iπ k²/N} (sign −1 forward, +1 inverse); k² is
    // reduced mod 2N to keep the phase argument small and exact.
    let two_n = 2 * n as u64;
    let chirp: Vec<Complex> = (0..n as u64)
        .map(|k| {
            let ksq = (k * k) % two_n;
            Complex::cis(sign * std::f64::consts::PI * ksq as f64 / n as f64)
        })
        .collect();
    let m = (2 * n - 1).next_power_of_two();
    // a[k] = x[k]·c[k], zero padded.
    let mut a = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
    }
    // b[k] = conj(c[k]) wrapped symmetrically so cyclic convolution gives the
    // linear correlation with negative lags.
    let mut b = vec![Complex::ZERO; m];
    for k in 0..n {
        let v = chirp[k].conj();
        b[k] = v;
        if k > 0 {
            b[m - k] = v;
        }
    }
    fft_pow2(&mut a);
    fft_pow2(&mut b);
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x = *x * *y;
    }
    ifft_pow2(&mut a);
    (0..n).map(|j| chirp[j] * a[j]).collect()
}

/// Direct `O(N²)` DFT used as a test oracle.
pub fn dft_direct(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|f| {
            let mut acc = Complex::ZERO;
            for (k, &x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (f as f64) * (k as f64) / n as f64;
                acc += x * Complex::cis(ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch at {i}: ({}, {}) vs ({}, {})",
                x.re,
                x.im,
                y.re,
                y.im
            );
        }
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|k| Complex::new((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos()))
            .collect()
    }

    #[test]
    fn pow2_matches_direct() {
        let x = ramp(64);
        let mut fast = x.clone();
        fft_pow2(&mut fast);
        assert_close(&fast, &dft_direct(&x), 1e-9);
    }

    #[test]
    fn bluestein_matches_direct_odd_lengths() {
        for n in [3usize, 7, 15, 31, 63, 127, 100, 255] {
            let x = ramp(n);
            let fast = fft(&x);
            assert_close(&fast, &dft_direct(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn round_trip_arbitrary_length() {
        for n in [5usize, 12, 31, 127, 129] {
            let x = ramp(n);
            let y = ifft(&fft(&x));
            assert_close(&y, &x, 1e-9 * n as f64);
        }
    }

    #[test]
    fn parseval_holds() {
        let x = ramp(127);
        let time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq: f64 = fft(&x).iter().map(|v| v.norm_sqr()).sum::<f64>() / 127.0;
        assert!((time - freq).abs() < 1e-8 * time);
    }

    #[test]
    fn dc_bin_is_sum() {
        let x: Vec<f64> = (0..31).map(|k| k as f64).collect();
        let spec = rfft(&x);
        let sum: f64 = x.iter().sum();
        assert!((spec[0].re - sum).abs() < 1e-9);
        assert!(spec[0].im.abs() < 1e-9);
    }

    #[test]
    fn empty_and_single() {
        assert!(fft(&[]).is_empty());
        let one = fft(&[Complex::new(2.0, -1.0)]);
        assert_eq!(one.len(), 1);
        assert!((one[0].re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let p = a * b;
        assert!((p.re - 5.0).abs() < 1e-12);
        assert!((p.im - 5.0).abs() < 1e-12);
        assert!(((a + b).re - 4.0).abs() < 1e-12);
        assert!(((a - b).im - 3.0).abs() < 1e-12);
        assert!((a.conj().im + 2.0).abs() < 1e-12);
        assert!((Complex::cis(0.0).re - 1.0).abs() < 1e-12);
    }
}
