//! Complex FFT: iterative radix-2 for power-of-two lengths and Bluestein's
//! chirp-z algorithm for arbitrary lengths.
//!
//! HT-IMS works with sequences of length `N = 2ⁿ − 1` (odd by construction),
//! so an arbitrary-length transform is required for the Fourier-domain
//! deconvolution paths (circulant inverses, Wiener/weighted deconvolution,
//! invertibility conditioning of oversampled sequences).

use crate::simd;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// `repr(C)` so a slice of `Complex` is guaranteed to be the interleaved
/// `re, im, re, im …` storage the SIMD kernels ([`crate::simd`]) reinterpret.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real complex number.
    pub fn from_re(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// Unnormalised forward transform: `X[f] = Σ_k x[k]·e^{−2πi f k / M}`.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fft_pow2(data: &mut [Complex]) {
    fft_pow2_dir(data, false);
}

/// In-place inverse FFT (normalised by `1/M`) for power-of-two lengths.
pub fn ifft_pow2(data: &mut [Complex]) {
    fft_pow2_dir(data, true);
    let inv = 1.0 / data.len() as f64;
    for v in data.iter_mut() {
        *v = v.scale(inv);
    }
}

fn fft_pow2_dir(data: &mut [Complex], inverse: bool) {
    let m = data.len();
    if m <= 1 {
        return;
    }
    assert!(m.is_power_of_two(), "FFT length {m} is not a power of two");
    // Bit-reversal permutation.
    let bits = m.trailing_zeros();
    for i in 0..m {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= m {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for block in (0..m).step_by(len) {
            let mut w = Complex::ONE;
            for i in block..block + len / 2 {
                let u = data[i];
                let v = data[i + len / 2] * w;
                data[i] = u + v;
                data[i + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward DFT of arbitrary length (Bluestein chirp-z for non-powers of two).
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = input.to_vec();
        fft_pow2(&mut buf);
        return buf;
    }
    bluestein(input, false)
}

/// Inverse DFT of arbitrary length, normalised by `1/N`.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = input.to_vec();
        ifft_pow2(&mut buf);
        return buf;
    }
    let mut out = bluestein(input, true);
    let inv = 1.0 / n as f64;
    for v in out.iter_mut() {
        *v = v.scale(inv);
    }
    out
}

/// Forward DFT of a real signal.
pub fn rfft(input: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = input.iter().map(|&x| Complex::from_re(x)).collect();
    fft(&buf)
}

/// Bluestein's algorithm: express the DFT as a linear convolution with a
/// chirp, evaluated via a zero-padded power-of-two cyclic convolution.
fn bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp c[k] = e^{sign·iπ k²/N} (sign −1 forward, +1 inverse); k² is
    // reduced mod 2N to keep the phase argument small and exact.
    let two_n = 2 * n as u64;
    let chirp: Vec<Complex> = (0..n as u64)
        .map(|k| {
            let ksq = (k * k) % two_n;
            Complex::cis(sign * std::f64::consts::PI * ksq as f64 / n as f64)
        })
        .collect();
    let m = (2 * n - 1).next_power_of_two();
    // a[k] = x[k]·c[k], zero padded.
    let mut a = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
    }
    // b[k] = conj(c[k]) wrapped symmetrically so cyclic convolution gives the
    // linear correlation with negative lags.
    let mut b = vec![Complex::ZERO; m];
    for k in 0..n {
        let v = chirp[k].conj();
        b[k] = v;
        if k > 0 {
            b[m - k] = v;
        }
    }
    fft_pow2(&mut a);
    fft_pow2(&mut b);
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x = *x * *y;
    }
    ifft_pow2(&mut a);
    (0..n).map(|j| chirp[j] * a[j]).collect()
}

/// A reusable DFT plan for one transform length, with panel-batched
/// execution.
///
/// The free functions [`fft`]/[`ifft`] rebuild their twiddle factors — and,
/// for non-power-of-two lengths, the entire Bluestein chirp and its spectrum
/// — on every call. A plan precomputes all of that once, using the *same*
/// arithmetic recurrences the free functions use, so a planned transform is
/// **bit-identical** per column to the free-function transform while doing
/// no allocation and no trigonometry in steady state.
///
/// [`FftPlan::forward_panel`]/[`FftPlan::inverse_panel`] additionally run a
/// whole panel of `width` independent columns (row-major, row `r` of column
/// `c` at `panel[r*width + c]`) through each butterfly level as contiguous
/// row sweeps: one twiddle load per row pair, unit-stride access over the
/// column dimension, auto-vectorizable. Per column the operation order is
/// exactly that of the scalar transform, which keeps batching bit-exact.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    kind: PlanKind,
}

#[derive(Debug, Clone)]
enum PlanKind {
    /// Length 0 or 1: the transform is the identity.
    Trivial,
    Pow2(Pow2Plan),
    Bluestein(Box<BluesteinPlan>),
}

/// Precomputed machinery for an in-place power-of-two transform.
#[derive(Debug, Clone)]
struct Pow2Plan {
    m: usize,
    /// Bit-reversal image of every index.
    rev: Vec<u32>,
    /// Per butterfly level (len = 2, 4, …, m): the twiddle chain
    /// `w_0 .. w_{len/2-1}` built with the same `w ← w·wlen` recurrence as
    /// [`fft_pow2`], forward sign.
    twiddles_fwd: Vec<Vec<Complex>>,
    /// Same, inverse sign.
    twiddles_inv: Vec<Vec<Complex>>,
}

/// Precomputed chirps and kernel spectra for Bluestein's algorithm.
#[derive(Debug, Clone)]
struct BluesteinPlan {
    /// Plan for the padded power-of-two convolution length.
    pow2: Pow2Plan,
    chirp_fwd: Vec<Complex>,
    chirp_inv: Vec<Complex>,
    /// `F(b)` for the forward chirp, computed once with [`fft_pow2`].
    b_fft_fwd: Vec<Complex>,
    /// `F(b)` for the inverse chirp.
    b_fft_inv: Vec<Complex>,
}

/// Reusable work arena for [`FftPlan`] panel transforms. Grows to the
/// largest `padded_len × width` seen, then never allocates again.
#[derive(Debug, Clone, Default)]
pub struct FftScratch {
    work: Vec<Complex>,
}

impl Pow2Plan {
    fn new(m: usize) -> Self {
        debug_assert!(m.is_power_of_two() && m > 1);
        let bits = m.trailing_zeros();
        let rev: Vec<u32> = (0..m)
            .map(|i| (i.reverse_bits() >> (usize::BITS - bits)) as u32)
            .collect();
        let chain = |inverse: bool| -> Vec<Vec<Complex>> {
            let sign = if inverse { 1.0 } else { -1.0 };
            let mut levels = Vec::new();
            let mut len = 2;
            while len <= m {
                let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
                let wlen = Complex::cis(ang);
                let mut w = Complex::ONE;
                let mut ws = Vec::with_capacity(len / 2);
                for _ in 0..len / 2 {
                    ws.push(w);
                    w = w * wlen;
                }
                levels.push(ws);
                len <<= 1;
            }
            levels
        };
        Self {
            m,
            rev,
            twiddles_fwd: chain(false),
            twiddles_inv: chain(true),
        }
    }

    /// In-place panel transform over `m` rows × `width` columns; per column
    /// bit-identical to [`fft_pow2`]/[`ifft_pow2`] (including the `1/m`
    /// scale on the inverse). The row sweeps run on the selected SIMD
    /// backend; every backend reproduces the scalar bits (see
    /// [`crate::simd`]).
    ///
    /// The butterfly levels are executed cache-blocked: a level of length
    /// `len` only couples rows within aligned `len`-row segments, so every
    /// level with `len ≤ seg` can run to completion inside one `seg`-row
    /// segment while that segment is resident in L1, before the next
    /// segment is touched. Reordering whole butterflies never changes the
    /// dataflow graph — each value is still computed from the same inputs
    /// by the same operations — so the blocked schedule is bit-identical
    /// to the level-by-level one. The remaining levels (`len > seg`) sweep
    /// the full panel once each; on the inverse transform the final sweep
    /// fuses the `1/m` normalisation into the last butterfly level, and a
    /// `post` row-diagonal (the Bluestein kernel spectrum) fuses into the
    /// final forward level the same way.
    fn panel(&self, panel: &mut [Complex], width: usize, inverse: bool, be: simd::Backend) {
        self.panel_post(panel, width, inverse, be, None);
    }

    /// [`Pow2Plan::panel`] with an optional per-row complex post-multiplier
    /// applied after the transform: `row[k] ← row[k]·post[k]`. Exactly
    /// equivalent to running [`Pow2Plan::panel`] and then one
    /// [`simd::cmul_inplace`] sweep per row (bit for bit); the hot path
    /// folds the multiply into the final butterfly level instead of paying
    /// one more full-panel pass.
    fn panel_post(
        &self,
        panel: &mut [Complex],
        width: usize,
        inverse: bool,
        be: simd::Backend,
        post: Option<&[Complex]>,
    ) {
        let m = self.m;
        debug_assert_eq!(panel.len(), m * width);
        // The scale fusion (inverse) and spectrum fusion (forward) both
        // claim the final level; the Bluestein driver never needs both.
        debug_assert!(post.is_none() || !inverse);
        for i in 0..m {
            let j = self.rev[i] as usize;
            if j > i {
                let (head, tail) = panel.split_at_mut(j * width);
                head[i * width..(i + 1) * width].swap_with_slice(&mut tail[..width]);
            }
        }
        let twiddles = if inverse {
            &self.twiddles_inv
        } else {
            &self.twiddles_fwd
        };
        // Largest power-of-two row count whose panel slice fits the L1 tile.
        const L1_TILE_BYTES: usize = 32 * 1024;
        let rows_fit = (L1_TILE_BYTES / (std::mem::size_of::<Complex>() * width.max(1))).max(2);
        let seg = (1usize << (usize::BITS - 1 - rows_fit.leading_zeros())).min(m);
        let seg_levels = seg.trailing_zeros() as usize;

        // Bottom levels (len = 2 .. seg), one L1-resident segment at a time.
        for lo in (0..m).step_by(seg) {
            let mut len = 2;
            for level in &twiddles[..seg_levels] {
                let half = len / 2;
                for block in (lo..lo + seg).step_by(len) {
                    for (t, i) in (block..block + half).enumerate() {
                        let w = level[t];
                        let (head, tail) = panel.split_at_mut((i + half) * width);
                        let top = &mut head[i * width..(i + 1) * width];
                        let bottom = &mut tail[..width];
                        simd::butterfly_complex(be, top, bottom, w);
                    }
                }
                len <<= 1;
            }
        }

        // Top levels (len = 2·seg .. m): full-panel sweeps. The last sweep
        // of an inverse transform carries the 1/m scale; the last sweep of
        // a forward transform carries the `post` row diagonal if given.
        let inv = 1.0 / m as f64;
        let mut len = seg * 2;
        for (li, level) in twiddles.iter().enumerate().skip(seg_levels) {
            let last = li + 1 == twiddles.len();
            let fuse_scale = inverse && last;
            let fuse_post = if last { post } else { None };
            let half = len / 2;
            for block in (0..m).step_by(len) {
                for (t, i) in (block..block + half).enumerate() {
                    let w = level[t];
                    let (head, tail) = panel.split_at_mut((i + half) * width);
                    let top = &mut head[i * width..(i + 1) * width];
                    let bottom = &mut tail[..width];
                    if let Some(p) = fuse_post {
                        simd::butterfly_complex_postmul(be, top, bottom, w, p[i], p[i + half]);
                    } else if fuse_scale {
                        simd::butterfly_complex_scale(be, top, bottom, w, inv);
                    } else {
                        simd::butterfly_complex(be, top, bottom, w);
                    }
                }
            }
            len <<= 1;
        }
        if inverse && seg_levels == twiddles.len() {
            // Every level ran in the L1-blocked pass; scale separately.
            simd::scale_complex(be, panel, inv);
        }
        if let Some(p) = post {
            if seg_levels == twiddles.len() {
                // No full-panel sweep to fuse into; apply the diagonal directly.
                for k in 0..m {
                    simd::cmul_inplace(be, &mut panel[k * width..(k + 1) * width], p[k]);
                }
            }
        }
    }
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    pub fn new(n: usize) -> Self {
        let kind = if n <= 1 {
            PlanKind::Trivial
        } else if n.is_power_of_two() {
            PlanKind::Pow2(Pow2Plan::new(n))
        } else {
            let m = (2 * n - 1).next_power_of_two();
            let pow2 = Pow2Plan::new(m);
            let build = |inverse: bool| -> (Vec<Complex>, Vec<Complex>) {
                let sign = if inverse { 1.0 } else { -1.0 };
                let two_n = 2 * n as u64;
                let chirp: Vec<Complex> = (0..n as u64)
                    .map(|k| {
                        let ksq = (k * k) % two_n;
                        Complex::cis(sign * std::f64::consts::PI * ksq as f64 / n as f64)
                    })
                    .collect();
                let mut b = vec![Complex::ZERO; m];
                for (k, c) in chirp.iter().enumerate() {
                    let v = c.conj();
                    b[k] = v;
                    if k > 0 {
                        b[m - k] = v;
                    }
                }
                fft_pow2(&mut b);
                (chirp, b)
            };
            let (chirp_fwd, b_fft_fwd) = build(false);
            let (chirp_inv, b_fft_inv) = build(true);
            PlanKind::Bluestein(Box::new(BluesteinPlan {
                pow2,
                chirp_fwd,
                chirp_inv,
                b_fft_fwd,
                b_fft_inv,
            }))
        };
        Self { n, kind }
    }

    /// Transform length `N`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the zero-length plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward DFT of a panel of `width` columns in place (row-major,
    /// `n` rows). Per column bit-identical to [`fft`].
    ///
    /// # Panics
    /// Panics if `panel.len() != self.len() * width`.
    pub fn forward_panel(&self, panel: &mut [Complex], width: usize, scratch: &mut FftScratch) {
        self.panel_dir(panel, width, scratch, false, simd::active());
    }

    /// [`FftPlan::forward_panel`] pinned to an explicit SIMD backend
    /// (testing hook; every backend is bit-identical).
    pub fn forward_panel_with(
        &self,
        be: simd::Backend,
        panel: &mut [Complex],
        width: usize,
        scratch: &mut FftScratch,
    ) {
        self.panel_dir(panel, width, scratch, false, be);
    }

    /// Inverse DFT (normalised by `1/N`) of a panel of `width` columns in
    /// place. Per column bit-identical to [`ifft`].
    ///
    /// # Panics
    /// Panics if `panel.len() != self.len() * width`.
    pub fn inverse_panel(&self, panel: &mut [Complex], width: usize, scratch: &mut FftScratch) {
        self.panel_dir(panel, width, scratch, true, simd::active());
    }

    /// [`FftPlan::inverse_panel`] pinned to an explicit SIMD backend
    /// (testing hook; every backend is bit-identical).
    pub fn inverse_panel_with(
        &self,
        be: simd::Backend,
        panel: &mut [Complex],
        width: usize,
        scratch: &mut FftScratch,
    ) {
        self.panel_dir(panel, width, scratch, true, be);
    }

    fn panel_dir(
        &self,
        panel: &mut [Complex],
        width: usize,
        scratch: &mut FftScratch,
        inverse: bool,
        be: simd::Backend,
    ) {
        assert_eq!(
            panel.len(),
            self.n * width,
            "panel shape mismatch: {} values for {} rows x {width} columns",
            panel.len(),
            self.n
        );
        match &self.kind {
            PlanKind::Trivial => {}
            PlanKind::Pow2(p) => p.panel(panel, width, inverse, be),
            PlanKind::Bluestein(b) => {
                let n = self.n;
                let m = b.pow2.m;
                let (chirp, b_fft) = if inverse {
                    (&b.chirp_inv, &b.b_fft_inv)
                } else {
                    (&b.chirp_fwd, &b.b_fft_fwd)
                };
                if scratch.work.len() < m * width {
                    scratch.work.resize(m * width, Complex::ZERO);
                }
                let work = &mut scratch.work[..m * width];
                // a[k] = x[k]·c[k], zero padded (same construction as the
                // free-function Bluestein). Rows 0..n are fully overwritten
                // by the chirp multiply, so only the padding rows need
                // re-zeroing between panels.
                work[n * width..].fill(Complex::ZERO);
                for k in 0..n {
                    let c = chirp[k];
                    let src = &panel[k * width..(k + 1) * width];
                    let dst = &mut work[k * width..(k + 1) * width];
                    simd::cmul_rows(be, dst, src, c);
                }
                // Forward convolution FFT with the kernel-spectrum multiply
                // fused into its final butterfly level (bit-identical to a
                // separate per-row sweep).
                b.pow2.panel_post(work, width, false, be, Some(b_fft));
                b.pow2.panel(work, width, true, be);
                if inverse {
                    // Fuse the 1/N normalisation into the output chirp: per
                    // element this is the same multiply followed by the same
                    // scale the scalar reference performs, so bits agree.
                    let inv = 1.0 / n as f64;
                    for j in 0..n {
                        let c = chirp[j];
                        let src = &work[j * width..(j + 1) * width];
                        let dst = &mut panel[j * width..(j + 1) * width];
                        simd::cmul_scale_rows(be, dst, src, c, inv);
                    }
                } else {
                    for j in 0..n {
                        let c = chirp[j];
                        let src = &work[j * width..(j + 1) * width];
                        let dst = &mut panel[j * width..(j + 1) * width];
                        simd::cmul_rows(be, dst, src, c);
                    }
                }
            }
        }
    }
}

/// Direct `O(N²)` DFT used as a test oracle.
pub fn dft_direct(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    (0..n)
        .map(|f| {
            let mut acc = Complex::ZERO;
            for (k, &x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (f as f64) * (k as f64) / n as f64;
                acc += x * Complex::cis(ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "mismatch at {i}: ({}, {}) vs ({}, {})",
                x.re,
                x.im,
                y.re,
                y.im
            );
        }
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|k| Complex::new((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos()))
            .collect()
    }

    #[test]
    fn pow2_matches_direct() {
        let x = ramp(64);
        let mut fast = x.clone();
        fft_pow2(&mut fast);
        assert_close(&fast, &dft_direct(&x), 1e-9);
    }

    #[test]
    fn bluestein_matches_direct_odd_lengths() {
        for n in [3usize, 7, 15, 31, 63, 127, 100, 255] {
            let x = ramp(n);
            let fast = fft(&x);
            assert_close(&fast, &dft_direct(&x), 1e-8 * n as f64);
        }
    }

    #[test]
    fn round_trip_arbitrary_length() {
        for n in [5usize, 12, 31, 127, 129] {
            let x = ramp(n);
            let y = ifft(&fft(&x));
            assert_close(&y, &x, 1e-9 * n as f64);
        }
    }

    #[test]
    fn parseval_holds() {
        let x = ramp(127);
        let time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq: f64 = fft(&x).iter().map(|v| v.norm_sqr()).sum::<f64>() / 127.0;
        assert!((time - freq).abs() < 1e-8 * time);
    }

    #[test]
    fn dc_bin_is_sum() {
        let x: Vec<f64> = (0..31).map(|k| k as f64).collect();
        let spec = rfft(&x);
        let sum: f64 = x.iter().sum();
        assert!((spec[0].re - sum).abs() < 1e-9);
        assert!(spec[0].im.abs() < 1e-9);
    }

    #[test]
    fn empty_and_single() {
        assert!(fft(&[]).is_empty());
        let one = fft(&[Complex::new(2.0, -1.0)]);
        assert_eq!(one.len(), 1);
        assert!((one[0].re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn plan_panel_is_bit_identical_to_free_functions() {
        for n in [1usize, 8, 7, 31, 127, 100] {
            let plan = FftPlan::new(n);
            let mut scratch = FftScratch::default();
            for width in [1usize, 3, 8] {
                // Column c gets a distinct deterministic signal.
                let columns: Vec<Vec<Complex>> = (0..width)
                    .map(|c| {
                        (0..n)
                            .map(|k| {
                                Complex::new(
                                    ((k * 13 + c * 7) as f64 * 0.31).sin(),
                                    ((k * 5 + c * 3) as f64 * 0.17).cos(),
                                )
                            })
                            .collect()
                    })
                    .collect();
                let mut panel = vec![Complex::ZERO; n * width];
                for (c, col) in columns.iter().enumerate() {
                    for (r, &v) in col.iter().enumerate() {
                        panel[r * width + c] = v;
                    }
                }
                let mut fwd = panel.clone();
                plan.forward_panel(&mut fwd, width, &mut scratch);
                for (c, col) in columns.iter().enumerate() {
                    let oracle = fft(col);
                    for r in 0..n {
                        let got = fwd[r * width + c];
                        assert_eq!(
                            (got.re.to_bits(), got.im.to_bits()),
                            (oracle[r].re.to_bits(), oracle[r].im.to_bits()),
                            "forward n={n} width={width} at ({r},{c})"
                        );
                    }
                }
                let mut inv = panel.clone();
                plan.inverse_panel(&mut inv, width, &mut scratch);
                for (c, col) in columns.iter().enumerate() {
                    let oracle = ifft(col);
                    for r in 0..n {
                        let got = inv[r * width + c];
                        assert_eq!(
                            (got.re.to_bits(), got.im.to_bits()),
                            (oracle[r].re.to_bits(), oracle[r].im.to_bits()),
                            "inverse n={n} width={width} at ({r},{c})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn plan_round_trips() {
        for n in [16usize, 31, 100] {
            let plan = FftPlan::new(n);
            assert_eq!(plan.len(), n);
            let mut scratch = FftScratch::default();
            let x = ramp(n);
            let mut panel = x.clone();
            plan.forward_panel(&mut panel, 1, &mut scratch);
            plan.inverse_panel(&mut panel, 1, &mut scratch);
            assert_close(&panel, &x, 1e-9 * n as f64);
        }
    }

    #[test]
    #[should_panic(expected = "panel shape mismatch")]
    fn plan_rejects_wrong_shape() {
        let plan = FftPlan::new(8);
        let mut panel = vec![Complex::ZERO; 10];
        plan.forward_panel(&mut panel, 2, &mut FftScratch::default());
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let p = a * b;
        assert!((p.re - 5.0).abs() < 1e-12);
        assert!((p.im - 5.0).abs() < 1e-12);
        assert!(((a + b).re - 4.0).abs() < 1e-12);
        assert!(((a - b).im - 3.0).abs() < 1e-12);
        assert!((a.conj().im + 2.0).abs() < 1e-12);
        assert!((Complex::cis(0.0).re - 1.0).abs() < 1e-12);
    }
}
