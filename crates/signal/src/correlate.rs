//! Circular correlation and convolution.
//!
//! The multiplexed IMS detector signal is the *circular convolution* of the
//! true arrival-time distribution with the gate modulation sequence;
//! deconvolution is a circular *correlation* with (a transform of) the same
//! sequence. Both are provided in a direct `O(N²)` form (the test oracle and
//! the model for the FPGA MAC array) and an `O(N log N)` Fourier form.

use crate::fft::{fft, ifft, Complex};

/// Direct circular cross-correlation: `c[j] = Σ_k a[(k + j) mod N]·y[k]`.
pub fn circular_correlate_direct(a: &[f64], y: &[f64]) -> Vec<f64> {
    let n = a.len();
    assert_eq!(n, y.len(), "length mismatch");
    let mut out = vec![0.0; n];
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        // Split the wrap-around so the inner loops are branch-free.
        let head = n - j;
        for k in 0..head {
            acc += a[k + j] * y[k];
        }
        for k in head..n {
            acc += a[k + j - n] * y[k];
        }
        *o = acc;
    }
    out
}

/// Direct circular convolution: `z[j] = Σ_k a[(j − k) mod N]·x[k]`.
pub fn circular_convolve_direct(a: &[f64], x: &[f64]) -> Vec<f64> {
    let n = a.len();
    assert_eq!(n, x.len(), "length mismatch");
    let mut out = vec![0.0; n];
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &xv) in x.iter().enumerate() {
            let idx = if j >= k { j - k } else { j + n - k };
            acc += a[idx] * xv;
        }
        *o = acc;
    }
    out
}

/// FFT circular cross-correlation: `c = IDFT(DFT(a) ∘ conj(DFT(y)))`.
pub fn circular_correlate_fft(a: &[f64], y: &[f64]) -> Vec<f64> {
    let n = a.len();
    assert_eq!(n, y.len(), "length mismatch");
    if n == 0 {
        return Vec::new();
    }
    let fa = real_fft(a);
    let fy = real_fft(y);
    let prod: Vec<Complex> = fa
        .iter()
        .zip(fy.iter())
        .map(|(&u, &v)| u * v.conj())
        .collect();
    ifft(&prod).into_iter().map(|c| c.re).collect()
}

/// FFT circular convolution: `z = IDFT(DFT(a) ∘ DFT(x))`.
pub fn circular_convolve_fft(a: &[f64], x: &[f64]) -> Vec<f64> {
    let n = a.len();
    assert_eq!(n, x.len(), "length mismatch");
    if n == 0 {
        return Vec::new();
    }
    let fa = real_fft(a);
    let fx = real_fft(x);
    let prod: Vec<Complex> = fa.iter().zip(fx.iter()).map(|(&u, &v)| u * v).collect();
    ifft(&prod).into_iter().map(|c| c.re).collect()
}

fn real_fft(x: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = x.iter().map(|&v| Complex::from_re(v)).collect();
    fft(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(n: usize, phase: f64) -> Vec<f64> {
        (0..n).map(|k| (k as f64 * 0.31 + phase).sin()).collect()
    }

    #[test]
    fn fft_correlation_matches_direct() {
        for n in [7usize, 15, 31, 64, 127] {
            let a = sig(n, 0.0);
            let y = sig(n, 1.3);
            let d = circular_correlate_direct(&a, &y);
            let f = circular_correlate_fft(&a, &y);
            for (u, v) in d.iter().zip(f.iter()) {
                assert!((u - v).abs() < 1e-8, "n={n}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn fft_convolution_matches_direct() {
        for n in [7usize, 31, 63, 128] {
            let a = sig(n, 0.2);
            let x = sig(n, 2.1);
            let d = circular_convolve_direct(&a, &x);
            let f = circular_convolve_fft(&a, &x);
            for (u, v) in d.iter().zip(f.iter()) {
                assert!((u - v).abs() < 1e-8, "n={n}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn convolution_with_unit_impulse_is_identity() {
        let n = 31;
        let mut a = vec![0.0; n];
        a[0] = 1.0;
        let x = sig(n, 0.5);
        let z = circular_convolve_direct(&a, &x);
        for (u, v) in x.iter().zip(z.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn convolution_with_shifted_impulse_rotates() {
        let n = 16;
        let mut a = vec![0.0; n];
        a[3] = 1.0;
        let x: Vec<f64> = (0..n).map(|k| k as f64).collect();
        let z = circular_convolve_direct(&a, &x);
        for j in 0..n {
            let expect = x[(j + n - 3) % n];
            assert!((z[j] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn correlation_at_zero_lag_is_dot_product() {
        let a = sig(31, 0.0);
        let c = circular_correlate_direct(&a, &a);
        let dot: f64 = a.iter().map(|v| v * v).sum();
        assert!((c[0] - dot).abs() < 1e-10);
    }

    #[test]
    fn empty_inputs() {
        assert!(circular_correlate_fft(&[], &[]).is_empty());
        assert!(circular_convolve_fft(&[], &[]).is_empty());
    }
}
