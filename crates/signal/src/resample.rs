//! Re-binning and resampling helpers.
//!
//! The oversampled PRS experiments gate at a finer time base than the
//! nominal sequence element; these helpers move between the fine (gate) and
//! coarse (sequence-element) time bases while conserving total counts.

/// Sums groups of `factor` consecutive bins (count-conserving down-binning).
///
/// The input length must be an exact multiple of `factor`.
pub fn rebin_sum(signal: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0, "factor must be positive");
    assert_eq!(
        signal.len() % factor,
        0,
        "length {} not divisible by factor {}",
        signal.len(),
        factor
    );
    signal
        .chunks_exact(factor)
        .map(|chunk| chunk.iter().sum())
        .collect()
}

/// Averages groups of `factor` consecutive bins.
pub fn rebin_mean(signal: &[f64], factor: usize) -> Vec<f64> {
    rebin_sum(signal, factor)
        .into_iter()
        .map(|v| v / factor as f64)
        .collect()
}

/// Repeats each bin `factor` times (piecewise-constant upsampling). The
/// amplitude is divided by `factor` so total counts are conserved.
pub fn upsample_repeat(signal: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0, "factor must be positive");
    let inv = 1.0 / factor as f64;
    let mut out = Vec::with_capacity(signal.len() * factor);
    for &v in signal {
        out.extend(std::iter::repeat_n(v * inv, factor));
    }
    out
}

/// Keeps every `factor`-th sample starting at `offset`.
pub fn decimate(signal: &[f64], factor: usize, offset: usize) -> Vec<f64> {
    assert!(factor > 0, "factor must be positive");
    signal
        .iter()
        .skip(offset)
        .step_by(factor)
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebin_conserves_counts() {
        let sig: Vec<f64> = (0..24).map(|i| i as f64).collect();
        let coarse = rebin_sum(&sig, 4);
        assert_eq!(coarse.len(), 6);
        let total_in: f64 = sig.iter().sum();
        let total_out: f64 = coarse.iter().sum();
        assert!((total_in - total_out).abs() < 1e-12);
        assert_eq!(coarse[0], 0.0 + 1.0 + 2.0 + 3.0);
    }

    #[test]
    fn rebin_mean_of_constant() {
        let sig = vec![3.0; 12];
        assert!(rebin_mean(&sig, 3).iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn upsample_then_rebin_round_trips() {
        let sig: Vec<f64> = (0..10).map(|i| (i * i) as f64).collect();
        let up = upsample_repeat(&sig, 5);
        assert_eq!(up.len(), 50);
        let down = rebin_sum(&up, 5);
        for (a, b) in sig.iter().zip(down.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn decimate_with_offset() {
        let sig: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(decimate(&sig, 3, 0), vec![0.0, 3.0, 6.0, 9.0]);
        assert_eq!(decimate(&sig, 3, 1), vec![1.0, 4.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rebin_checks_divisibility() {
        let _ = rebin_sum(&[1.0; 10], 3);
    }
}
