//! Noise models for ion counting and detection electronics.
//!
//! Three noise sources dominate IMS-TOF data (Belov et al. 2007/2008):
//!
//! * **shot noise** — ion arrivals are Poisson distributed, so a bin whose
//!   mean signal is `λ` ions fluctuates with σ = √λ;
//! * **electronic noise** — the MCP/amplifier/ADC chain adds approximately
//!   Gaussian noise independent of the signal;
//! * **chemical background** — slowly varying baseline from solvent clusters
//!   and matrix ions, plus sporadic interference spikes.
//!
//! All generators are deterministic given the caller-supplied RNG, so every
//! experiment in the evaluation is exactly reproducible from its seed.

use rand::Rng;

/// Draws a Poisson-distributed count with the given mean.
///
/// Uses Knuth's product-of-uniforms method for small means and a clamped
/// Gaussian approximation (exact to within counting noise itself) for
/// `mean > 30`, which is where the Poisson is already visually Gaussian.
pub fn poisson(rng: &mut impl Rng, mean: f64) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "invalid Poisson mean {mean}"
    );
    if mean == 0.0 {
        return 0;
    }
    if mean > 30.0 {
        let g = mean + mean.sqrt() * gaussian(rng);
        return g.round().max(0.0) as u64;
    }
    let limit = (-mean).exp();
    let mut count = 0u64;
    let mut product: f64 = rng.gen::<f64>();
    while product > limit {
        count += 1;
        product *= rng.gen::<f64>();
    }
    count
}

/// Standard normal deviate via the Box–Muller transform.
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    // Avoid ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Replaces each bin's mean intensity with a Poisson draw (shot noise).
pub fn apply_shot_noise(rng: &mut impl Rng, signal: &mut [f64]) {
    for v in signal.iter_mut() {
        *v = poisson(rng, v.max(0.0)) as f64;
    }
}

/// Adds zero-mean Gaussian electronic noise of the given σ.
pub fn add_electronic_noise(rng: &mut impl Rng, signal: &mut [f64], sigma: f64) {
    if sigma <= 0.0 {
        return;
    }
    for v in signal.iter_mut() {
        *v += sigma * gaussian(rng);
    }
}

/// Parameters of the chemical-background model.
#[derive(Debug, Clone, Copy)]
pub struct ChemicalBackground {
    /// Mean level of the slowly varying baseline (counts/bin).
    pub baseline_level: f64,
    /// Relative amplitude of the slow baseline undulation (0–1).
    pub undulation: f64,
    /// Expected number of sporadic interference spikes per 1000 bins.
    pub spike_rate_per_kbin: f64,
    /// Mean spike amplitude (counts).
    pub spike_amplitude: f64,
}

impl Default for ChemicalBackground {
    fn default() -> Self {
        Self {
            baseline_level: 2.0,
            undulation: 0.3,
            spike_rate_per_kbin: 1.0,
            spike_amplitude: 20.0,
        }
    }
}

impl ChemicalBackground {
    /// Adds the chemical background (baseline + spikes) to `signal`.
    ///
    /// The baseline mean is modulated by a slow sinusoid with an RNG-chosen
    /// phase and then Poisson sampled; spikes land at Poisson-distributed
    /// positions with exponentially distributed amplitudes.
    pub fn add_to(&self, rng: &mut impl Rng, signal: &mut [f64]) {
        let n = signal.len();
        if n == 0 || self.baseline_level <= 0.0 {
            return;
        }
        let phase: f64 = rng.gen::<f64>() * 2.0 * std::f64::consts::PI;
        let period = (n as f64 / 3.0).max(8.0);
        for (i, v) in signal.iter_mut().enumerate() {
            let slow = 1.0
                + self.undulation * (2.0 * std::f64::consts::PI * i as f64 / period + phase).sin();
            let mean = self.baseline_level * slow;
            *v += poisson(rng, mean.max(0.0)) as f64;
        }
        let expected_spikes = self.spike_rate_per_kbin * n as f64 / 1000.0;
        let spikes = poisson(rng, expected_spikes);
        for _ in 0..spikes {
            let pos = rng.gen_range(0..n);
            let amp = -self.spike_amplitude * rng.gen::<f64>().max(f64::MIN_POSITIVE).ln();
            signal[pos] += amp;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn poisson_mean_and_variance() {
        let mut r = rng();
        for &mean in &[0.5, 3.0, 12.0, 80.0] {
            let n = 20_000;
            let draws: Vec<f64> = (0..n).map(|_| poisson(&mut r, mean) as f64).collect();
            let m = draws.iter().sum::<f64>() / n as f64;
            let var = draws.iter().map(|d| (d - m) * (d - m)).sum::<f64>() / n as f64;
            assert!(
                (m - mean).abs() < 4.0 * (mean / n as f64).sqrt() + 0.05,
                "mean {mean}: estimated {m}"
            );
            assert!(
                (var - mean).abs() < 0.15 * mean + 0.1,
                "mean {mean}: variance {var}"
            );
        }
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = rng();
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| gaussian(&mut r)).collect();
        let m = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - m) * (d - m)).sum::<f64>() / n as f64;
        assert!(m.abs() < 0.02, "mean {m}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn shot_noise_preserves_expectation() {
        let mut r = rng();
        let mut total = 0.0;
        let reps = 400;
        for _ in 0..reps {
            let mut sig = vec![10.0; 50];
            apply_shot_noise(&mut r, &mut sig);
            total += sig.iter().sum::<f64>();
        }
        let mean = total / (reps as f64 * 50.0);
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn electronic_noise_zero_sigma_is_noop() {
        let mut r = rng();
        let mut sig = vec![1.0, 2.0, 3.0];
        add_electronic_noise(&mut r, &mut sig, 0.0);
        assert_eq!(sig, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn chemical_background_raises_mean() {
        let mut r = rng();
        let bg = ChemicalBackground::default();
        let mut sig = vec![0.0; 2000];
        bg.add_to(&mut r, &mut sig);
        let mean = sig.iter().sum::<f64>() / sig.len() as f64;
        assert!(mean > 1.0 && mean < 4.0, "background mean {mean}");
        assert!(sig.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = rng();
        let mut r2 = rng();
        let a: Vec<u64> = (0..100).map(|_| poisson(&mut r1, 5.0)).collect();
        let b: Vec<u64> = (0..100).map(|_| poisson(&mut r2, 5.0)).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "invalid Poisson mean")]
    fn poisson_rejects_negative_mean() {
        let mut r = rng();
        let _ = poisson(&mut r, -1.0);
    }
}
