//! Signal-to-noise estimation.
//!
//! SNR is *the* figure of merit of the multiplexing experiments (E1, E6):
//! the entire point of Hadamard gating is to raise it at fixed acquisition
//! time. The estimator here follows common mass-spectrometry practice —
//! apex height over a robust (MAD) estimate of the noise σ taken from
//! signal-free regions.

use crate::stats;

/// SNR of a known peak apex against a robust noise estimate from the
/// remainder of the trace (the peak region ±`exclude` bins is excluded from
/// the noise estimate).
pub fn snr_at(signal: &[f64], apex: usize, exclude: usize) -> f64 {
    let noise: Vec<f64> = signal
        .iter()
        .enumerate()
        .filter(|(i, _)| i.abs_diff(apex) > exclude)
        .map(|(_, &v)| v)
        .collect();
    if noise.is_empty() {
        return 0.0;
    }
    let sigma = stats::mad_sigma(&noise);
    let base = stats::median(&noise);
    if sigma <= 0.0 {
        return f64::INFINITY;
    }
    (signal[apex] - base) / sigma
}

/// Global SNR: highest sample over MAD σ of the whole trace.
pub fn snr_global(signal: &[f64]) -> f64 {
    let (apex, _) = match stats::argmax(signal) {
        Some(x) => x,
        None => return 0.0,
    };
    snr_at(signal, apex, signal.len() / 20 + 3)
}

/// Ratio of two SNRs, guarding against degenerate denominators.
pub fn snr_gain(multiplexed: f64, averaged: f64) -> f64 {
    if averaged <= 0.0 || !averaged.is_finite() {
        return f64::NAN;
    }
    multiplexed / averaged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::add_electronic_noise;
    use crate::peaks::gaussian_profile;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn snr_scales_with_amplitude() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut weak = gaussian_profile(1000, 500.0, 5.0, 100.0);
        let mut strong = gaussian_profile(1000, 500.0, 5.0, 1000.0);
        add_electronic_noise(&mut rng, &mut weak, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        add_electronic_noise(&mut rng, &mut strong, 1.0);
        let s_weak = snr_at(&weak, 500, 25);
        let s_strong = snr_at(&strong, 500, 25);
        let ratio = s_strong / s_weak;
        assert!(
            (ratio - 10.0).abs() < 2.5,
            "expected ~10x SNR ratio, got {ratio} ({s_weak} -> {s_strong})"
        );
    }

    #[test]
    fn clean_signal_has_huge_snr() {
        let sig = gaussian_profile(500, 250.0, 5.0, 1000.0);
        // Noise-free trace: MAD of the flat region is ~0 → huge/infinite SNR.
        assert!(snr_at(&sig, 250, 30) > 1e6);
    }

    #[test]
    fn global_matches_known_apex() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut sig = gaussian_profile(800, 300.0, 6.0, 3000.0);
        add_electronic_noise(&mut rng, &mut sig, 2.0);
        let g = snr_global(&sig);
        let k = snr_at(&sig, 300, 43);
        assert!((g - k).abs() / k < 0.1, "global {g} vs known-apex {k}");
    }

    #[test]
    fn gain_guards_degenerate() {
        assert!(snr_gain(10.0, 0.0).is_nan());
        assert!(snr_gain(10.0, f64::INFINITY).is_nan());
        assert!((snr_gain(10.0, 2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_signal() {
        assert_eq!(snr_global(&[]), 0.0);
    }
}
