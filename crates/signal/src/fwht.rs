//! Fast Walsh–Hadamard transform.
//!
//! The unnormalised WHT of a vector `x` of power-of-two length `M` is
//! `X[f] = Σ_s (−1)^{popcount(f & s)} x[s]`. Applying the transform twice
//! multiplies by `M` (the Sylvester–Hadamard matrix satisfies `H·H = M·I`).
//!
//! The Hadamard-transform IMS deconvolution reduces the `O(N²)` m-sequence
//! correlation to this `O(M log M)` butterfly plus an index permutation (see
//! `ims-prs::permutation`), which is exactly the arithmetic the paper's FPGA
//! deconvolution core implements.

/// In-place unnormalised fast Walsh–Hadamard transform.
///
/// # Panics
/// Panics if `data.len()` is not a power of two (the empty slice is allowed).
pub fn fwht(data: &mut [f64]) {
    let m = data.len();
    if m <= 1 {
        return;
    }
    assert!(m.is_power_of_two(), "FWHT length {m} is not a power of two");
    let mut h = 1;
    while h < m {
        for block in (0..m).step_by(h * 2) {
            for i in block..block + h {
                let (a, b) = (data[i], data[i + h]);
                data[i] = a + b;
                data[i + h] = a - b;
            }
        }
        h *= 2;
    }
}

/// Normalised inverse WHT: `fwht` followed by division by the length.
pub fn ifwht(data: &mut [f64]) {
    let m = data.len();
    fwht(data);
    if m > 0 {
        let inv = 1.0 / m as f64;
        for v in data.iter_mut() {
            *v *= inv;
        }
    }
}

/// Row-vectorized FWHT over a panel of independent columns.
///
/// `panel` holds `rows × width` values in row-major order (row `r` of
/// column `c` lives at `panel[r*width + c]`). Every butterfly level runs as
/// contiguous row-pair sweeps — `row[i] += row[i + h]` style loops over
/// `width` — so memory access is unit-stride and the compiler can
/// auto-vectorize across the column dimension. Each column sees the exact
/// butterfly schedule of [`fwht`], in the same order, on the same operands,
/// so the per-column result is **bit-identical** to running [`fwht`] on
/// that column alone. This is the kernel of the batched deconvolution
/// engine: instead of gathering strided columns out of a row-major block,
/// the block's own layout becomes the vectorization axis.
///
/// # Panics
/// Panics if `width` is zero on a non-empty panel, if `panel.len()` is not
/// a multiple of `width`, or if the row count is not a power of two.
pub fn fwht_panel(panel: &mut [f64], width: usize) {
    fwht_panel_with(crate::simd::active(), panel, width);
}

/// [`fwht_panel`] pinned to an explicit SIMD backend (testing hook; every
/// backend is bit-identical to the scalar reference).
///
/// # Panics
/// As [`fwht_panel`].
pub fn fwht_panel_with(be: crate::simd::Backend, panel: &mut [f64], width: usize) {
    if panel.is_empty() {
        return;
    }
    assert!(width > 0, "panel width must be positive");
    assert_eq!(
        panel.len() % width,
        0,
        "panel length {} is not a multiple of width {width}",
        panel.len()
    );
    let rows = panel.len() / width;
    if rows <= 1 {
        return;
    }
    assert!(
        rows.is_power_of_two(),
        "FWHT length {rows} is not a power of two"
    );
    let mut h = 1;
    while h < rows {
        for block in (0..rows).step_by(h * 2) {
            for i in block..block + h {
                let (head, tail) = panel.split_at_mut((i + h) * width);
                let top = &mut head[i * width..(i + 1) * width];
                let bottom = &mut tail[..width];
                crate::simd::butterfly_f64(be, top, bottom);
            }
        }
        h *= 2;
    }
}

/// Direct `O(M²)` WHT used as a test oracle.
pub fn wht_direct(data: &[f64]) -> Vec<f64> {
    let m = data.len();
    (0..m)
        .map(|f| {
            data.iter()
                .enumerate()
                .map(|(s, &v)| if (f & s).count_ones() % 2 == 0 { v } else { -v })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_transform() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.7).sin() + i as f64).collect();
        let mut fast = x.clone();
        fwht(&mut fast);
        let direct = wht_direct(&x);
        for (a, b) in fast.iter().zip(direct.iter()) {
            assert!((a - b).abs() < 1e-9, "fast {a} vs direct {b}");
        }
    }

    #[test]
    fn double_transform_scales_by_length() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64).cos()).collect();
        let mut y = x.clone();
        fwht(&mut y);
        fwht(&mut y);
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a * 64.0 - b).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_round_trips() {
        let x: Vec<f64> = (0..128).map(|i| (i * i % 17) as f64).collect();
        let mut y = x.clone();
        fwht(&mut y);
        ifwht(&mut y);
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn impulse_gives_constant_row() {
        let mut x = vec![0.0; 16];
        x[0] = 1.0;
        fwht(&mut x);
        assert!(x.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn trivial_lengths() {
        fwht(&mut []);
        let mut one = [3.5];
        fwht(&mut one);
        assert_eq!(one[0], 3.5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut x = vec![0.0; 12];
        fwht(&mut x);
    }

    #[test]
    fn panel_is_bit_identical_to_per_column() {
        for (rows, width) in [(32usize, 1usize), (64, 3), (16, 7), (128, 32)] {
            let mut panel: Vec<f64> = (0..rows * width)
                .map(|i| ((i * 37 + 11) % 101) as f64 * 0.37 - 17.0)
                .collect();
            // Per-column oracle on the original data.
            let columns: Vec<Vec<f64>> = (0..width)
                .map(|c| {
                    let mut col: Vec<f64> = (0..rows).map(|r| panel[r * width + c]).collect();
                    fwht(&mut col);
                    col
                })
                .collect();
            fwht_panel(&mut panel, width);
            for c in 0..width {
                for r in 0..rows {
                    assert_eq!(
                        panel[r * width + c].to_bits(),
                        columns[c][r].to_bits(),
                        "rows {rows} width {width} at ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn panel_trivial_shapes() {
        fwht_panel(&mut [], 0); // empty panel, any width
        let mut one_row = [1.0, 2.0, 3.0];
        fwht_panel(&mut one_row, 3);
        assert_eq!(one_row, [1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of width")]
    fn panel_rejects_ragged_shape() {
        let mut x = vec![0.0; 10];
        fwht_panel(&mut x, 3);
    }
}
