//! Fast Walsh–Hadamard transform.
//!
//! The unnormalised WHT of a vector `x` of power-of-two length `M` is
//! `X[f] = Σ_s (−1)^{popcount(f & s)} x[s]`. Applying the transform twice
//! multiplies by `M` (the Sylvester–Hadamard matrix satisfies `H·H = M·I`).
//!
//! The Hadamard-transform IMS deconvolution reduces the `O(N²)` m-sequence
//! correlation to this `O(M log M)` butterfly plus an index permutation (see
//! `ims-prs::permutation`), which is exactly the arithmetic the paper's FPGA
//! deconvolution core implements.

/// In-place unnormalised fast Walsh–Hadamard transform.
///
/// # Panics
/// Panics if `data.len()` is not a power of two (the empty slice is allowed).
pub fn fwht(data: &mut [f64]) {
    let m = data.len();
    if m <= 1 {
        return;
    }
    assert!(m.is_power_of_two(), "FWHT length {m} is not a power of two");
    let mut h = 1;
    while h < m {
        for block in (0..m).step_by(h * 2) {
            for i in block..block + h {
                let (a, b) = (data[i], data[i + h]);
                data[i] = a + b;
                data[i + h] = a - b;
            }
        }
        h *= 2;
    }
}

/// Normalised inverse WHT: `fwht` followed by division by the length.
pub fn ifwht(data: &mut [f64]) {
    let m = data.len();
    fwht(data);
    if m > 0 {
        let inv = 1.0 / m as f64;
        for v in data.iter_mut() {
            *v *= inv;
        }
    }
}

/// Direct `O(M²)` WHT used as a test oracle.
pub fn wht_direct(data: &[f64]) -> Vec<f64> {
    let m = data.len();
    (0..m)
        .map(|f| {
            data.iter()
                .enumerate()
                .map(|(s, &v)| if (f & s).count_ones() % 2 == 0 { v } else { -v })
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_transform() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.7).sin() + i as f64).collect();
        let mut fast = x.clone();
        fwht(&mut fast);
        let direct = wht_direct(&x);
        for (a, b) in fast.iter().zip(direct.iter()) {
            assert!((a - b).abs() < 1e-9, "fast {a} vs direct {b}");
        }
    }

    #[test]
    fn double_transform_scales_by_length() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64).cos()).collect();
        let mut y = x.clone();
        fwht(&mut y);
        fwht(&mut y);
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a * 64.0 - b).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_round_trips() {
        let x: Vec<f64> = (0..128).map(|i| (i * i % 17) as f64).collect();
        let mut y = x.clone();
        fwht(&mut y);
        ifwht(&mut y);
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn impulse_gives_constant_row() {
        let mut x = vec![0.0; 16];
        x[0] = 1.0;
        fwht(&mut x);
        assert!(x.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn trivial_lengths() {
        fwht(&mut []);
        let mut one = [3.5];
        fwht(&mut one);
        assert_eq!(one[0], 3.5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut x = vec![0.0; 12];
        fwht(&mut x);
    }
}
