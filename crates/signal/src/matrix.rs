//! Minimal dense linear algebra: row-major `f64` matrices with LU
//! factorisation, used for weighting-matrix inverses, Savitzky–Golay filter
//! design and as the `O(N³)` oracle against which the fast deconvolution
//! paths are verified.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of a full row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Underlying row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x.iter()).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Solves `A·x = b` by LU factorisation with partial pivoting.
    ///
    /// Returns `None` if the matrix is numerically singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(self.rows, b.len(), "dimension mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        // Forward elimination with partial pivoting.
        for col in 0..n {
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in col + 1..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if pivot != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot * n + c);
                }
                x.swap(col, pivot);
            }
            let diag = a[col * n + col];
            for r in col + 1..n {
                let factor = a[r * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for c in col + 1..n {
                acc -= a[col * n + c] * x[c];
            }
            x[col] = acc / a[col * n + col];
        }
        Some(x)
    }

    /// Matrix inverse via column-by-column solves.
    ///
    /// Returns `None` if singular.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse requires a square matrix");
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Some(out)
    }

    /// Least-squares solution of the (possibly overdetermined) system
    /// `A·x ≈ b` via the regularised normal equations
    /// `(AᵀA + λI)·x = Aᵀb`.
    pub fn least_squares(&self, b: &[f64], lambda: f64) -> Option<Vec<f64>> {
        assert_eq!(self.rows, b.len(), "dimension mismatch");
        let at = self.transpose();
        let mut ata = at.matmul(self);
        for i in 0..ata.rows {
            ata[(i, i)] += lambda;
        }
        let atb = at.matvec(b);
        ata.solve(&atb)
    }

    /// Largest absolute entry of `self − rhs`.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!(self.rows, rhs.rows);
        assert_eq!(self.cols, rhs.cols);
        self.data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let i4 = Matrix::identity(4);
        assert_eq!(a.matmul(&i4), a);
        assert_eq!(i4.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i as f64) * 1.5 - j as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10  → x = 1, y = 3.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the first diagonal entry forces a row swap.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
        assert!(a.inverse().is_none());
    }

    #[test]
    fn inverse_round_trip() {
        let a = Matrix::from_fn(5, 5, |i, j| {
            if i == j {
                4.0
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let inv = a.inverse().unwrap();
        let eye = a.matmul(&inv);
        assert!(eye.max_abs_diff(&Matrix::identity(5)) < 1e-10);
    }

    #[test]
    fn least_squares_fits_line() {
        // Fit y = 2t + 1 from noiseless samples: design matrix [t, 1].
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { ts[i] } else { 1.0 });
        let b: Vec<f64> = ts.iter().map(|t| 2.0 * t + 1.0).collect();
        let x = a.least_squares(&b, 0.0).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(3, 3, |i, j| (i + 2 * j) as f64);
        let x = vec![1.0, -1.0, 0.5];
        let xm = Matrix::from_vec(3, 1, x.clone());
        let via_mul = a.matmul(&xm);
        let via_vec = a.matvec(&x);
        for i in 0..3 {
            assert!((via_mul[(i, 0)] - via_vec[i]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
