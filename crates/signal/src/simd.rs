//! Runtime-dispatched SIMD row kernels for the panel hot paths.
//!
//! The batched deconvolution engine spends almost all of its time in a
//! handful of unit-stride row sweeps: the FWHT row-pair butterfly
//! ([`crate::fwht::fwht_panel`]), the radix-2 FFT butterfly and the
//! Bluestein chirp/spectrum multiplies ([`crate::fft::FftPlan`]), and the
//! circulant spectral-weight multiply (`ims_prs::CirculantSolver`). This
//! module implements those sweeps four times — portable scalar, SSE2, AVX2
//! and AVX-512F (`std::arch`, zero external dependencies) — and selects one
//! backend per process.
//!
//! # Dispatch rules
//!
//! The backend is chosen once, on first use, by [`active`]:
//!
//! 1. If the `HTIMS_SIMD` environment variable is set to `scalar`, `sse2`,
//!    `avx2` or `avx512`, that backend is used (falling back to detection
//!    with a one-time warning if the requested features are missing).
//! 2. Otherwise the widest available instruction set wins, probed via
//!    `is_x86_feature_detected!` (AVX-512F, then AVX2, then SSE2, then
//!    scalar).
//!
//! Every kernel also has an explicit-backend form (the `be: Backend` first
//! argument) so tests can pin each implementation against the scalar
//! reference without touching process environment.
//!
//! # Bit-exactness contract
//!
//! Each backend produces **bit-identical** results to the scalar reference
//! loops it replaces. The vector code is written to preserve IEEE-754
//! semantics operation for operation:
//!
//! * additions/subtractions/multiplications map 1:1 onto vector lanes —
//!   no FMA contraction anywhere (FMA changes rounding);
//! * the complex multiply uses `mul`/`mul`/`addsub`, which computes
//!   `re = a.re·c.re − a.im·c.im` exactly as the scalar `Mul` impl does,
//!   and `im` as the *same two products* added in swapped order — IEEE
//!   addition is commutative, so the bits agree;
//! * the SSE2 fallback (no `addsub` before SSE3) negates the subtrahend
//!   lane with a sign-bit XOR: `x + (−y)` is defined by IEEE-754 to equal
//!   `x − y` for every input. AVX-512 has no `addsub` either, so it uses
//!   the same sign-bit XOR on the even (real) lanes.

use crate::fft::Complex;
use std::sync::OnceLock;

/// The default column-panel width shared by every panel-batched engine
/// (the software [`crate::fwht::fwht_panel`]/FFT path in `htims-core` and
/// the FPGA block datapath in `ims-fpga`). Individual methods may re-tune
/// their width from this baseline; keeping the constant in the lowest
/// common crate lets that tuning propagate everywhere.
pub const DEFAULT_PANEL_WIDTH: usize = 32;

/// Panel width for the fixed-point (integer FWHT) software path. The
/// integer butterflies carry no complex padding — the working set is two
/// `u64` rows per sweep — so wider panels keep amortizing sweep startup
/// long after the float kernels have blown L2 (measured: 128 beats 32 by
/// ~10% on the reference block, while the weighted float solve is ~25%
/// *slower* at 128).
pub const FIXED_POINT_PANEL_WIDTH: usize = 128;

/// One SIMD instruction-set level the kernels can run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar reference loops.
    Scalar,
    /// 128-bit SSE2 (baseline x86-64).
    Sse2,
    /// 256-bit AVX2.
    Avx2,
    /// 512-bit AVX-512F.
    Avx512,
}

impl Backend {
    /// Stable lower-case name (`scalar`/`sse2`/`avx2`/`avx512`) as used by
    /// the `HTIMS_SIMD` override and recorded in provenance.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
        }
    }

    /// Parses a backend name as accepted by `HTIMS_SIMD`.
    pub fn parse(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Backend::Scalar),
            "sse2" => Some(Backend::Sse2),
            "avx2" => Some(Backend::Avx2),
            "avx512" | "avx512f" => Some(Backend::Avx512),
            _ => None,
        }
    }

    /// Whether this backend's instruction set exists on the running CPU.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// The widest backend available on this CPU (ignores `HTIMS_SIMD`).
pub fn detect() -> Backend {
    if Backend::Avx512.is_available() {
        Backend::Avx512
    } else if Backend::Avx2.is_available() {
        Backend::Avx2
    } else if Backend::Sse2.is_available() {
        Backend::Sse2
    } else {
        Backend::Scalar
    }
}

/// Every backend the running CPU supports, scalar first. Test harnesses
/// iterate this to pin each implementation against the scalar reference.
pub fn available_backends() -> Vec<Backend> {
    [
        Backend::Scalar,
        Backend::Sse2,
        Backend::Avx2,
        Backend::Avx512,
    ]
    .into_iter()
    .filter(|b| b.is_available())
    .collect()
}

/// The process-wide backend: `HTIMS_SIMD` override if set and available,
/// otherwise [`detect`]. Resolved once and cached.
pub fn active() -> Backend {
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(|| match std::env::var("HTIMS_SIMD") {
        Ok(v) => match Backend::parse(&v) {
            Some(b) if b.is_available() => b,
            Some(b) => {
                eprintln!(
                    "htims: HTIMS_SIMD={} not available on this CPU, using {}",
                    b.name(),
                    detect().name()
                );
                detect()
            }
            None => {
                eprintln!(
                    "htims: unrecognised HTIMS_SIMD value {v:?} (want scalar|sse2|avx2|avx512), using {}",
                    detect().name()
                );
                detect()
            }
        },
        Err(_) => detect(),
    })
}

/// Name of the process-wide backend (for provenance records).
pub fn active_name() -> &'static str {
    active().name()
}

// ---------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------

/// FWHT butterfly over a row pair: `top[i], bottom[i] ← top[i]+bottom[i],
/// top[i]−bottom[i]`.
#[inline]
pub fn butterfly_f64(be: Backend, top: &mut [f64], bottom: &mut [f64]) {
    debug_assert_eq!(top.len(), bottom.len());
    match be {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::butterfly_f64_avx512(top, bottom) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::butterfly_f64_avx2(top, bottom) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::butterfly_f64_sse2(top, bottom) },
        _ => butterfly_f64_scalar(top, bottom),
    }
}

fn butterfly_f64_scalar(top: &mut [f64], bottom: &mut [f64]) {
    for (a, b) in top.iter_mut().zip(bottom.iter_mut()) {
        let (x, y) = (*a, *b);
        *a = x + y;
        *b = x - y;
    }
}

/// Integer FWHT butterfly over a row pair (the fixed-point FPGA datapath).
#[inline]
pub fn butterfly_i64(be: Backend, top: &mut [i64], bottom: &mut [i64]) {
    debug_assert_eq!(top.len(), bottom.len());
    match be {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::butterfly_i64_avx512(top, bottom) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::butterfly_i64_avx2(top, bottom) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::butterfly_i64_sse2(top, bottom) },
        _ => butterfly_i64_scalar(top, bottom),
    }
}

fn butterfly_i64_scalar(top: &mut [i64], bottom: &mut [i64]) {
    for (a, b) in top.iter_mut().zip(bottom.iter_mut()) {
        let (x, y) = (*a, *b);
        *a = x.wrapping_add(y);
        *b = x.wrapping_sub(y);
    }
}

/// Radix-2 FFT butterfly over a row pair with one broadcast twiddle:
/// `u = top[i]; v = bottom[i]·w; top[i] = u+v; bottom[i] = u−v`.
#[inline]
pub fn butterfly_complex(be: Backend, top: &mut [Complex], bottom: &mut [Complex], w: Complex) {
    debug_assert_eq!(top.len(), bottom.len());
    match be {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::butterfly_complex_avx512(top, bottom, w) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::butterfly_complex_avx2(top, bottom, w) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::butterfly_complex_sse2(top, bottom, w) },
        _ => butterfly_complex_scalar(top, bottom, w),
    }
}

fn butterfly_complex_scalar(top: &mut [Complex], bottom: &mut [Complex], w: Complex) {
    for (a, b) in top.iter_mut().zip(bottom.iter_mut()) {
        let u = *a;
        let v = *b * w;
        *a = u + v;
        *b = u - v;
    }
}

/// Radix-2 FFT butterfly with a fused real scale: `u = top[i];
/// v = bottom[i]·w; top[i] = (u+v)·s; bottom[i] = (u−v)·s`. Per element this
/// is the butterfly followed by the scale in the same order as running
/// [`butterfly_complex`] and then [`scale_complex`], so fusing the inverse
/// FFT's `1/M` normalisation into its final level is bit-exact.
#[inline]
pub fn butterfly_complex_scale(
    be: Backend,
    top: &mut [Complex],
    bottom: &mut [Complex],
    w: Complex,
    s: f64,
) {
    debug_assert_eq!(top.len(), bottom.len());
    match be {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::butterfly_complex_scale_avx512(top, bottom, w, s) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::butterfly_complex_scale_avx2(top, bottom, w, s) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::butterfly_complex_scale_sse2(top, bottom, w, s) },
        _ => butterfly_complex_scale_scalar(top, bottom, w, s),
    }
}

fn butterfly_complex_scale_scalar(top: &mut [Complex], bottom: &mut [Complex], w: Complex, s: f64) {
    for (a, b) in top.iter_mut().zip(bottom.iter_mut()) {
        let u = *a;
        let v = *b * w;
        *a = (u + v).scale(s);
        *b = (u - v).scale(s);
    }
}

/// Radix-2 FFT butterfly with fused per-row complex post-multipliers:
/// `u = top[i]; v = bottom[i]·w; top[i] = (u+v)·ct; bottom[i] = (u−v)·cb`.
/// Per element this is the butterfly followed by the same multiply a
/// separate [`cmul_inplace`] sweep would perform, so fusing a row-diagonal
/// spectrum multiply (the Bluestein kernel spectrum) into the final
/// butterfly level is bit-exact.
#[inline]
pub fn butterfly_complex_postmul(
    be: Backend,
    top: &mut [Complex],
    bottom: &mut [Complex],
    w: Complex,
    ct: Complex,
    cb: Complex,
) {
    debug_assert_eq!(top.len(), bottom.len());
    match be {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::butterfly_complex_postmul_avx512(top, bottom, w, ct, cb) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::butterfly_complex_postmul_avx2(top, bottom, w, ct, cb) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::butterfly_complex_postmul_sse2(top, bottom, w, ct, cb) },
        _ => butterfly_complex_postmul_scalar(top, bottom, w, ct, cb),
    }
}

fn butterfly_complex_postmul_scalar(
    top: &mut [Complex],
    bottom: &mut [Complex],
    w: Complex,
    ct: Complex,
    cb: Complex,
) {
    for (a, b) in top.iter_mut().zip(bottom.iter_mut()) {
        let u = *a;
        let v = *b * w;
        *a = (u + v) * ct;
        *b = (u - v) * cb;
    }
}

/// Out-of-place row multiply by a broadcast complex constant:
/// `dst[i] = src[i]·c` (the Bluestein chirp passes).
#[inline]
pub fn cmul_rows(be: Backend, dst: &mut [Complex], src: &[Complex], c: Complex) {
    debug_assert_eq!(dst.len(), src.len());
    match be {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::cmul_rows_avx512(dst, src, c) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::cmul_rows_avx2(dst, src, c) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::cmul_rows_sse2(dst, src, c) },
        _ => cmul_rows_scalar(dst, src, c),
    }
}

fn cmul_rows_scalar(dst: &mut [Complex], src: &[Complex], c: Complex) {
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = s * c;
    }
}

/// Out-of-place row multiply-and-scale by broadcast constants:
/// `dst[i] = (src[i]·c)·s` (the Bluestein output chirp with the inverse
/// `1/N` normalisation fused into the same sweep).
#[inline]
pub fn cmul_scale_rows(be: Backend, dst: &mut [Complex], src: &[Complex], c: Complex, s: f64) {
    debug_assert_eq!(dst.len(), src.len());
    match be {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::cmul_scale_rows_avx512(dst, src, c, s) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::cmul_scale_rows_avx2(dst, src, c, s) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::cmul_scale_rows_sse2(dst, src, c, s) },
        _ => cmul_scale_rows_scalar(dst, src, c, s),
    }
}

fn cmul_scale_rows_scalar(dst: &mut [Complex], src: &[Complex], c: Complex, s: f64) {
    for (d, &x) in dst.iter_mut().zip(src.iter()) {
        *d = (x * c).scale(s);
    }
}

/// In-place row multiply by a broadcast complex constant: `v ← v·c`
/// (the Bluestein kernel-spectrum pass).
#[inline]
pub fn cmul_inplace(be: Backend, row: &mut [Complex], c: Complex) {
    match be {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::cmul_inplace_avx512(row, c) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::cmul_inplace_avx2(row, c) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::cmul_inplace_sse2(row, c) },
        _ => cmul_inplace_scalar(row, c),
    }
}

fn cmul_inplace_scalar(row: &mut [Complex], c: Complex) {
    for v in row.iter_mut() {
        *v = *v * c;
    }
}

/// In-place circulant weight sweep: `v ← (c·v)·s` with a broadcast complex
/// weight and real scale (the `CirculantSolver` per-bin multiply).
#[inline]
pub fn cmul_scale_inplace(be: Backend, row: &mut [Complex], c: Complex, s: f64) {
    match be {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::cmul_scale_inplace_avx512(row, c, s) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::cmul_scale_inplace_avx2(row, c, s) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::cmul_scale_inplace_sse2(row, c, s) },
        _ => cmul_scale_inplace_scalar(row, c, s),
    }
}

fn cmul_scale_inplace_scalar(row: &mut [Complex], c: Complex, s: f64) {
    for v in row.iter_mut() {
        *v = (c * *v).scale(s);
    }
}

/// In-place real scale of a complex buffer: `v ← v·s` on both components
/// (the inverse-FFT `1/M` normalisation).
#[inline]
pub fn scale_complex(be: Backend, data: &mut [Complex], s: f64) {
    // A complex scale is an elementwise f64 scale of the interleaved pairs.
    let flat = complex_as_flat_mut(data);
    match be {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::scale_f64_avx512(flat, s) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::scale_f64_avx2(flat, s) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::scale_f64_sse2(flat, s) },
        _ => scale_f64_scalar(flat, s),
    }
}

fn scale_f64_scalar(data: &mut [f64], s: f64) {
    for v in data.iter_mut() {
        *v *= s;
    }
}

/// Out-of-place row scale: `dst[i] = s·src[i]` (the FWHT gather sweep).
#[inline]
pub fn mul_rows_f64(be: Backend, dst: &mut [f64], src: &[f64], s: f64) {
    debug_assert_eq!(dst.len(), src.len());
    match be {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { x86::mul_rows_f64_avx512(dst, src, s) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { x86::mul_rows_f64_avx2(dst, src, s) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::mul_rows_f64_sse2(dst, src, s) },
        _ => mul_rows_f64_scalar(dst, src, s),
    }
}

fn mul_rows_f64_scalar(dst: &mut [f64], src: &[f64], s: f64) {
    for (d, &x) in dst.iter_mut().zip(src.iter()) {
        *d = s * x;
    }
}

/// Widens a real row into a complex row: `dst[i] = src[i] + 0i` (the
/// panel-solve copy-in). Pure data movement — trivially bit-exact.
#[inline]
pub fn widen_re(be: Backend, dst: &mut [Complex], src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    match be {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 => unsafe { x86::widen_re_avx2(dst, src) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::widen_re_sse2(dst, src) },
        _ => widen_re_scalar(dst, src),
    }
}

fn widen_re_scalar(dst: &mut [Complex], src: &[f64]) {
    for (d, &x) in dst.iter_mut().zip(src.iter()) {
        *d = Complex::from_re(x);
    }
}

/// Narrows a complex row to its real parts: `dst[i] = src[i].re` (the
/// panel-solve copy-out). Pure data movement — trivially bit-exact.
#[inline]
pub fn narrow_re(be: Backend, dst: &mut [f64], src: &[Complex]) {
    debug_assert_eq!(dst.len(), src.len());
    match be {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 => unsafe { x86::narrow_re_avx2(dst, src) },
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { x86::narrow_re_sse2(dst, src) },
        _ => narrow_re_scalar(dst, src),
    }
}

fn narrow_re_scalar(dst: &mut [f64], src: &[Complex]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = s.re;
    }
}

/// Views a complex slice as its interleaved `re, im, re, im …` storage.
/// Sound because [`Complex`] is `#[repr(C)]` with two `f64` fields.
fn complex_as_flat_mut(data: &mut [Complex]) -> &mut [f64] {
    // SAFETY: Complex is repr(C) { re: f64, im: f64 }, so a slice of n
    // Complex is exactly 2n contiguous, aligned f64 values.
    unsafe { std::slice::from_raw_parts_mut(data.as_mut_ptr() as *mut f64, data.len() * 2) }
}

// ---------------------------------------------------------------------
// x86-64 implementations
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    // Complex lanes are interleaved [re0, im0, re1, im1]; `permute(v, 0b0101)`
    // swaps each pair to [im0, re0, im1, re1]. With broadcast cr = c.re,
    // ci = c.im:
    //     addsub(v·cr, swap(v)·ci)
    //       = [v.re·c.re − v.im·c.im, v.im·c.re + v.re·c.im]
    // which matches the scalar product's real part exactly and its imaginary
    // part up to addition order (IEEE addition commutes, so bitwise equal).

    // AVX-512F has no `addsub`, so the complex multiply negates the even
    // (real) lanes of the second product with a sign-bit XOR before a plain
    // add: x + (−y) ≡ x − y under IEEE-754. The XOR goes through the
    // integer domain (`xor_si512`) because `_mm512_xor_pd` needs AVX-512DQ.

    /// Sign mask with −0.0 in the even (real) lanes.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn neg_even_512() -> __m512d {
        _mm512_set_pd(0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0)
    }

    /// `x ^ y` on f64 lanes using AVX-512F-only integer XOR.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn xor_pd_512(x: __m512d, y: __m512d) -> __m512d {
        _mm512_castsi512_pd(_mm512_xor_si512(
            _mm512_castpd_si512(x),
            _mm512_castpd_si512(y),
        ))
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn butterfly_f64_avx512(top: &mut [f64], bottom: &mut [f64]) {
        let n = top.len();
        let tp = top.as_mut_ptr();
        let bp = bottom.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm512_loadu_pd(tp.add(i));
            let y = _mm512_loadu_pd(bp.add(i));
            _mm512_storeu_pd(tp.add(i), _mm512_add_pd(x, y));
            _mm512_storeu_pd(bp.add(i), _mm512_sub_pd(x, y));
            i += 8;
        }
        super::butterfly_f64_scalar(&mut top[i..], &mut bottom[i..]);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn butterfly_i64_avx512(top: &mut [i64], bottom: &mut [i64]) {
        let n = top.len();
        let tp = top.as_mut_ptr();
        let bp = bottom.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm512_loadu_si512(tp.add(i) as *const __m512i);
            let y = _mm512_loadu_si512(bp.add(i) as *const __m512i);
            _mm512_storeu_si512(tp.add(i) as *mut __m512i, _mm512_add_epi64(x, y));
            _mm512_storeu_si512(bp.add(i) as *mut __m512i, _mm512_sub_epi64(x, y));
            i += 8;
        }
        super::butterfly_i64_scalar(&mut top[i..], &mut bottom[i..]);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn butterfly_complex_avx512(
        top: &mut [Complex],
        bottom: &mut [Complex],
        w: Complex,
    ) {
        let n = top.len();
        let tp = top.as_mut_ptr() as *mut f64;
        let bp = bottom.as_mut_ptr() as *mut f64;
        let wre = _mm512_set1_pd(w.re);
        let wim = _mm512_set1_pd(w.im);
        let neg = neg_even_512();
        let mut i = 0;
        while i + 4 <= n {
            let u = _mm512_loadu_pd(tp.add(2 * i));
            let b = _mm512_loadu_pd(bp.add(2 * i));
            let bs = _mm512_permute_pd(b, 0x55);
            let t2 = xor_pd_512(_mm512_mul_pd(bs, wim), neg);
            let v = _mm512_add_pd(_mm512_mul_pd(b, wre), t2);
            _mm512_storeu_pd(tp.add(2 * i), _mm512_add_pd(u, v));
            _mm512_storeu_pd(bp.add(2 * i), _mm512_sub_pd(u, v));
            i += 4;
        }
        butterfly_complex_avx2(&mut top[i..], &mut bottom[i..], w);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn butterfly_complex_scale_avx512(
        top: &mut [Complex],
        bottom: &mut [Complex],
        w: Complex,
        s: f64,
    ) {
        let n = top.len();
        let tp = top.as_mut_ptr() as *mut f64;
        let bp = bottom.as_mut_ptr() as *mut f64;
        let wre = _mm512_set1_pd(w.re);
        let wim = _mm512_set1_pd(w.im);
        let sv = _mm512_set1_pd(s);
        let neg = neg_even_512();
        let mut i = 0;
        while i + 4 <= n {
            let u = _mm512_loadu_pd(tp.add(2 * i));
            let b = _mm512_loadu_pd(bp.add(2 * i));
            let bs = _mm512_permute_pd(b, 0x55);
            let t2 = xor_pd_512(_mm512_mul_pd(bs, wim), neg);
            let v = _mm512_add_pd(_mm512_mul_pd(b, wre), t2);
            _mm512_storeu_pd(tp.add(2 * i), _mm512_mul_pd(_mm512_add_pd(u, v), sv));
            _mm512_storeu_pd(bp.add(2 * i), _mm512_mul_pd(_mm512_sub_pd(u, v), sv));
            i += 4;
        }
        butterfly_complex_scale_avx2(&mut top[i..], &mut bottom[i..], w, s);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn butterfly_complex_scale_avx2(
        top: &mut [Complex],
        bottom: &mut [Complex],
        w: Complex,
        s: f64,
    ) {
        let n = top.len();
        let tp = top.as_mut_ptr() as *mut f64;
        let bp = bottom.as_mut_ptr() as *mut f64;
        let wre = _mm256_set1_pd(w.re);
        let wim = _mm256_set1_pd(w.im);
        let sv = _mm256_set1_pd(s);
        let mut i = 0;
        while i + 2 <= n {
            let u = _mm256_loadu_pd(tp.add(2 * i));
            let b = _mm256_loadu_pd(bp.add(2 * i));
            let bs = _mm256_permute_pd(b, 0b0101);
            let v = _mm256_addsub_pd(_mm256_mul_pd(b, wre), _mm256_mul_pd(bs, wim));
            _mm256_storeu_pd(tp.add(2 * i), _mm256_mul_pd(_mm256_add_pd(u, v), sv));
            _mm256_storeu_pd(bp.add(2 * i), _mm256_mul_pd(_mm256_sub_pd(u, v), sv));
            i += 2;
        }
        super::butterfly_complex_scale_scalar(&mut top[i..], &mut bottom[i..], w, s);
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn butterfly_complex_scale_sse2(
        top: &mut [Complex],
        bottom: &mut [Complex],
        w: Complex,
        s: f64,
    ) {
        let n = top.len();
        let tp = top.as_mut_ptr() as *mut f64;
        let bp = bottom.as_mut_ptr() as *mut f64;
        let wre = _mm_set1_pd(w.re);
        let wim = _mm_set1_pd(w.im);
        let sv = _mm_set1_pd(s);
        let neg_lo = _mm_set_pd(0.0, -0.0);
        let mut i = 0;
        while i < n {
            let u = _mm_loadu_pd(tp.add(2 * i));
            let b = _mm_loadu_pd(bp.add(2 * i));
            let bs = _mm_shuffle_pd(b, b, 0b01);
            let t2 = _mm_xor_pd(_mm_mul_pd(bs, wim), neg_lo);
            let v = _mm_add_pd(_mm_mul_pd(b, wre), t2);
            _mm_storeu_pd(tp.add(2 * i), _mm_mul_pd(_mm_add_pd(u, v), sv));
            _mm_storeu_pd(bp.add(2 * i), _mm_mul_pd(_mm_sub_pd(u, v), sv));
            i += 1;
        }
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn butterfly_complex_postmul_avx512(
        top: &mut [Complex],
        bottom: &mut [Complex],
        w: Complex,
        ct: Complex,
        cb: Complex,
    ) {
        let n = top.len();
        let tp = top.as_mut_ptr() as *mut f64;
        let bp = bottom.as_mut_ptr() as *mut f64;
        let wre = _mm512_set1_pd(w.re);
        let wim = _mm512_set1_pd(w.im);
        let ctre = _mm512_set1_pd(ct.re);
        let ctim = _mm512_set1_pd(ct.im);
        let cbre = _mm512_set1_pd(cb.re);
        let cbim = _mm512_set1_pd(cb.im);
        let neg = neg_even_512();
        let mut i = 0;
        while i + 4 <= n {
            let u = _mm512_loadu_pd(tp.add(2 * i));
            let b = _mm512_loadu_pd(bp.add(2 * i));
            let bs = _mm512_permute_pd(b, 0x55);
            let t2 = xor_pd_512(_mm512_mul_pd(bs, wim), neg);
            let v = _mm512_add_pd(_mm512_mul_pd(b, wre), t2);
            let a = _mm512_add_pd(u, v);
            let d = _mm512_sub_pd(u, v);
            let at = xor_pd_512(_mm512_mul_pd(_mm512_permute_pd(a, 0x55), ctim), neg);
            _mm512_storeu_pd(tp.add(2 * i), _mm512_add_pd(_mm512_mul_pd(a, ctre), at));
            let dt = xor_pd_512(_mm512_mul_pd(_mm512_permute_pd(d, 0x55), cbim), neg);
            _mm512_storeu_pd(bp.add(2 * i), _mm512_add_pd(_mm512_mul_pd(d, cbre), dt));
            i += 4;
        }
        butterfly_complex_postmul_avx2(&mut top[i..], &mut bottom[i..], w, ct, cb);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn butterfly_complex_postmul_avx2(
        top: &mut [Complex],
        bottom: &mut [Complex],
        w: Complex,
        ct: Complex,
        cb: Complex,
    ) {
        let n = top.len();
        let tp = top.as_mut_ptr() as *mut f64;
        let bp = bottom.as_mut_ptr() as *mut f64;
        let wre = _mm256_set1_pd(w.re);
        let wim = _mm256_set1_pd(w.im);
        let ctre = _mm256_set1_pd(ct.re);
        let ctim = _mm256_set1_pd(ct.im);
        let cbre = _mm256_set1_pd(cb.re);
        let cbim = _mm256_set1_pd(cb.im);
        let mut i = 0;
        while i + 2 <= n {
            let u = _mm256_loadu_pd(tp.add(2 * i));
            let b = _mm256_loadu_pd(bp.add(2 * i));
            let bs = _mm256_permute_pd(b, 0b0101);
            let v = _mm256_addsub_pd(_mm256_mul_pd(b, wre), _mm256_mul_pd(bs, wim));
            let a = _mm256_add_pd(u, v);
            let d = _mm256_sub_pd(u, v);
            let ra = _mm256_addsub_pd(
                _mm256_mul_pd(a, ctre),
                _mm256_mul_pd(_mm256_permute_pd(a, 0b0101), ctim),
            );
            _mm256_storeu_pd(tp.add(2 * i), ra);
            let rd = _mm256_addsub_pd(
                _mm256_mul_pd(d, cbre),
                _mm256_mul_pd(_mm256_permute_pd(d, 0b0101), cbim),
            );
            _mm256_storeu_pd(bp.add(2 * i), rd);
            i += 2;
        }
        super::butterfly_complex_postmul_scalar(&mut top[i..], &mut bottom[i..], w, ct, cb);
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn butterfly_complex_postmul_sse2(
        top: &mut [Complex],
        bottom: &mut [Complex],
        w: Complex,
        ct: Complex,
        cb: Complex,
    ) {
        let n = top.len();
        let tp = top.as_mut_ptr() as *mut f64;
        let bp = bottom.as_mut_ptr() as *mut f64;
        let wre = _mm_set1_pd(w.re);
        let wim = _mm_set1_pd(w.im);
        let ctre = _mm_set1_pd(ct.re);
        let ctim = _mm_set1_pd(ct.im);
        let cbre = _mm_set1_pd(cb.re);
        let cbim = _mm_set1_pd(cb.im);
        let neg_lo = _mm_set_pd(0.0, -0.0);
        let mut i = 0;
        while i < n {
            let u = _mm_loadu_pd(tp.add(2 * i));
            let b = _mm_loadu_pd(bp.add(2 * i));
            let bs = _mm_shuffle_pd(b, b, 0b01);
            let t2 = _mm_xor_pd(_mm_mul_pd(bs, wim), neg_lo);
            let v = _mm_add_pd(_mm_mul_pd(b, wre), t2);
            let a = _mm_add_pd(u, v);
            let d = _mm_sub_pd(u, v);
            let at = _mm_xor_pd(_mm_mul_pd(_mm_shuffle_pd(a, a, 0b01), ctim), neg_lo);
            _mm_storeu_pd(tp.add(2 * i), _mm_add_pd(_mm_mul_pd(a, ctre), at));
            let dt = _mm_xor_pd(_mm_mul_pd(_mm_shuffle_pd(d, d, 0b01), cbim), neg_lo);
            _mm_storeu_pd(bp.add(2 * i), _mm_add_pd(_mm_mul_pd(d, cbre), dt));
            i += 1;
        }
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn cmul_rows_avx512(dst: &mut [Complex], src: &[Complex], c: Complex) {
        let n = dst.len();
        let dp = dst.as_mut_ptr() as *mut f64;
        let sp = src.as_ptr() as *const f64;
        let cre = _mm512_set1_pd(c.re);
        let cim = _mm512_set1_pd(c.im);
        let neg = neg_even_512();
        let mut i = 0;
        while i + 4 <= n {
            let s = _mm512_loadu_pd(sp.add(2 * i));
            let ss = _mm512_permute_pd(s, 0x55);
            let t2 = xor_pd_512(_mm512_mul_pd(ss, cim), neg);
            let r = _mm512_add_pd(_mm512_mul_pd(s, cre), t2);
            _mm512_storeu_pd(dp.add(2 * i), r);
            i += 4;
        }
        cmul_rows_avx2(&mut dst[i..], &src[i..], c);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn cmul_scale_rows_avx512(dst: &mut [Complex], src: &[Complex], c: Complex, s: f64) {
        let n = dst.len();
        let dp = dst.as_mut_ptr() as *mut f64;
        let sp = src.as_ptr() as *const f64;
        let cre = _mm512_set1_pd(c.re);
        let cim = _mm512_set1_pd(c.im);
        let sv = _mm512_set1_pd(s);
        let neg = neg_even_512();
        let mut i = 0;
        while i + 4 <= n {
            let x = _mm512_loadu_pd(sp.add(2 * i));
            let xs = _mm512_permute_pd(x, 0x55);
            let t2 = xor_pd_512(_mm512_mul_pd(xs, cim), neg);
            let r = _mm512_add_pd(_mm512_mul_pd(x, cre), t2);
            _mm512_storeu_pd(dp.add(2 * i), _mm512_mul_pd(r, sv));
            i += 4;
        }
        cmul_scale_rows_avx2(&mut dst[i..], &src[i..], c, s);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn cmul_inplace_avx512(row: &mut [Complex], c: Complex) {
        let n = row.len();
        let p = row.as_mut_ptr() as *mut f64;
        let cre = _mm512_set1_pd(c.re);
        let cim = _mm512_set1_pd(c.im);
        let neg = neg_even_512();
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm512_loadu_pd(p.add(2 * i));
            let vs = _mm512_permute_pd(v, 0x55);
            let t2 = xor_pd_512(_mm512_mul_pd(vs, cim), neg);
            let r = _mm512_add_pd(_mm512_mul_pd(v, cre), t2);
            _mm512_storeu_pd(p.add(2 * i), r);
            i += 4;
        }
        cmul_inplace_avx2(&mut row[i..], c);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn cmul_scale_inplace_avx512(row: &mut [Complex], c: Complex, s: f64) {
        let n = row.len();
        let p = row.as_mut_ptr() as *mut f64;
        let cre = _mm512_set1_pd(c.re);
        let cim = _mm512_set1_pd(c.im);
        let sv = _mm512_set1_pd(s);
        let neg = neg_even_512();
        let mut i = 0;
        while i + 4 <= n {
            let v = _mm512_loadu_pd(p.add(2 * i));
            let vs = _mm512_permute_pd(v, 0x55);
            let t2 = xor_pd_512(_mm512_mul_pd(vs, cim), neg);
            let r = _mm512_add_pd(_mm512_mul_pd(v, cre), t2);
            _mm512_storeu_pd(p.add(2 * i), _mm512_mul_pd(r, sv));
            i += 4;
        }
        cmul_scale_inplace_avx2(&mut row[i..], c, s);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn scale_f64_avx512(data: &mut [f64], s: f64) {
        let n = data.len();
        let p = data.as_mut_ptr();
        let sv = _mm512_set1_pd(s);
        let mut i = 0;
        while i + 8 <= n {
            _mm512_storeu_pd(p.add(i), _mm512_mul_pd(_mm512_loadu_pd(p.add(i)), sv));
            i += 8;
        }
        super::scale_f64_scalar(&mut data[i..], s);
    }

    #[target_feature(enable = "avx512f")]
    pub unsafe fn mul_rows_f64_avx512(dst: &mut [f64], src: &[f64], s: f64) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let sv = _mm512_set1_pd(s);
        let mut i = 0;
        while i + 8 <= n {
            _mm512_storeu_pd(dp.add(i), _mm512_mul_pd(sv, _mm512_loadu_pd(sp.add(i))));
            i += 8;
        }
        super::mul_rows_f64_scalar(&mut dst[i..], &src[i..], s);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn butterfly_f64_avx2(top: &mut [f64], bottom: &mut [f64]) {
        let n = top.len();
        let tp = top.as_mut_ptr();
        let bp = bottom.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let x = _mm256_loadu_pd(tp.add(i));
            let y = _mm256_loadu_pd(bp.add(i));
            _mm256_storeu_pd(tp.add(i), _mm256_add_pd(x, y));
            _mm256_storeu_pd(bp.add(i), _mm256_sub_pd(x, y));
            i += 4;
        }
        super::butterfly_f64_scalar(&mut top[i..], &mut bottom[i..]);
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn butterfly_f64_sse2(top: &mut [f64], bottom: &mut [f64]) {
        let n = top.len();
        let tp = top.as_mut_ptr();
        let bp = bottom.as_mut_ptr();
        let mut i = 0;
        while i + 2 <= n {
            let x = _mm_loadu_pd(tp.add(i));
            let y = _mm_loadu_pd(bp.add(i));
            _mm_storeu_pd(tp.add(i), _mm_add_pd(x, y));
            _mm_storeu_pd(bp.add(i), _mm_sub_pd(x, y));
            i += 2;
        }
        super::butterfly_f64_scalar(&mut top[i..], &mut bottom[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn butterfly_i64_avx2(top: &mut [i64], bottom: &mut [i64]) {
        let n = top.len();
        let tp = top.as_mut_ptr();
        let bp = bottom.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let x = _mm256_loadu_si256(tp.add(i) as *const __m256i);
            let y = _mm256_loadu_si256(bp.add(i) as *const __m256i);
            _mm256_storeu_si256(tp.add(i) as *mut __m256i, _mm256_add_epi64(x, y));
            _mm256_storeu_si256(bp.add(i) as *mut __m256i, _mm256_sub_epi64(x, y));
            i += 4;
        }
        super::butterfly_i64_scalar(&mut top[i..], &mut bottom[i..]);
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn butterfly_i64_sse2(top: &mut [i64], bottom: &mut [i64]) {
        let n = top.len();
        let tp = top.as_mut_ptr();
        let bp = bottom.as_mut_ptr();
        let mut i = 0;
        while i + 2 <= n {
            let x = _mm_loadu_si128(tp.add(i) as *const __m128i);
            let y = _mm_loadu_si128(bp.add(i) as *const __m128i);
            _mm_storeu_si128(tp.add(i) as *mut __m128i, _mm_add_epi64(x, y));
            _mm_storeu_si128(bp.add(i) as *mut __m128i, _mm_sub_epi64(x, y));
            i += 2;
        }
        super::butterfly_i64_scalar(&mut top[i..], &mut bottom[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn butterfly_complex_avx2(top: &mut [Complex], bottom: &mut [Complex], w: Complex) {
        let n = top.len();
        let tp = top.as_mut_ptr() as *mut f64;
        let bp = bottom.as_mut_ptr() as *mut f64;
        let wre = _mm256_set1_pd(w.re);
        let wim = _mm256_set1_pd(w.im);
        let mut i = 0;
        while i + 2 <= n {
            let u = _mm256_loadu_pd(tp.add(2 * i));
            let b = _mm256_loadu_pd(bp.add(2 * i));
            let bs = _mm256_permute_pd(b, 0b0101);
            let v = _mm256_addsub_pd(_mm256_mul_pd(b, wre), _mm256_mul_pd(bs, wim));
            _mm256_storeu_pd(tp.add(2 * i), _mm256_add_pd(u, v));
            _mm256_storeu_pd(bp.add(2 * i), _mm256_sub_pd(u, v));
            i += 2;
        }
        super::butterfly_complex_scalar(&mut top[i..], &mut bottom[i..], w);
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn butterfly_complex_sse2(top: &mut [Complex], bottom: &mut [Complex], w: Complex) {
        let n = top.len();
        let tp = top.as_mut_ptr() as *mut f64;
        let bp = bottom.as_mut_ptr() as *mut f64;
        let wre = _mm_set1_pd(w.re);
        let wim = _mm_set1_pd(w.im);
        // Sign-flip mask for the low (real) lane: x + (−y) ≡ x − y.
        let neg_lo = _mm_set_pd(0.0, -0.0);
        let mut i = 0;
        while i < n {
            let u = _mm_loadu_pd(tp.add(2 * i));
            let b = _mm_loadu_pd(bp.add(2 * i));
            let bs = _mm_shuffle_pd(b, b, 0b01);
            let t2 = _mm_xor_pd(_mm_mul_pd(bs, wim), neg_lo);
            let v = _mm_add_pd(_mm_mul_pd(b, wre), t2);
            _mm_storeu_pd(tp.add(2 * i), _mm_add_pd(u, v));
            _mm_storeu_pd(bp.add(2 * i), _mm_sub_pd(u, v));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn cmul_rows_avx2(dst: &mut [Complex], src: &[Complex], c: Complex) {
        let n = dst.len();
        let dp = dst.as_mut_ptr() as *mut f64;
        let sp = src.as_ptr() as *const f64;
        let cre = _mm256_set1_pd(c.re);
        let cim = _mm256_set1_pd(c.im);
        let mut i = 0;
        while i + 2 <= n {
            let s = _mm256_loadu_pd(sp.add(2 * i));
            let ss = _mm256_permute_pd(s, 0b0101);
            let r = _mm256_addsub_pd(_mm256_mul_pd(s, cre), _mm256_mul_pd(ss, cim));
            _mm256_storeu_pd(dp.add(2 * i), r);
            i += 2;
        }
        super::cmul_rows_scalar(&mut dst[i..], &src[i..], c);
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn cmul_rows_sse2(dst: &mut [Complex], src: &[Complex], c: Complex) {
        let n = dst.len();
        let dp = dst.as_mut_ptr() as *mut f64;
        let sp = src.as_ptr() as *const f64;
        let cre = _mm_set1_pd(c.re);
        let cim = _mm_set1_pd(c.im);
        let neg_lo = _mm_set_pd(0.0, -0.0);
        let mut i = 0;
        while i < n {
            let s = _mm_loadu_pd(sp.add(2 * i));
            let ss = _mm_shuffle_pd(s, s, 0b01);
            let t2 = _mm_xor_pd(_mm_mul_pd(ss, cim), neg_lo);
            let r = _mm_add_pd(_mm_mul_pd(s, cre), t2);
            _mm_storeu_pd(dp.add(2 * i), r);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn cmul_scale_rows_avx2(dst: &mut [Complex], src: &[Complex], c: Complex, s: f64) {
        let n = dst.len();
        let dp = dst.as_mut_ptr() as *mut f64;
        let sp = src.as_ptr() as *const f64;
        let cre = _mm256_set1_pd(c.re);
        let cim = _mm256_set1_pd(c.im);
        let sv = _mm256_set1_pd(s);
        let mut i = 0;
        while i + 2 <= n {
            let x = _mm256_loadu_pd(sp.add(2 * i));
            let xs = _mm256_permute_pd(x, 0b0101);
            let r = _mm256_addsub_pd(_mm256_mul_pd(x, cre), _mm256_mul_pd(xs, cim));
            _mm256_storeu_pd(dp.add(2 * i), _mm256_mul_pd(r, sv));
            i += 2;
        }
        super::cmul_scale_rows_scalar(&mut dst[i..], &src[i..], c, s);
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn cmul_scale_rows_sse2(dst: &mut [Complex], src: &[Complex], c: Complex, s: f64) {
        let n = dst.len();
        let dp = dst.as_mut_ptr() as *mut f64;
        let sp = src.as_ptr() as *const f64;
        let cre = _mm_set1_pd(c.re);
        let cim = _mm_set1_pd(c.im);
        let sv = _mm_set1_pd(s);
        let neg_lo = _mm_set_pd(0.0, -0.0);
        let mut i = 0;
        while i < n {
            let x = _mm_loadu_pd(sp.add(2 * i));
            let xs = _mm_shuffle_pd(x, x, 0b01);
            let t2 = _mm_xor_pd(_mm_mul_pd(xs, cim), neg_lo);
            let r = _mm_add_pd(_mm_mul_pd(x, cre), t2);
            _mm_storeu_pd(dp.add(2 * i), _mm_mul_pd(r, sv));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn cmul_inplace_avx2(row: &mut [Complex], c: Complex) {
        let n = row.len();
        let p = row.as_mut_ptr() as *mut f64;
        let cre = _mm256_set1_pd(c.re);
        let cim = _mm256_set1_pd(c.im);
        let mut i = 0;
        while i + 2 <= n {
            let v = _mm256_loadu_pd(p.add(2 * i));
            let vs = _mm256_permute_pd(v, 0b0101);
            let r = _mm256_addsub_pd(_mm256_mul_pd(v, cre), _mm256_mul_pd(vs, cim));
            _mm256_storeu_pd(p.add(2 * i), r);
            i += 2;
        }
        super::cmul_inplace_scalar(&mut row[i..], c);
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn cmul_inplace_sse2(row: &mut [Complex], c: Complex) {
        let n = row.len();
        let p = row.as_mut_ptr() as *mut f64;
        let cre = _mm_set1_pd(c.re);
        let cim = _mm_set1_pd(c.im);
        let neg_lo = _mm_set_pd(0.0, -0.0);
        let mut i = 0;
        while i < n {
            let v = _mm_loadu_pd(p.add(2 * i));
            let vs = _mm_shuffle_pd(v, v, 0b01);
            let t2 = _mm_xor_pd(_mm_mul_pd(vs, cim), neg_lo);
            let r = _mm_add_pd(_mm_mul_pd(v, cre), t2);
            _mm_storeu_pd(p.add(2 * i), r);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn cmul_scale_inplace_avx2(row: &mut [Complex], c: Complex, s: f64) {
        let n = row.len();
        let p = row.as_mut_ptr() as *mut f64;
        let cre = _mm256_set1_pd(c.re);
        let cim = _mm256_set1_pd(c.im);
        let sv = _mm256_set1_pd(s);
        let mut i = 0;
        while i + 2 <= n {
            let v = _mm256_loadu_pd(p.add(2 * i));
            let vs = _mm256_permute_pd(v, 0b0101);
            let r = _mm256_addsub_pd(_mm256_mul_pd(v, cre), _mm256_mul_pd(vs, cim));
            _mm256_storeu_pd(p.add(2 * i), _mm256_mul_pd(r, sv));
            i += 2;
        }
        super::cmul_scale_inplace_scalar(&mut row[i..], c, s);
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn cmul_scale_inplace_sse2(row: &mut [Complex], c: Complex, s: f64) {
        let n = row.len();
        let p = row.as_mut_ptr() as *mut f64;
        let cre = _mm_set1_pd(c.re);
        let cim = _mm_set1_pd(c.im);
        let sv = _mm_set1_pd(s);
        let neg_lo = _mm_set_pd(0.0, -0.0);
        let mut i = 0;
        while i < n {
            let v = _mm_loadu_pd(p.add(2 * i));
            let vs = _mm_shuffle_pd(v, v, 0b01);
            let t2 = _mm_xor_pd(_mm_mul_pd(vs, cim), neg_lo);
            let r = _mm_add_pd(_mm_mul_pd(v, cre), t2);
            _mm_storeu_pd(p.add(2 * i), _mm_mul_pd(r, sv));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn widen_re_avx2(dst: &mut [Complex], src: &[f64]) {
        let n = dst.len();
        let dp = dst.as_mut_ptr() as *mut f64;
        let sp = src.as_ptr();
        let zero = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            let x = _mm256_loadu_pd(sp.add(i));
            // [x0,x2,x1,x3] so in-lane unpacks yield interleaved pairs.
            let xp = _mm256_permute4x64_pd(x, 0xD8);
            _mm256_storeu_pd(dp.add(2 * i), _mm256_unpacklo_pd(xp, zero));
            _mm256_storeu_pd(dp.add(2 * i + 4), _mm256_unpackhi_pd(xp, zero));
            i += 4;
        }
        super::widen_re_scalar(&mut dst[i..], &src[i..]);
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn widen_re_sse2(dst: &mut [Complex], src: &[f64]) {
        let n = dst.len();
        let dp = dst.as_mut_ptr() as *mut f64;
        let sp = src.as_ptr();
        let zero = _mm_setzero_pd();
        let mut i = 0;
        while i + 2 <= n {
            let x = _mm_loadu_pd(sp.add(i));
            _mm_storeu_pd(dp.add(2 * i), _mm_unpacklo_pd(x, zero));
            _mm_storeu_pd(dp.add(2 * i + 2), _mm_unpackhi_pd(x, zero));
            i += 2;
        }
        super::widen_re_scalar(&mut dst[i..], &src[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn narrow_re_avx2(dst: &mut [f64], src: &[Complex]) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr() as *const f64;
        let mut i = 0;
        while i + 4 <= n {
            let a = _mm256_loadu_pd(sp.add(2 * i));
            let b = _mm256_loadu_pd(sp.add(2 * i + 4));
            let packed = _mm256_unpacklo_pd(a, b);
            _mm256_storeu_pd(dp.add(i), _mm256_permute4x64_pd(packed, 0xD8));
            i += 4;
        }
        super::narrow_re_scalar(&mut dst[i..], &src[i..]);
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn narrow_re_sse2(dst: &mut [f64], src: &[Complex]) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr() as *const f64;
        let mut i = 0;
        while i + 2 <= n {
            let a = _mm_loadu_pd(sp.add(2 * i));
            let b = _mm_loadu_pd(sp.add(2 * i + 2));
            _mm_storeu_pd(dp.add(i), _mm_unpacklo_pd(a, b));
            i += 2;
        }
        super::narrow_re_scalar(&mut dst[i..], &src[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_f64_avx2(data: &mut [f64], s: f64) {
        let n = data.len();
        let p = data.as_mut_ptr();
        let sv = _mm256_set1_pd(s);
        let mut i = 0;
        while i + 4 <= n {
            _mm256_storeu_pd(p.add(i), _mm256_mul_pd(_mm256_loadu_pd(p.add(i)), sv));
            i += 4;
        }
        super::scale_f64_scalar(&mut data[i..], s);
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn scale_f64_sse2(data: &mut [f64], s: f64) {
        let n = data.len();
        let p = data.as_mut_ptr();
        let sv = _mm_set1_pd(s);
        let mut i = 0;
        while i + 2 <= n {
            _mm_storeu_pd(p.add(i), _mm_mul_pd(_mm_loadu_pd(p.add(i)), sv));
            i += 2;
        }
        super::scale_f64_scalar(&mut data[i..], s);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_rows_f64_avx2(dst: &mut [f64], src: &[f64], s: f64) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let sv = _mm256_set1_pd(s);
        let mut i = 0;
        while i + 4 <= n {
            _mm256_storeu_pd(dp.add(i), _mm256_mul_pd(sv, _mm256_loadu_pd(sp.add(i))));
            i += 4;
        }
        super::mul_rows_f64_scalar(&mut dst[i..], &src[i..], s);
    }

    #[target_feature(enable = "sse2")]
    pub unsafe fn mul_rows_f64_sse2(dst: &mut [f64], src: &[f64], s: f64) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let sv = _mm_set1_pd(s);
        let mut i = 0;
        while i + 2 <= n {
            _mm_storeu_pd(dp.add(i), _mm_mul_pd(sv, _mm_loadu_pd(sp.add(i))));
            i += 2;
        }
        super::mul_rows_f64_scalar(&mut dst[i..], &src[i..], s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx(k: usize) -> Complex {
        // Deterministic awkward values: mixed signs, magnitudes, exact and
        // inexact fractions.
        let re = ((k * 37 + 11) % 101) as f64 - 50.25;
        let im = ((k * 53 + 7) % 97) as f64 / 7.0 - 6.5;
        Complex::new(re, im)
    }

    #[test]
    fn backend_parse_round_trips() {
        for b in [
            Backend::Scalar,
            Backend::Sse2,
            Backend::Avx2,
            Backend::Avx512,
        ] {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse(" AVX2 "), Some(Backend::Avx2));
        assert_eq!(Backend::parse("avx512f"), Some(Backend::Avx512));
        assert_eq!(Backend::parse("neon"), None);
    }

    #[test]
    fn scalar_always_available_and_first() {
        let all = available_backends();
        assert_eq!(all[0], Backend::Scalar);
        assert!(active().is_available());
    }

    #[test]
    fn kernels_bit_identical_across_backends() {
        // Odd lengths exercise every remainder lane path.
        for len in [1usize, 2, 3, 4, 7, 8, 31, 32, 33] {
            let top0: Vec<Complex> = (0..len).map(cx).collect();
            let bot0: Vec<Complex> = (0..len).map(|k| cx(k + 1000)).collect();
            let w = cx(271828);
            let c = cx(314159);
            let s = 1.0 / 511.0;

            let mut ref_top = top0.clone();
            let mut ref_bot = bot0.clone();
            butterfly_complex(Backend::Scalar, &mut ref_top, &mut ref_bot, w);

            for be in available_backends() {
                let mut t = top0.clone();
                let mut b = bot0.clone();
                butterfly_complex(be, &mut t, &mut b, w);
                for i in 0..len {
                    assert_eq!(
                        t[i].re.to_bits(),
                        ref_top[i].re.to_bits(),
                        "{be:?} len {len}"
                    );
                    assert_eq!(
                        t[i].im.to_bits(),
                        ref_top[i].im.to_bits(),
                        "{be:?} len {len}"
                    );
                    assert_eq!(
                        b[i].re.to_bits(),
                        ref_bot[i].re.to_bits(),
                        "{be:?} len {len}"
                    );
                    assert_eq!(
                        b[i].im.to_bits(),
                        ref_bot[i].im.to_bits(),
                        "{be:?} len {len}"
                    );
                }

                let mut t = top0.clone();
                let mut b = bot0.clone();
                let mut t_ref = top0.clone();
                let mut b_ref = bot0.clone();
                butterfly_complex_scale(Backend::Scalar, &mut t_ref, &mut b_ref, w, s);
                butterfly_complex_scale(be, &mut t, &mut b, w, s);
                assert_bits(&t, &t_ref, be);
                assert_bits(&b, &b_ref, be);

                let mut t = top0.clone();
                let mut b = bot0.clone();
                let mut t_ref = top0.clone();
                let mut b_ref = bot0.clone();
                let (ct, cb) = (cx(161803), cx(141421));
                butterfly_complex_postmul(Backend::Scalar, &mut t_ref, &mut b_ref, w, ct, cb);
                butterfly_complex_postmul(be, &mut t, &mut b, w, ct, cb);
                assert_bits(&t, &t_ref, be);
                assert_bits(&b, &b_ref, be);

                let mut d = vec![Complex::ZERO; len];
                let mut d_ref = vec![Complex::ZERO; len];
                cmul_rows(Backend::Scalar, &mut d_ref, &top0, c);
                cmul_rows(be, &mut d, &top0, c);
                assert_bits(&d, &d_ref, be);

                cmul_scale_rows(Backend::Scalar, &mut d_ref, &top0, c, s);
                cmul_scale_rows(be, &mut d, &top0, c, s);
                assert_bits(&d, &d_ref, be);

                let mut v = top0.clone();
                let mut v_ref = top0.clone();
                cmul_inplace(Backend::Scalar, &mut v_ref, c);
                cmul_inplace(be, &mut v, c);
                assert_bits(&v, &v_ref, be);

                let mut v = top0.clone();
                let mut v_ref = top0.clone();
                cmul_scale_inplace(Backend::Scalar, &mut v_ref, c, s);
                cmul_scale_inplace(be, &mut v, c, s);
                assert_bits(&v, &v_ref, be);

                let mut v = top0.clone();
                let mut v_ref = top0.clone();
                scale_complex(Backend::Scalar, &mut v_ref, s);
                scale_complex(be, &mut v, s);
                assert_bits(&v, &v_ref, be);

                let f_top: Vec<f64> = top0.iter().map(|z| z.re).collect();
                let f_bot: Vec<f64> = bot0.iter().map(|z| z.im).collect();
                let mut a = f_top.clone();
                let mut b = f_bot.clone();
                let mut a_ref = f_top.clone();
                let mut b_ref = f_bot.clone();
                butterfly_f64(Backend::Scalar, &mut a_ref, &mut b_ref);
                butterfly_f64(be, &mut a, &mut b);
                assert_eq!(
                    a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    a_ref.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                );
                assert_eq!(
                    b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    b_ref.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                );

                let mut m = f_top.clone();
                let mut m_ref = f_top.clone();
                mul_rows_f64(Backend::Scalar, &mut m_ref, &f_bot, -2.0 / 512.0);
                mul_rows_f64(be, &mut m, &f_bot, -2.0 / 512.0);
                assert_eq!(
                    m.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    m_ref.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                );

                let mut wide = vec![Complex::ZERO; len];
                let mut wide_ref = vec![Complex::ZERO; len];
                widen_re(Backend::Scalar, &mut wide_ref, &f_top);
                widen_re(be, &mut wide, &f_top);
                assert_bits(&wide, &wide_ref, be);
                let mut narrow = vec![0.0f64; len];
                let mut narrow_ref = vec![0.0f64; len];
                narrow_re(Backend::Scalar, &mut narrow_ref, &top0);
                narrow_re(be, &mut narrow, &top0);
                assert_eq!(
                    narrow.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    narrow_ref.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                );

                let i_top: Vec<i64> = (0..len).map(|k| (k as i64 * 977 - 40_000) * 3).collect();
                let i_bot: Vec<i64> = (0..len).map(|k| (k as i64 * 1013 + 17) * -7).collect();
                let mut x = i_top.clone();
                let mut y = i_bot.clone();
                let mut x_ref = i_top.clone();
                let mut y_ref = i_bot.clone();
                butterfly_i64(Backend::Scalar, &mut x_ref, &mut y_ref);
                butterfly_i64(be, &mut x, &mut y);
                assert_eq!(x, x_ref, "{be:?}");
                assert_eq!(y, y_ref, "{be:?}");
            }
        }
    }

    fn assert_bits(got: &[Complex], want: &[Complex], be: Backend) {
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.re.to_bits(), w.re.to_bits(), "{be:?}");
            assert_eq!(g.im.to_bits(), w.im.to_bits(), "{be:?}");
        }
    }

    #[test]
    fn negative_zero_semantics_preserved() {
        // −0.0 inputs are where x+(−y) vs x−y and mul sign rules would
        // diverge if the lanes were wired wrong.
        let vals = [
            Complex::new(-0.0, 0.0),
            Complex::new(0.0, -0.0),
            Complex::new(-0.0, -0.0),
            Complex::new(1.5, -0.0),
        ];
        let w = Complex::new(-1.0, 0.0);
        for be in available_backends() {
            let mut t = vals.to_vec();
            let mut b = vals.to_vec();
            let mut t_ref = vals.to_vec();
            let mut b_ref = vals.to_vec();
            butterfly_complex(Backend::Scalar, &mut t_ref, &mut b_ref, w);
            butterfly_complex(be, &mut t, &mut b, w);
            assert_bits(&t, &t_ref, be);
            assert_bits(&b, &b_ref, be);
        }
    }
}
