//! Property-based tests of the DSP substrate.

use ims_signal::correlate::*;
use ims_signal::fft::{dft_direct, fft, ifft, Complex};
use ims_signal::fwht::{fwht, ifwht};
use ims_signal::matrix::Matrix;
use ims_signal::peaks::gaussian_binned;
use ims_signal::resample::{rebin_sum, upsample_repeat};
use ims_signal::stats;
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_round_trips_any_length(x in finite_vec(1..160)) {
        let buf: Vec<Complex> = x.iter().map(|&v| Complex::from_re(v)).collect();
        let back = ifft(&fft(&buf));
        for (a, b) in buf.iter().zip(back.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-6, "{} vs {}", a.re, b.re);
            prop_assert!(b.im.abs() < 1e-6);
        }
    }

    #[test]
    fn fft_matches_direct_dft(x in finite_vec(2..48)) {
        let buf: Vec<Complex> = x.iter().map(|&v| Complex::from_re(v)).collect();
        let fast = fft(&buf);
        let slow = dft_direct(&buf);
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn parseval_any_length(x in finite_vec(1..100)) {
        let buf: Vec<Complex> = x.iter().map(|&v| Complex::from_re(v)).collect();
        let n = buf.len() as f64;
        let time: f64 = buf.iter().map(|v| v.norm_sqr()).sum();
        let freq: f64 = fft(&buf).iter().map(|v| v.norm_sqr()).sum::<f64>() / n;
        prop_assert!((time - freq).abs() <= 1e-6 * (1.0 + time));
    }

    #[test]
    fn fwht_involution(bits in 1u32..10, seed in 0u64..1000) {
        let m = 1usize << bits;
        let x: Vec<f64> = (0..m)
            .map(|i| (((i as u64).wrapping_mul(seed + 1) % 997) as f64) - 500.0)
            .collect();
        let mut y = x.clone();
        fwht(&mut y);
        ifwht(&mut y);
        for (a, b) in x.iter().zip(y.iter()) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn correlation_fft_equals_direct(x in finite_vec(2..40), shift in 0usize..40) {
        let n = x.len();
        let y: Vec<f64> = (0..n).map(|k| x[(k + shift) % n]).collect();
        let d = circular_correlate_direct(&x, &y);
        let f = circular_correlate_fft(&x, &y);
        for (a, b) in d.iter().zip(f.iter()) {
            prop_assert!((a - b).abs() < 1e-5 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn convolution_commutes(a in finite_vec(2..32)) {
        let n = a.len();
        let b: Vec<f64> = a.iter().rev().map(|v| v * 0.5 + 1.0).collect();
        let ab = circular_convolve_direct(&a, &b);
        let ba = circular_convolve_direct(&b[..n], &a);
        for (x, y) in ab.iter().zip(ba.iter()) {
            prop_assert!((x - y).abs() < 1e-7 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn solve_residual_is_small(seed in 0u64..500, n in 2usize..8) {
        // Diagonally dominant => well-conditioned.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64 / u32::MAX as f64) - 0.5
        };
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j { n as f64 + 1.0 } else { next() }
        });
        let b: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
        let x = a.solve(&b).expect("diagonally dominant is solvable");
        let r = a.matvec(&x);
        for (u, v) in r.iter().zip(b.iter()) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn rebin_upsample_round_trip(x in finite_vec(1..40), factor in 1usize..6) {
        let up = upsample_repeat(&x, factor);
        let down = rebin_sum(&up, factor);
        for (a, b) in x.iter().zip(down.iter()) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn binned_gaussian_conserves_area(
        mu in 10.0..190.0f64,
        sigma in 0.05..20.0f64,
        area in 0.1..1e4f64,
    ) {
        let profile = gaussian_binned(200, mu, sigma, area);
        let total: f64 = profile.iter().sum();
        // Allow edge clipping when the peak is wide and near the border.
        let clip = if mu - 6.0 * sigma < 0.0 || mu + 6.0 * sigma > 200.0 { 0.5 } else { 1e-3 };
        prop_assert!((total - area).abs() <= clip * area, "area {total} vs {area}");
        prop_assert!(profile.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn percentile_bounded_by_extremes(x in finite_vec(1..50), p in 0.0..100.0f64) {
        let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = stats::percentile(&x, p);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn mad_and_variance_non_negative(x in finite_vec(0..50)) {
        prop_assert!(stats::mad_sigma(&x) >= 0.0);
        prop_assert!(stats::variance(&x) >= 0.0);
    }

    #[test]
    fn pearson_in_range(x in finite_vec(2..40), seed in 0u64..100) {
        let y: Vec<f64> = x.iter().enumerate()
            .map(|(i, v)| v * ((seed % 7) as f64 - 3.0) + i as f64)
            .collect();
        let r = stats::pearson(&x, &y);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
    }
}
