//! Property-based tests of the DSP substrate.

use ims_signal::correlate::*;
use ims_signal::fft::{dft_direct, fft, ifft, Complex};
use ims_signal::fwht::{fwht, ifwht};
use ims_signal::matrix::Matrix;
use ims_signal::peaks::gaussian_binned;
use ims_signal::resample::{rebin_sum, upsample_repeat};
use ims_signal::stats;
use proptest::prelude::*;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3..1e3f64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_round_trips_any_length(x in finite_vec(1..160)) {
        let buf: Vec<Complex> = x.iter().map(|&v| Complex::from_re(v)).collect();
        let back = ifft(&fft(&buf));
        for (a, b) in buf.iter().zip(back.iter()) {
            prop_assert!((a.re - b.re).abs() < 1e-6, "{} vs {}", a.re, b.re);
            prop_assert!(b.im.abs() < 1e-6);
        }
    }

    #[test]
    fn fft_matches_direct_dft(x in finite_vec(2..48)) {
        let buf: Vec<Complex> = x.iter().map(|&v| Complex::from_re(v)).collect();
        let fast = fft(&buf);
        let slow = dft_direct(&buf);
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn parseval_any_length(x in finite_vec(1..100)) {
        let buf: Vec<Complex> = x.iter().map(|&v| Complex::from_re(v)).collect();
        let n = buf.len() as f64;
        let time: f64 = buf.iter().map(|v| v.norm_sqr()).sum();
        let freq: f64 = fft(&buf).iter().map(|v| v.norm_sqr()).sum::<f64>() / n;
        prop_assert!((time - freq).abs() <= 1e-6 * (1.0 + time));
    }

    #[test]
    fn fwht_involution(bits in 1u32..10, seed in 0u64..1000) {
        let m = 1usize << bits;
        let x: Vec<f64> = (0..m)
            .map(|i| (((i as u64).wrapping_mul(seed + 1) % 997) as f64) - 500.0)
            .collect();
        let mut y = x.clone();
        fwht(&mut y);
        ifwht(&mut y);
        for (a, b) in x.iter().zip(y.iter()) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn correlation_fft_equals_direct(x in finite_vec(2..40), shift in 0usize..40) {
        let n = x.len();
        let y: Vec<f64> = (0..n).map(|k| x[(k + shift) % n]).collect();
        let d = circular_correlate_direct(&x, &y);
        let f = circular_correlate_fft(&x, &y);
        for (a, b) in d.iter().zip(f.iter()) {
            prop_assert!((a - b).abs() < 1e-5 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn convolution_commutes(a in finite_vec(2..32)) {
        let n = a.len();
        let b: Vec<f64> = a.iter().rev().map(|v| v * 0.5 + 1.0).collect();
        let ab = circular_convolve_direct(&a, &b);
        let ba = circular_convolve_direct(&b[..n], &a);
        for (x, y) in ab.iter().zip(ba.iter()) {
            prop_assert!((x - y).abs() < 1e-7 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn solve_residual_is_small(seed in 0u64..500, n in 2usize..8) {
        // Diagonally dominant => well-conditioned.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f64 / u32::MAX as f64) - 0.5
        };
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j { n as f64 + 1.0 } else { next() }
        });
        let b: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
        let x = a.solve(&b).expect("diagonally dominant is solvable");
        let r = a.matvec(&x);
        for (u, v) in r.iter().zip(b.iter()) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn rebin_upsample_round_trip(x in finite_vec(1..40), factor in 1usize..6) {
        let up = upsample_repeat(&x, factor);
        let down = rebin_sum(&up, factor);
        for (a, b) in x.iter().zip(down.iter()) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn binned_gaussian_conserves_area(
        mu in 10.0..190.0f64,
        sigma in 0.05..20.0f64,
        area in 0.1..1e4f64,
    ) {
        let profile = gaussian_binned(200, mu, sigma, area);
        let total: f64 = profile.iter().sum();
        // Allow edge clipping when the peak is wide and near the border.
        let clip = if mu - 6.0 * sigma < 0.0 || mu + 6.0 * sigma > 200.0 { 0.5 } else { 1e-3 };
        prop_assert!((total - area).abs() <= clip * area, "area {total} vs {area}");
        prop_assert!(profile.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn percentile_bounded_by_extremes(x in finite_vec(1..50), p in 0.0..100.0f64) {
        let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = stats::percentile(&x, p);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn mad_and_variance_non_negative(x in finite_vec(0..50)) {
        prop_assert!(stats::mad_sigma(&x) >= 0.0);
        prop_assert!(stats::variance(&x) >= 0.0);
    }

    #[test]
    fn pearson_in_range(x in finite_vec(2..40), seed in 0u64..100) {
        let y: Vec<f64> = x.iter().enumerate()
            .map(|(i, v)| v * ((seed % 7) as f64 - 3.0) + i as f64)
            .collect();
        let r = stats::pearson(&x, &y);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
    }
}

// --- Per-backend SIMD bit-exactness -------------------------------------
//
// Every vector backend must produce *bit-identical* output to the scalar
// reference for every kernel, at every length (including the ragged tails
// the remainder loops handle). `available_backends()` is probed at run
// time, so on a machine without AVX2 the property quietly narrows to the
// backends that exist.

use ims_signal::fft::{FftPlan, FftScratch};
use ims_signal::fwht::fwht_panel_with;
use ims_signal::simd::{self, Backend};

fn complex_row(x: &[f64]) -> Vec<Complex> {
    x.iter()
        .enumerate()
        .map(|(i, &v)| Complex::new(v, v * 0.5 - i as f64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simd_row_kernels_bit_identical_across_backends(
        x in finite_vec(1..97),
        wr in -2.0..2.0f64,
        wi in -2.0..2.0f64,
        s in -3.0..3.0f64,
    ) {
        let top0: Vec<Complex> = complex_row(&x);
        let bottom0: Vec<Complex> = complex_row(&x).iter().map(|c| Complex::new(c.im, c.re)).collect();
        let w = Complex::new(wr, wi);
        let ct = Complex::new(wi, s);
        let cb = Complex::new(s, wr);
        let ints: Vec<i64> = x.iter().map(|&v| (v * 1e6) as i64).collect();

        for be in simd::available_backends() {
            // f64 butterfly.
            let (mut t_ref, mut b_ref) = (x.clone(), x.iter().map(|v| v + 1.0).collect::<Vec<_>>());
            let (mut t, mut b) = (t_ref.clone(), b_ref.clone());
            simd::butterfly_f64(Backend::Scalar, &mut t_ref, &mut b_ref);
            simd::butterfly_f64(be, &mut t, &mut b);
            prop_assert!(t.iter().zip(&t_ref).all(|(a, r)| a.to_bits() == r.to_bits()), "{be:?} f64 top");
            prop_assert!(b.iter().zip(&b_ref).all(|(a, r)| a.to_bits() == r.to_bits()), "{be:?} f64 bottom");

            // i64 butterfly.
            let (mut t_ref, mut b_ref) = (ints.clone(), ints.iter().map(|v| v ^ 3).collect::<Vec<_>>());
            let (mut t, mut b) = (t_ref.clone(), b_ref.clone());
            simd::butterfly_i64(Backend::Scalar, &mut t_ref, &mut b_ref);
            simd::butterfly_i64(be, &mut t, &mut b);
            prop_assert!(t == t_ref && b == b_ref, "{be:?} i64");

            // Complex butterflies (plain / scaled / post-multiplied).
            let (mut t_ref, mut b_ref) = (top0.clone(), bottom0.clone());
            let (mut t, mut b) = (top0.clone(), bottom0.clone());
            simd::butterfly_complex(Backend::Scalar, &mut t_ref, &mut b_ref, w);
            simd::butterfly_complex(be, &mut t, &mut b, w);
            prop_assert!(bits_eq(&t, &t_ref) && bits_eq(&b, &b_ref), "{be:?} complex");

            let (mut t_ref, mut b_ref) = (top0.clone(), bottom0.clone());
            let (mut t, mut b) = (top0.clone(), bottom0.clone());
            simd::butterfly_complex_scale(Backend::Scalar, &mut t_ref, &mut b_ref, w, s);
            simd::butterfly_complex_scale(be, &mut t, &mut b, w, s);
            prop_assert!(bits_eq(&t, &t_ref) && bits_eq(&b, &b_ref), "{be:?} complex scale");

            let (mut t_ref, mut b_ref) = (top0.clone(), bottom0.clone());
            let (mut t, mut b) = (top0.clone(), bottom0.clone());
            simd::butterfly_complex_postmul(Backend::Scalar, &mut t_ref, &mut b_ref, w, ct, cb);
            simd::butterfly_complex_postmul(be, &mut t, &mut b, w, ct, cb);
            prop_assert!(bits_eq(&t, &t_ref) && bits_eq(&b, &b_ref), "{be:?} complex postmul");

            // Row multiplies.
            let mut dst_ref = vec![Complex::new(0.0, 0.0); top0.len()];
            let mut dst = dst_ref.clone();
            simd::cmul_rows(Backend::Scalar, &mut dst_ref, &top0, w);
            simd::cmul_rows(be, &mut dst, &top0, w);
            prop_assert!(bits_eq(&dst, &dst_ref), "{be:?} cmul_rows");

            simd::cmul_scale_rows(Backend::Scalar, &mut dst_ref, &top0, w, s);
            simd::cmul_scale_rows(be, &mut dst, &top0, w, s);
            prop_assert!(bits_eq(&dst, &dst_ref), "{be:?} cmul_scale_rows");

            let mut row_ref = top0.clone();
            let mut row = top0.clone();
            simd::cmul_inplace(Backend::Scalar, &mut row_ref, w);
            simd::cmul_inplace(be, &mut row, w);
            prop_assert!(bits_eq(&row, &row_ref), "{be:?} cmul_inplace");

            let mut row_ref = top0.clone();
            let mut row = top0.clone();
            simd::cmul_scale_inplace(Backend::Scalar, &mut row_ref, w, s);
            simd::cmul_scale_inplace(be, &mut row, w, s);
            prop_assert!(bits_eq(&row, &row_ref), "{be:?} cmul_scale_inplace");

            let mut row_ref = top0.clone();
            let mut row = top0.clone();
            simd::scale_complex(Backend::Scalar, &mut row_ref, s);
            simd::scale_complex(be, &mut row, s);
            prop_assert!(bits_eq(&row, &row_ref), "{be:?} scale_complex");

            let mut f_ref = vec![0.0f64; x.len()];
            let mut f = f_ref.clone();
            simd::mul_rows_f64(Backend::Scalar, &mut f_ref, &x, s);
            simd::mul_rows_f64(be, &mut f, &x, s);
            prop_assert!(f.iter().zip(&f_ref).all(|(a, r)| a.to_bits() == r.to_bits()), "{be:?} mul_rows_f64");

            // Real <-> complex panel converters.
            let mut wide_ref = vec![Complex::new(9.0, 9.0); x.len()];
            let mut wide = wide_ref.clone();
            simd::widen_re(Backend::Scalar, &mut wide_ref, &x);
            simd::widen_re(be, &mut wide, &x);
            prop_assert!(bits_eq(&wide, &wide_ref), "{be:?} widen_re");

            let mut narrow_ref = vec![0.0f64; top0.len()];
            let mut narrow = narrow_ref.clone();
            simd::narrow_re(Backend::Scalar, &mut narrow_ref, &top0);
            simd::narrow_re(be, &mut narrow, &top0);
            prop_assert!(
                narrow.iter().zip(&narrow_ref).all(|(a, r)| a.to_bits() == r.to_bits()),
                "{be:?} narrow_re"
            );
        }
    }

    #[test]
    fn fwht_panel_bit_identical_across_backends(
        bits in 1u32..9,
        width in 1usize..40,
        seed in 0u64..1000,
    ) {
        let m = 1usize << bits;
        let panel0: Vec<f64> = (0..m * width)
            .map(|i| (((i as u64).wrapping_mul(seed * 2 + 1) % 2003) as f64) - 1000.0)
            .collect();
        let mut reference = panel0.clone();
        fwht_panel_with(Backend::Scalar, &mut reference, width);
        for be in simd::available_backends() {
            let mut panel = panel0.clone();
            fwht_panel_with(be, &mut panel, width);
            prop_assert!(
                panel.iter().zip(&reference).all(|(a, r)| a.to_bits() == r.to_bits()),
                "fwht panel diverges on {be:?} (m={m}, width={width})"
            );
        }
    }

    #[test]
    fn fft_panels_bit_identical_across_backends(
        n in 1usize..48,
        width in 1usize..10,
        seed in 0u64..1000,
    ) {
        let plan = FftPlan::new(n);
        let panel0: Vec<Complex> = (0..n * width)
            .map(|i| {
                let v = (((i as u64).wrapping_mul(seed + 3) % 1009) as f64) - 500.0;
                Complex::new(v, -v * 0.25)
            })
            .collect();
        let mut scratch = FftScratch::default();
        let mut fwd_ref = panel0.clone();
        plan.forward_panel_with(Backend::Scalar, &mut fwd_ref, width, &mut scratch);
        let mut inv_ref = fwd_ref.clone();
        plan.inverse_panel_with(Backend::Scalar, &mut inv_ref, width, &mut scratch);
        for be in simd::available_backends() {
            let mut fwd = panel0.clone();
            plan.forward_panel_with(be, &mut fwd, width, &mut scratch);
            prop_assert!(bits_eq(&fwd, &fwd_ref), "forward panel diverges on {be:?} (n={n}, width={width})");
            let mut inv = fwd;
            plan.inverse_panel_with(be, &mut inv, width, &mut scratch);
            prop_assert!(bits_eq(&inv, &inv_ref), "inverse panel diverges on {be:?} (n={n}, width={width})");
        }
    }
}

fn bits_eq(a: &[Complex], b: &[Complex]) -> bool {
    a.iter()
        .zip(b)
        .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}
