//! Experiment harness: regenerates every table and figure of the
//! evaluation (see EXPERIMENTS.md for the index and the paper-vs-measured
//! record).
//!
//! Each `eN` module runs one experiment and returns a [`table::Table`];
//! the `experiments` binary renders them as ASCII and JSON. Timing-type
//! experiments additionally have criterion benches under `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;
