//! Experiment runner: regenerates every table/figure of the evaluation.
//!
//! ```text
//! experiments [all | e1 e2 …] [--quick] [--json DIR]
//! ```

use htims_bench::experiments::{self, ALL};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| a.starts_with('e') && a.len() <= 3)
        .cloned()
        .collect();
    if ids.is_empty() || args.iter().any(|a| a == "all") {
        ids = ALL.iter().map(|s| s.to_string()).collect();
    }

    for id in &ids {
        let start = std::time::Instant::now();
        match experiments::run(id, quick) {
            Some(table) => {
                println!("{}", table.render());
                println!(
                    "[{} completed in {:.2}s]\n",
                    id,
                    start.elapsed().as_secs_f64()
                );
                if let Some(dir) = &json_dir {
                    std::fs::create_dir_all(dir).expect("create json dir");
                    let path = format!("{dir}/{id}.json");
                    let mut file = std::fs::File::create(&path).expect("create json file");
                    file.write_all(table.to_json().as_bytes())
                        .expect("write json");
                }
            }
            None => eprintln!("unknown experiment id: {id}"),
        }
    }
}
