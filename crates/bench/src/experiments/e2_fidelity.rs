//! E2 — reconstruction fidelity vs gate-defect level; ideal simplex inverse
//! vs the PNNL-style weighted inverse (figure: artifact level curves).
//!
//! With the trap enabled, the effective release kernel differs from the
//! design sequence through both gate imperfections and gap-dependent trap
//! fill. Deconvolving with the ideal sequence leaves cyclic "echo"
//! artifacts; the kernel-aware weighted inverse suppresses them. Shape
//! target: ≥10× artifact suppression at 10–20 % defect.

use super::common;
use crate::table::{f, Table};
use htims_core::acquisition::GateSchedule;
use htims_core::deconvolution::Deconvolver;
use htims_core::kernel::{deconvolve_with_kernel, estimate_kernel};
use htims_core::metrics::fidelity;
use ims_physics::Workload;

/// Runs E2.
pub fn run(quick: bool) -> Table {
    let degree = 8;
    let n = (1usize << degree) - 1;
    let defects: &[f64] = if quick {
        &[0.0, 0.2]
    } else {
        &[0.0, 0.05, 0.1, 0.2, 0.3]
    };
    let frames = if quick { 50 } else { 200 };
    let mz_bins = 200;

    let mut table = Table::new(
        "E2",
        "Reconstruction fidelity vs gate defect (continuous beam): simplex vs weighted inverse",
        &[
            "defect",
            "art(simplex)",
            "art(weighted-oracle)",
            "art(weighted-estimated)",
            "suppression",
        ],
    );

    let workload = Workload::single_calibrant();
    for (i, &defect) in defects.iter().enumerate() {
        let inst = common::instrument(n, mz_bins, defect);
        let schedule = GateSchedule::multiplexed(degree);
        // Trap off: isolates the gate-defect contribution (the trap's
        // gap-dependent release adds its own kernel mismatch — see E5).
        let data = common::acquire_with(
            &inst,
            &workload,
            &schedule,
            frames,
            false,
            0.0,
            300 + i as u64,
        );
        let truth = data.truth.total_ion_drift_profile();

        let simplex = Deconvolver::SimplexFast
            .deconvolve(&schedule, &data)
            .total_ion_drift_profile();
        let weighted = Deconvolver::Weighted { lambda: 1e-6 }
            .deconvolve(&schedule, &data)
            .total_ion_drift_profile();
        // The practical path: calibrate the kernel from a separate
        // calibrant acquisition at the same defect level, then deconvolve
        // this block with the *estimated* kernel.
        // Same acquisition mode as the data (continuous beam) — the kernel
        // being calibrated must be the kernel in effect.
        let calibrant = common::acquire_with(
            &inst,
            &Workload::single_calibrant(),
            &schedule,
            400,
            false,
            0.0,
            900 + i as u64,
        );
        let estimated_kernel = estimate_kernel(&calibrant, 1e-6);
        let estimated = deconvolve_with_kernel(&data.accumulated, &estimated_kernel, 1e-6)
            .total_ion_drift_profile();

        let fs = fidelity(&simplex, &truth, 0.01);
        let fw = fidelity(&weighted, &truth, 0.01);
        let fe = fidelity(&estimated, &truth, 0.01);
        table.row(vec![
            f(defect),
            f(fs.artifact_level),
            f(fw.artifact_level),
            f(fe.artifact_level),
            f(fs.artifact_level / fw.artifact_level.max(1e-12)),
        ]);
    }
    table.note("shape target: weighted inverse suppresses echo artifacts ≥10x at defect ≥0.1");
    table.note("'estimated' deconvolves with a kernel measured from a separate calibrant run (the practical path)");
    table
}
