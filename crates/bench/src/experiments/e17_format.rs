//! E17 — storage format comparison on a real acquired block (table).
//!
//! Source: entry 17 ("An efficient data format for mass spectrometry-based
//! proteomics"): XML-style text formats are inefficient for large numeric
//! MS datasets; a database-style binary layout yields multiple-fold gains
//! in storage size and data-retrieval time. Shape target: binary beats the
//! text baseline severalfold on size and an order of magnitude on decode
//! time; zero-run-sparse coding wins further on the (mostly empty) raw
//! accumulation maps.

use super::common;
use crate::table::{f, Table};
use htims_core::acquisition::GateSchedule;
use htims_core::format::StoredBlock;
use ims_physics::Workload;

/// Runs E17.
pub fn run(quick: bool) -> Table {
    let degree = 8;
    let n = (1usize << degree) - 1;
    let mz_bins = if quick { 500 } else { 2000 };
    let frames = if quick { 10 } else { 50 };

    let inst = common::instrument(n, mz_bins, 0.1);
    let workload = Workload::complex_digest(55, 5, 20.0);
    let schedule = GateSchedule::multiplexed(degree);
    // Background off: the raw accumulation map keeps its natural sparsity
    // (real systems threshold the baseline before storage for the same
    // reason).
    let data = common::acquire_with(&inst, &workload, &schedule, frames, true, 0.0, 1700);
    let block = StoredBlock {
        frames,
        bin_width_s: inst.bin_width_s,
        mz_min: inst.tof.mz_min,
        mz_max: inst.tof.mz_max,
        map: data.accumulated.clone(),
    };
    let occupancy = block.map.data().iter().filter(|&&v| v != 0.0).count() as f64
        / block.map.data().len() as f64;

    let mut table = Table::new(
        "E17",
        "Storage formats for one accumulated block (text vs dense vs sparse binary)",
        &[
            "format",
            "size (KiB)",
            "vs JSON",
            "encode (ms)",
            "decode (ms)",
        ],
    );
    table.note(format!(
        "block {} x {} cells, {:.1}% occupied",
        n,
        mz_bins,
        100.0 * occupancy
    ));

    let time = |f: &mut dyn FnMut()| -> f64 {
        let reps = 5;
        let start = std::time::Instant::now();
        for _ in 0..reps {
            f();
        }
        start.elapsed().as_secs_f64() * 1e3 / reps as f64
    };

    // JSON text baseline.
    let mut json = String::new();
    let enc_json = time(&mut || json = block.to_json());
    let json_size = json.len();
    let dec_json = time(&mut || {
        let _ = StoredBlock::from_json(&json).unwrap();
    });
    table.row(vec![
        "JSON text (XML-like baseline)".into(),
        f(json_size as f64 / 1024.0),
        "1.0x".into(),
        f(enc_json),
        f(dec_json),
    ]);

    // Dense binary.
    let mut dense = bytes::Bytes::new();
    let enc_dense = time(&mut || dense = block.to_binary_dense());
    let dec_dense = time(&mut || {
        let _ = StoredBlock::from_binary(dense.clone()).unwrap();
    });
    table.row(vec![
        "dense binary f32".into(),
        f(dense.len() as f64 / 1024.0),
        format!("{}x", f(json_size as f64 / dense.len() as f64)),
        f(enc_dense),
        f(dec_dense),
    ]);

    // Sparse binary.
    let mut sparse = bytes::Bytes::new();
    let enc_sparse = time(&mut || sparse = block.to_binary_sparse());
    let dec_sparse = time(&mut || {
        let _ = StoredBlock::from_binary(sparse.clone()).unwrap();
    });
    table.row(vec![
        "sparse binary (zero-run)".into(),
        f(sparse.len() as f64 / 1024.0),
        format!("{}x", f(json_size as f64 / sparse.len() as f64)),
        f(enc_sparse),
        f(dec_sparse),
    ]);

    // Thresholded block: sub-noise cells zeroed before storage (standard
    // archival practice — the noise floor carries no information).
    let sigma = ims_signal::stats::mad_sigma(block.map.data());
    let mut thresholded = block.clone();
    let cut = 3.0 * sigma;
    for v in thresholded.map.data_mut().iter_mut() {
        if *v < cut {
            *v = 0.0;
        }
    }
    let t_occupancy = thresholded.map.data().iter().filter(|&&v| v != 0.0).count() as f64
        / thresholded.map.data().len() as f64;
    let mut t_sparse = bytes::Bytes::new();
    let enc_t = time(&mut || t_sparse = thresholded.to_binary_sparse());
    let dec_t = time(&mut || {
        let _ = StoredBlock::from_binary(t_sparse.clone()).unwrap();
    });
    table.row(vec![
        format!("3σ-thresholded sparse ({:.1}% occ.)", 100.0 * t_occupancy),
        f(t_sparse.len() as f64 / 1024.0),
        format!("{}x", f(json_size as f64 / t_sparse.len() as f64)),
        f(enc_t),
        f(dec_t),
    ]);

    table.note("shape target: binary severalfold smaller and ~10x faster to decode than text; sparse wins further at low occupancy");
    table
}
