//! E5 — ion utilization / duty cycle by acquisition mode (figure: bar
//! chart series).
//!
//! Shape target (Clowers 2008 / Belov 2008, entries 24/26/46): signal
//! averaging uses <1 % of the beam; classic HT multiplexing ≈50 %; trap-
//! enhanced multiplexing exceeds 50 % (approaching the trap's release
//! efficiency); SA+trap recovers ions but concentrates them into one huge
//! space-charge-limited packet.

use super::common;
use crate::table::{f, Table};
use htims_core::acquisition::GateSchedule;
use ims_physics::Workload;

/// Runs E5.
pub fn run(quick: bool) -> Table {
    let degree = 8;
    let n = (1usize << degree) - 1;
    let frames = if quick { 3 } else { 10 };
    let mz_bins = 200;
    let workload = Workload::three_peptide_mix();

    let mut table = Table::new(
        "E5",
        "Ion utilization and packet charge by acquisition mode",
        &[
            "mode",
            "duty cycle",
            "ion utilization",
            "max packet (e)",
            "openings/frame",
        ],
    );

    let modes: Vec<(&str, GateSchedule, bool)> = vec![
        ("SA continuous", GateSchedule::signal_averaging(n), false),
        ("SA + trap", GateSchedule::signal_averaging(n), true),
        ("MP continuous", GateSchedule::multiplexed(degree), false),
        ("MP + trap", GateSchedule::multiplexed(degree), true),
    ];
    let mut modes = modes;
    if !quick {
        // Oversampled modified sequence needs its own instrument size.
        modes.push((
            "OS-MP (m=2) + trap",
            GateSchedule::oversampled(degree, 2),
            true,
        ));
    }

    for (i, (name, schedule, use_trap)) in modes.into_iter().enumerate() {
        let bins = schedule.len();
        let inst = common::instrument(bins, mz_bins, 0.1);
        let data = common::acquire_with(
            &inst,
            &workload,
            &schedule,
            frames,
            use_trap,
            0.0,
            500 + i as u64,
        );
        let openings = data
            .schedule_bits
            .iter()
            .enumerate()
            .filter(|&(k, &b)| b && !data.schedule_bits[(k + bins - 1) % bins])
            .count();
        table.row(vec![
            name.to_string(),
            f(schedule.duty_cycle()),
            f(data.ion_utilization),
            f(data.packet_charges),
            openings.to_string(),
        ]);
    }
    table.note("shape target: SA <1% utilization; MP ≈50%; trap-MP >50%; SA+trap packets >10^4 e (Coulomb-limited)");
    table
}
