//! E9 — ion funnel trap fill and automated gain control (figure: fill
//! curves; table: AGC operating points).
//!
//! Shape target (Ibrahim 2007 / AGC-IFT 2008, entries 23/45): the fill is
//! linear well below the ~3×10⁷-charge capacity and saturates smoothly at
//! it; AGC holds the released packet at the target across two orders of
//! source-current variation by servoing the accumulation time.

use crate::table::{f, Table};
use ims_physics::funnel::{AgcController, IonFunnelTrap};

/// Runs E9.
pub fn run(quick: bool) -> Table {
    let trap = IonFunnelTrap::default();
    let agc = AgcController::default();
    let rates: &[f64] = if quick {
        &[1e8, 3e9]
    } else {
        &[1e7, 1e8, 6e8, 3e9, 3e10]
    };

    let mut table = Table::new(
        "E9",
        "Trap fill linearity and AGC operating points",
        &[
            "charge rate (e/s)",
            "AGC accum (ms)",
            "released (e)",
            "target dev",
            "fill frac",
            "linearity",
        ],
    );

    for &rate in rates {
        let t = agc.accumulation_time(&trap, rate);
        let released = trap.released_charge(rate, t);
        let linear_prediction = trap.release_efficiency * rate * t;
        let fill = trap.fill_fraction(rate, t);
        table.row(vec![
            f(rate),
            f(t * 1e3),
            f(released),
            f((released - agc.target_charge) / agc.target_charge),
            f(fill),
            f(released / linear_prediction),
        ]);
    }
    table.note(format!(
        "capacity {} e, AGC target {} e; linearity = released / linear extrapolation",
        f(trap.capacity_charges),
        f(agc.target_charge)
    ));
    table.note("shape target: AGC holds released ≈ target over ≥2 orders of source current; weak beams clamp at max accumulation");
    table
}
