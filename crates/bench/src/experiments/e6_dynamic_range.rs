//! E6 — dynamic range / detection limit in a complex matrix (figure:
//! response curves; table: per-spike response and SNR).
//!
//! Spike-panel peptides are added to a tryptic digest matrix over four
//! orders of magnitude. Each spike is scored in its own extracted m/z
//! window (±1 Th at full TOF resolution): response = peak height above the
//! local baseline at the predicted drift time, SNR = response over the
//! robust noise of the same extracted mobilogram — matrix chemical noise
//! included, exactly as a real targeted measurement sees it.
//!
//! The comparison matches the published one (Belov 2008, entry 22): the
//! *dynamically multiplexed* instrument (trap + PRS gating + weighted
//! deconvolution) against the *conventional* IMS-TOF (continuous beam,
//! single gate pulse), at equal acquisition time, in the dilute
//! (detection-noise-limited) regime. Shape target: the multiplexed
//! instrument detects spikes ≥1 decade below the signal-averaging limit,
//! with ≥3 orders of near-linear (log-log slope ≈ 1) response.

use super::common;
use crate::table::{f, Table};
use htims_core::acquisition::GateSchedule;
use htims_core::analysis::build_library;
use htims_core::deconvolution::Deconvolver;
use htims_core::metrics::loglog_slope;
use ims_physics::{DriftTofMap, Workload};

/// Runs E6.
pub fn run(quick: bool) -> Table {
    let degree = 8;
    let n = (1usize << degree) - 1;
    // Dilute regime: matrix at 0.05 total abundance (~tens of nM), spikes
    // spanning four decades; the lowest sits below even the multiplexed
    // detection limit.
    let matrix_abundance = 0.05;
    let spikes: &[f64] = if quick {
        &[1e-3, 1e-1]
    } else {
        &[1e-4, 1e-3, 1e-2, 1e-1, 1.0]
    };
    let n_proteins = if quick { 3 } else { 8 };
    let frames = if quick { 40 } else { 150 };
    let mz_bins = if quick { 800 } else { 2000 };

    let spiked = Workload::spiked_digest(77, n_proteins, matrix_abundance, spikes);
    let inst = common::instrument(n, mz_bins, 0.1);
    let library = build_library(&inst, &spiked);

    let mut table = Table::new(
        "E6",
        "Dynamic range: spike response in a dilute digest matrix (dynamic MP vs conventional SA)",
        &[
            "spike abundance",
            "resp (SA)",
            "SNR (SA)",
            "resp (MP)",
            "SNR (MP)",
            "det SA",
            "det MP",
        ],
    );

    // One acquisition per mode, plus the *noise-free* matrix background
    // processed identically (the simulation knows the matrix forward model
    // exactly, so the matched blank carries no noise of its own and the
    // residual is spike + acquisition noise). SA runs the conventional
    // continuous-beam instrument; MP runs the dynamically multiplexed one.
    let matrix = Workload::complex_digest(77, n_proteins, matrix_abundance);
    let process = |schedule: &GateSchedule, method: &Deconvolver, trap: bool, seed: u64| {
        let run = common::acquire_with(&inst, &spiked, schedule, frames, trap, 0.05, seed);
        let blank_run = common::acquire_with(&inst, &matrix, schedule, frames, trap, 0.05, seed);
        let mut blank = run.clone();
        blank.accumulated = blank_run.expected.clone();
        blank.accumulated.scale(frames as f64 * run.adc_gain);
        (
            method.deconvolve(schedule, &run),
            method.deconvolve(schedule, &blank),
        )
    };
    let sa_schedule = GateSchedule::signal_averaging(n);
    let (sa_map, sa_bg) = process(&sa_schedule, &Deconvolver::Identity, false, 600);
    let mp_schedule = GateSchedule::multiplexed(degree);
    let (mp_map, mp_bg) = process(
        &mp_schedule,
        &Deconvolver::Weighted { lambda: 1e-6 },
        true,
        610,
    );

    let mut conc = Vec::new();
    let mut resp_mp_series = Vec::new();
    for (i, &level) in spikes.iter().enumerate() {
        let entry = library
            .iter()
            .filter(|e| e.name.starts_with(&format!("spike-{i}:")))
            .max_by(|a, b| a.abundance.partial_cmp(&b.abundance).unwrap());
        let Some(entry) = entry else { continue };

        let score = |map: &DriftTofMap, bg: &DriftTofMap| -> (f64, f64) {
            // Extracted mobilogram in the spike's ±1-bin m/z window, with
            // the deterministic matrix background subtracted.
            let lo_mz = entry.mz_bin.saturating_sub(1);
            let hi_mz = (entry.mz_bin + 1).min(map.mz_bins() - 1);
            let raw = map.drift_profile(lo_mz, hi_mz);
            let base = bg.drift_profile(lo_mz, hi_mz);
            let profile: Vec<f64> = raw.iter().zip(base.iter()).map(|(a, b)| a - b).collect();
            // Peak height: max within ±2 drift bins of the prediction,
            // above the local baseline (median of the window's trace).
            let lo = entry.drift_bin.saturating_sub(2);
            let hi = (entry.drift_bin + 3).min(profile.len());
            let apex = profile[lo..hi]
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            let baseline = ims_signal::stats::median(&profile);
            // Noise: robust σ of the trace excluding the peak region.
            let noise: Vec<f64> = profile
                .iter()
                .enumerate()
                .filter(|(i, _)| i.abs_diff(entry.drift_bin) > 6)
                .map(|(_, &v)| v)
                .collect();
            let sigma = ims_signal::stats::mad_sigma(&noise).max(1e-9);
            let response = apex - baseline;
            (response, response / sigma)
        };

        let (resp_sa, snr_sa) = score(&sa_map, &sa_bg);
        let (resp_mp, snr_mp) = score(&mp_map, &mp_bg);
        conc.push(level);
        resp_mp_series.push(resp_mp.max(1e-12));
        table.row(vec![
            f(level),
            f(resp_sa),
            f(snr_sa),
            f(resp_mp),
            f(snr_mp),
            (snr_sa >= 3.0).to_string(),
            (snr_mp >= 3.0).to_string(),
        ]);
    }
    if conc.len() >= 2 {
        table.note(format!(
            "MP log-log response slope = {} (1.0 = perfectly linear)",
            f(loglog_slope(&conc, &resp_mp_series))
        ));
    }
    table.note(
        "shape target: MP detects ≥1 decade lower spikes than SA; ≥3 orders near-linear range",
    );
    table
}
