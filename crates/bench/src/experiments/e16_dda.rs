//! E16 — DDA precursor selection: TopN vs exclusion lists over replicate
//! runs (table).
//!
//! Source: entry 13 ("Advanced Precursor Ion Selection Algorithms for
//! Increased Depth of Bottom-Up Proteomic Profiling"): exclusion of
//! previously fragmented precursors reduced replicate overlap to ~10 % and
//! yielded 29 % more peptides beyond the TopN saturation level; excluding
//! only *identified* precursors added a further ~10 %. Shape target: plain
//! TopN saturates across replicates; both exclusion policies keep digging;
//! identified-only exclusion ends highest.

use super::common;
use crate::table::{f, Table};
use htims_core::acquisition::GateSchedule;
use htims_core::dda::{run_series, DdaConfig, ExclusionPolicy};
use htims_core::deconvolution::Deconvolver;
use htims_core::lcms::LcSample;
use ims_physics::lc::LcGradient;
use ims_physics::peptide::{spike_peptides, synthetic_protein, tryptic_digest, Peptide};

/// Runs E16.
pub fn run(quick: bool) -> Table {
    let degree = 6;
    let n = (1usize << degree) - 1;
    let n_runs = if quick { 2 } else { 4 };
    let lc_steps = if quick { 8 } else { 16 };
    let frames = if quick { 4 } else { 8 };
    let n_proteins = if quick { 2 } else { 6 };

    let mut peptides: Vec<Peptide> = spike_peptides();
    for p in 0..n_proteins {
        peptides.extend(
            tryptic_digest(&synthetic_protein(90 + p as u64, 300), 0, 7)
                .into_iter()
                .take(12),
        );
    }
    // Wide abundance ladder so weak precursors need repeated attempts.
    let sample = LcSample {
        peptides: peptides
            .iter()
            .enumerate()
            .map(|(i, p)| {
                (
                    p.clone(),
                    10.0f64.powf(-2.0 * i as f64 / peptides.len() as f64),
                )
            })
            .collect(),
    };
    let inst = common::instrument(n, 800, 0.1);
    let schedule = GateSchedule::multiplexed(degree);
    let method = Deconvolver::Weighted { lambda: 1e-6 };
    let gradient = LcGradient::default();

    let mut table = Table::new(
        "E16",
        "DDA precursor selection: cumulative unique identifications over replicate runs",
        &[
            "policy",
            "run 1",
            "run 2",
            "run 3",
            "run 4",
            "events",
            "redundant",
        ],
    );

    // Rows 1–3: perfectly reproducible chromatography. Rows 4–5: ±25 s
    // retention drift between replicates — where the *aligned* exclusion
    // list earns its name.
    let cases: Vec<(&str, DdaConfig)> = vec![
        (
            "TopN (no exclusion)",
            DdaConfig {
                top_n: 3,
                policy: ExclusionPolicy::None,
                ..Default::default()
            },
        ),
        (
            "exclude fragmented",
            DdaConfig {
                top_n: 3,
                policy: ExclusionPolicy::Fragmented,
                ..Default::default()
            },
        ),
        (
            "exclude identified only",
            DdaConfig {
                top_n: 3,
                policy: ExclusionPolicy::Identified,
                ..Default::default()
            },
        ),
        (
            "drift 25s, unaligned list",
            DdaConfig {
                top_n: 3,
                policy: ExclusionPolicy::Fragmented,
                rt_drift_s: 25.0,
                exclusion_step_tol: 0,
                ..Default::default()
            },
        ),
        (
            "drift 25s, aligned list",
            DdaConfig {
                top_n: 3,
                policy: ExclusionPolicy::Fragmented,
                rt_drift_s: 25.0,
                exclusion_step_tol: 1,
                ..Default::default()
            },
        ),
    ];
    for (name, cfg) in cases {
        let mut rng = common::rng(1600);
        let series = run_series(
            &inst, &sample, &gradient, &schedule, &method, lc_steps, frames, &cfg, n_runs, &mut rng,
        );
        let mut row = vec![name.to_string()];
        for r in 0..4 {
            row.push(
                series
                    .cumulative_unique
                    .get(r)
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
        row.push(series.msms_events.to_string());
        row.push(f(series.redundant_fraction));
        table.row(row);
    }
    table.note(format!(
        "{} peptides over 2 orders of abundance; Top3 per LC step, {lc_steps} steps, {n_runs} replicates",
        peptides.len()
    ));
    table.note("shape target: TopN saturates; exclusion keeps digging (+~29%); identified-only exclusion ends highest");
    table.note("drift rows: the unaligned list re-fragments drifted precursors; alignment (±1 step) restores the gain");
    table
}
