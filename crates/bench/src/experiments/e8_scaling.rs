//! E8 — CPU software scaling with threads (table).
//!
//! The stand-in for the XD1's multi-Opteron software component: panels of
//! adjacent m/z columns are embarrassingly parallel (each worker runs the
//! row-vectorized panel kernel with its own scratch arena), so
//! deconvolution should scale nearly linearly until the memory system
//! saturates.
//!
//! Each row runs the unified pipeline graph with the scheduler-parallel
//! software backend pinned to a thread count; the per-block time is the deconvolve
//! stage's busy time from the instrumented `PipelineReport` (frame
//! generation and capture are metered separately, so they do not pollute
//! the scaling numbers).

use super::common;
use crate::table::{f, Table};
use htims_core::acquisition::GateSchedule;
use htims_core::hybrid::{run_hybrid_with_backend, FrameGenerator, HybridConfig};
use htims_core::pipeline::DeconvBackend;
use ims_physics::Workload;
use ims_prs::MSequence;

/// Runs E8.
pub fn run(quick: bool) -> Table {
    let degree = 9;
    let n = (1usize << degree) - 1;
    let mz_bins = if quick { 300 } else { 2000 };
    let frames = 5u64;
    let repeats = if quick { 1 } else { 3 };

    let inst = common::instrument(n, mz_bins, 0.1);
    let workload = Workload::three_peptide_mix();
    let schedule = GateSchedule::multiplexed(degree);
    let data = common::acquire_with(&inst, &workload, &schedule, frames, true, 0.02, 800);
    let seq = MSequence::new(degree);
    let gen = FrameGenerator::new(&data, &inst.adc, 800);
    let cfg = HybridConfig {
        frames,
        ..Default::default()
    };

    let max_threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4);
    // Always sweep 1..4 so the harness demonstrates scaling even on small
    // machines (oversubscribed rows are flagged by the efficiency column).
    let mut counts = vec![1usize, 2, 4];
    let mut t = 8;
    while t <= max_threads {
        counts.push(t);
        t *= 2;
    }
    if quick {
        counts.truncate(2);
    }

    let mut table = Table::new(
        "E8",
        "Software deconvolution scaling (fixed-point panel kernel, 511 x m/z block)",
        &["threads", "time (ms)", "speedup", "efficiency"],
    );
    table.note(format!(
        "block = {n} x {mz_bins}; machine has {max_threads} hardware threads; \
         rows run the unified pipeline graph with the scheduled backend"
    ));

    let mut t1 = None;
    for &threads in &counts {
        // Best of `repeats` to tame scheduler noise.
        let secs = (0..repeats)
            .map(|_| {
                let result = run_hybrid_with_backend(
                    &gen,
                    &seq,
                    &cfg,
                    DeconvBackend::software(&seq, cfg.deconv, threads),
                );
                result
                    .report
                    .stage("deconvolve")
                    .expect("deconvolve stage")
                    .busy_seconds
            })
            .fold(f64::INFINITY, f64::min);
        let base = *t1.get_or_insert(secs);
        let speedup = base / secs;
        table.row(vec![
            threads.to_string(),
            f(secs * 1e3),
            f(speedup),
            f(speedup / threads as f64),
        ]);
    }
    table.note("shape target: near-linear speedup at low counts, tapering at memory bandwidth");
    table
}
