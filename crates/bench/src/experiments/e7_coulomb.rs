//! E7 — IMS resolving power vs trapped charge (figure: R(q) curve).
//!
//! Shape target (Tolmachev et al. 2009, entry 44): resolving power is flat
//! up to ~10⁴ elementary charges per packet, then degrades progressively.

use crate::table::{f, Table};
use ims_physics::{DriftTube, IonSpecies};
use ims_signal::peaks::PeakFinder;

/// Runs E7.
pub fn run(quick: bool) -> Table {
    let charges: &[f64] = if quick {
        &[1e3, 1e6]
    } else {
        &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8]
    };
    let tube = DriftTube::default();
    let species = IonSpecies::new("calibrant", 1000.0, 2, 300.0, 1.0);
    let r_diff = tube.resolving_power(species.charge);

    let mut table = Table::new(
        "E7",
        "IMS resolving power vs packet charge (space-charge degradation)",
        &[
            "packet charge (e)",
            "R (model)",
            "R (measured peak)",
            "R/R_diff",
        ],
    );

    // High-resolution arrival histogram so the measured FWHM is reliable.
    let n_bins = 4096;
    let t = tube.drift_time_s(&species);
    let bin = 1.3 * t / n_bins as f64;
    for &q in charges {
        let model_r = tube.coulomb.degraded_resolving_power(r_diff, q);
        let dist = tube.arrival_distribution(&species, q, n_bins, bin);
        let finder = PeakFinder {
            window: 400, // broadened peaks span hundreds of fine bins
            ..Default::default()
        };
        let peaks = finder.find(&dist);
        let measured_r = peaks
            .first()
            .map(|p| p.centroid / p.fwhm)
            .unwrap_or(f64::NAN);
        table.row(vec![f(q), f(model_r), f(measured_r), f(model_r / r_diff)]);
    }
    table.note(format!("diffusion-limited R = {}", f(r_diff)));
    table.note("shape target: flat below 10^4 e, noticeable loss above 10^5 e");
    table
}
