//! E11 — ablation: naive MAC-array deconvolution vs the enhanced
//! fast-Hadamard core (table).
//!
//! The abstract calls the FPGA's algorithm "a more sophisticated
//! deconvolution algorithm based on a PNNL-developed enhancement". This
//! ablation quantifies what the enhancement buys on chip: identical output
//! bits, but `O(N log N)`-class cycles instead of `O(N²)` — the difference
//! between comfortable real-time margin and falling behind the instrument
//! at realistic sequence orders.

use crate::table::{f, Table};
use ims_fpga::deconv::{DeconvConfig, DeconvCore};
use ims_fpga::deconv_naive::{NaiveConfig, NaiveMacCore};
use ims_fpga::FpgaDevice;
use ims_prs::MSequence;

/// Runs E11.
pub fn run(quick: bool) -> Table {
    let degrees: &[u32] = if quick { &[8] } else { &[7, 8, 9, 10] };
    let mz_bins = 1000;
    let device = FpgaDevice::xc2vp50();

    let mut table = Table::new(
        "E11",
        "Ablation: naive O(N²) MAC core vs enhanced fast-Hadamard core (XC2VP50, 1000 m/z)",
        &[
            "N",
            "naive ms/block",
            "enhanced ms/block",
            "speedup",
            "naive rt margin",
            "enhanced rt margin",
            "bit-exact",
        ],
    );

    for &degree in degrees {
        let seq = MSequence::new(degree);
        let n = seq.len();
        let naive = NaiveMacCore::new(&seq, NaiveConfig::default());
        let enhanced = DeconvCore::new(&seq, DeconvConfig::default());

        // Verify output equality on a probe column.
        let probe: Vec<u64> = (0..n).map(|k| ((k * 97 + 13) % 5000) as u64).collect();
        let bit_exact = naive.deconvolve_column(&probe) == enhanced.deconvolve_column(&probe);

        let naive_s = naive.cycles_per_block(mz_bins) as f64 / device.clock_hz;
        let enhanced_s = enhanced.cycles_per_block(mz_bins) as f64 / device.clock_hz;
        // Real-time budget: one block = 50 frames of an N-bin IMS frame
        // whose duration scales with N at fixed bin width (0.39 ms/bin at
        // order 9 ≙ the default instrument).
        let frame_s = n as f64 * (0.02 / 511.0);
        let budget_s = 50.0 * frame_s;
        table.row(vec![
            n.to_string(),
            f(naive_s * 1e3),
            f(enhanced_s * 1e3),
            f(naive_s / enhanced_s),
            f(budget_s / naive_s),
            f(budget_s / enhanced_s),
            bit_exact.to_string(),
        ]);
    }
    table.note("same integer arithmetic, same rounding — outputs are identical bits");
    table.note("shape target: speedup grows ~N/log N; naive core loses real time by N = 1023");
    table
}
