//! E12 — dynamic multiplexing vs static acquisition under source
//! fluctuation (table/figure).
//!
//! Source: Belov et al. 2008 (entry 22): the dynamically multiplexed
//! approach "ensures correlation of the analyzer performance with an ion
//! source function and provides the improved dynamic range and sensitivity
//! throughout the experiment". Shape target: the dynamic controller holds
//! the SNR floor and quantitation stability across large source swings;
//! the static schedule loses SNR in the valleys.

use super::common;
use crate::table::{f, Table};
use htims_core::acquisition::GateSchedule;
use htims_core::deconvolution::Deconvolver;
use htims_core::dynamic::{response_cv, run_blocks, source_profile, GainControl};
use ims_physics::Workload;

/// Runs E12.
pub fn run(quick: bool) -> Table {
    let degree = 7;
    let n = (1usize << degree) - 1;
    let blocks = if quick { 4 } else { 10 };
    let swing = 0.7;

    let inst = common::instrument(n, 200, 0.1);
    let workload = Workload::single_calibrant().scaled(0.01);
    let schedule = GateSchedule::multiplexed(degree);
    let method = Deconvolver::SimplexFast;
    let monitor = {
        let lib = htims_core::analysis::build_library(&inst, &workload);
        let e = &lib[0];
        (e.drift_bin, e.mz_bin)
    };
    let profile = source_profile(blocks, swing, 12);
    let nominal_frames = 12u64;
    let nominal_dose =
        inst.landed_rate(&workload) * inst.frame_duration_s() * nominal_frames as f64;

    let mut table = Table::new(
        "E12",
        "Dynamic multiplexing vs static schedule under ±70 % source fluctuation",
        &[
            "policy",
            "min SNR",
            "max SNR",
            "response CV",
            "frames (min..max)",
            "max saturation",
        ],
    );

    for (name, control) in [
        (
            "static",
            GainControl::Static {
                frames: nominal_frames,
            },
        ),
        (
            "dynamic",
            GainControl::Dynamic {
                target_ions: nominal_dose,
                min_frames: 2,
                max_frames: 200,
            },
        ),
    ] {
        let mut rng = common::rng(1200);
        let results = run_blocks(
            &inst, &workload, &schedule, &method, monitor, &profile, control, &mut rng,
        );
        let min_snr = results.iter().map(|b| b.snr).fold(f64::INFINITY, f64::min);
        let max_snr = results.iter().map(|b| b.snr).fold(0.0f64, f64::max);
        let fmin = results.iter().map(|b| b.frames).min().unwrap();
        let fmax = results.iter().map(|b| b.frames).max().unwrap();
        let sat = results
            .iter()
            .map(|b| b.saturated_fraction)
            .fold(0.0f64, f64::max);
        table.row(vec![
            name.to_string(),
            f(min_snr),
            f(max_snr),
            f(response_cv(&results)),
            format!("{fmin}..{fmax}"),
            f(sat),
        ]);
    }
    table.note(format!("{blocks} blocks, source profile swing ±{swing}"));
    table.note("shape target: dynamic raises the SNR floor and narrows the SNR spread");
    table
}
