//! E10 — ADC vs TDC detection at multiplexed ion fluxes (table/figure:
//! response linearity curves).
//!
//! Shape target (Belov 2008, entry 22): the TDC saturates once more than
//! ~one ion per bin per extraction arrives (registering at most one hit),
//! while the ADC stays linear — the reason the dynamically-multiplexed
//! instrument switched to ADC detection.

use super::common;
use crate::table::{f, Table};
use ims_physics::detector::{AdcDetector, TdcDetector};

/// Runs E10.
pub fn run(quick: bool) -> Table {
    let fluxes: &[f64] = if quick {
        &[0.1, 5.0]
    } else {
        &[0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0]
    };
    let extractions = if quick { 500 } else { 2000 };
    let adc = AdcDetector {
        full_scale: 1e12,
        ..Default::default()
    };
    let tdc = TdcDetector::default();

    let mut table = Table::new(
        "E10",
        "Detector linearity vs per-extraction ion flux: ADC vs TDC",
        &[
            "ions/bin/extraction",
            "ADC resp (norm)",
            "TDC resp (norm)",
            "TDC loss",
        ],
    );

    let mut rng = common::rng(1000);
    // Zero-signal baseline: clamping negative noise at zero biases the raw
    // mean upward; subtract it the way a real acquisition subtracts its
    // dark baseline.
    let mut baseline = 0.0;
    for _ in 0..extractions {
        baseline += adc.digitize(&mut rng, &[0.0])[0];
    }
    baseline /= extractions as f64;

    for &flux in fluxes {
        // Monte-Carlo ADC response over `extractions` frames.
        let mut adc_total = 0.0;
        for _ in 0..extractions {
            adc_total += adc.digitize(&mut rng, &[flux])[0];
        }
        let adc_norm = (adc_total / extractions as f64 - baseline) / adc.expected_response(flux);

        let tdc_counts = tdc.digitize(&mut rng, &[flux], extractions)[0];
        // Normalised to the no-dead-time expectation η·λ·extractions.
        let tdc_ideal = tdc.efficiency * flux * extractions as f64;
        let tdc_norm = tdc_counts / tdc_ideal;

        table.row(vec![f(flux), f(adc_norm), f(tdc_norm), f(1.0 - tdc_norm)]);
    }
    table.note("responses normalised to the ideal linear detector (1.0 = linear)");
    table.note("shape target: ADC ≈1.0 throughout; TDC rolls off above ~0.5 ions/bin/extraction");
    table
}
