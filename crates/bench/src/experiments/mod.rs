//! The evaluation experiments (see EXPERIMENTS.md for the index).

pub mod e10_detectors;
pub mod e11_ablation;
pub mod e12_dynamic;
pub mod e13_msms;
pub mod e14_lcms;
pub mod e15_masscal;
pub mod e16_dda;
pub mod e17_format;
pub mod e18_variants;
pub mod e1_snr_gain;
pub mod e2_fidelity;
pub mod e3_throughput;
pub mod e4_resources;
pub mod e5_utilization;
pub mod e6_dynamic_range;
pub mod e7_coulomb;
pub mod e8_scaling;
pub mod e9_agc;
mod smoke_tests;

use crate::table::Table;

/// Runs one experiment by id ("e1".."e10"). `quick` shrinks workloads for
/// smoke testing.
pub fn run(id: &str, quick: bool) -> Option<Table> {
    Some(match id {
        "e1" => e1_snr_gain::run(quick),
        "e2" => e2_fidelity::run(quick),
        "e3" => e3_throughput::run(quick),
        "e4" => e4_resources::run(quick),
        "e5" => e5_utilization::run(quick),
        "e6" => e6_dynamic_range::run(quick),
        "e7" => e7_coulomb::run(quick),
        "e8" => e8_scaling::run(quick),
        "e9" => e9_agc::run(quick),
        "e10" => e10_detectors::run(quick),
        "e11" => e11_ablation::run(quick),
        "e12" => e12_dynamic::run(quick),
        "e13" => e13_msms::run(quick),
        "e14" => e14_lcms::run(quick),
        "e15" => e15_masscal::run(quick),
        "e16" => e16_dda::run(quick),
        "e17" => e17_format::run(quick),
        "e18" => e18_variants::run(quick),
        _ => return None,
    })
}

/// All experiment ids in order.
pub const ALL: [&str; 18] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18",
];

pub(crate) mod common {
    //! Shared setup helpers.

    use htims_core::acquisition::{acquire, AcquireOptions, AcquiredData, GateSchedule};
    use ims_physics::{Instrument, Workload};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Deterministic RNG for an experiment id and variant index.
    pub fn rng(tag: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0x2007_0000 ^ tag)
    }

    /// Instrument with the given drift bins, m/z bins, and gate defect.
    pub fn instrument(drift_bins: usize, mz_bins: usize, defect: f64) -> Instrument {
        let mut inst = Instrument::with_drift_bins(drift_bins);
        inst.tof.n_bins = mz_bins;
        inst.gate = ims_physics::gate::GateModel::with_defect_level(defect);
        inst
    }

    /// One acquisition with everything spelled out.
    #[allow(clippy::too_many_arguments)]
    pub fn acquire_with(
        inst: &Instrument,
        workload: &Workload,
        schedule: &GateSchedule,
        frames: u64,
        use_trap: bool,
        background: f64,
        seed: u64,
    ) -> AcquiredData {
        let mut r = rng(seed);
        acquire(
            inst,
            workload,
            schedule,
            frames,
            AcquireOptions {
                use_trap,
                background_mean: background,
            },
            &mut r,
        )
    }

    /// Finds the library entry whose name contains `needle`.
    pub fn library_position(
        inst: &Instrument,
        workload: &Workload,
        needle: &str,
    ) -> Option<(usize, usize)> {
        htims_core::analysis::build_library(inst, workload)
            .into_iter()
            .find(|e| e.name.contains(needle))
            .map(|e| (e.drift_bin, e.mz_bin))
    }
}
