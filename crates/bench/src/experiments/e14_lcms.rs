//! E14 — LC-IMS-MS vs direct infusion: peak capacity and identification
//! coverage (table).
//!
//! Source: entry 19 ("An LC-IMS-MS Platform Providing Increased Dynamic
//! Range for High-Throughput Proteomic Studies"): a 15-minute RPLC
//! gradient in front of the multiplexed IMS-TOF multiplies the separation
//! peak capacity and recovers species that co-drift / share m/z in direct
//! infusion. Shape target: at equal total acquisition time, the LC-fronted
//! run identifies more unique peptide ions than infusion of the same
//! digest, with peak capacity ≈ LC × IMS.

use super::common;
use crate::table::{f, Table};
use htims_core::acquisition::{AcquireOptions, GateSchedule};
use htims_core::deconvolution::Deconvolver;
use htims_core::lcms::{run_infusion, run_lcms, LcRunConfig, LcSample};
use ims_physics::lc::LcGradient;
use ims_physics::peptide::{spike_peptides, synthetic_protein, tryptic_digest, Peptide};

/// Runs E14.
pub fn run(quick: bool) -> Table {
    let degree = 7;
    let n = (1usize << degree) - 1;
    let n_proteins = if quick { 3 } else { 10 };
    let lc_steps = if quick { 8 } else { 24 };
    let frames_per_step = if quick { 8 } else { 15 };

    // Sample: spike panel + several digested proteins, with a 3-orders
    // abundance ladder (the dynamic-range point of the platform paper).
    let mut peptides: Vec<Peptide> = spike_peptides();
    for p in 0..n_proteins {
        peptides.extend(
            tryptic_digest(&synthetic_protein(40 + p as u64, 250), 0, 7)
                .into_iter()
                .take(10),
        );
    }
    let n_peptides = peptides.len();
    let sample = LcSample {
        peptides: peptides
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let abundance = 10.0f64.powf(-3.0 * i as f64 / n_peptides as f64);
                (p.clone(), abundance)
            })
            .collect(),
    };
    // The bottom-third abundance peptides are the dynamic-range probes.
    let weak_cutoff = 10.0f64.powf(-2.0);

    let inst = common::instrument(n, if quick { 500 } else { 1200 }, 0.1);
    let schedule = GateSchedule::multiplexed(degree);
    let method = Deconvolver::Weighted { lambda: 1e-6 };
    let gradient = LcGradient::default();
    let options = AcquireOptions::default();
    let total_frames = lc_steps as u64 * frames_per_step;

    let lc_cfg = LcRunConfig {
        lc_steps,
        frames_per_step,
        ..Default::default()
    };
    let mut rng = common::rng(1400);
    let lc = run_lcms(
        &inst, &sample, &gradient, &schedule, &method, &lc_cfg, options, &mut rng,
    );
    let mut rng = common::rng(1401);
    let infusion = run_infusion(
        &inst,
        &sample,
        &schedule,
        &method,
        total_frames,
        &lc_cfg,
        options,
        &mut rng,
    );

    // Denominators: total ion species and the weak (bottom-decades) ones.
    let all_species: Vec<(String, f64)> = sample
        .peptides
        .iter()
        .flat_map(|(p, a)| p.to_species(*a))
        .map(|sp| (sp.name, sp.abundance))
        .collect();
    let n_species = all_species.len();
    let weak_names: std::collections::BTreeSet<&str> = all_species
        .iter()
        .filter(|(_, a)| *a < weak_cutoff)
        .map(|(n, _)| n.as_str())
        .collect();
    let count_weak = |unique: &[String]| {
        unique
            .iter()
            .filter(|u| weak_names.contains(u.as_str()))
            .count()
    };

    let ims_capacity = 25.0; // drift peak capacity of the order-7 separation
    let mut table = Table::new(
        "E14",
        "LC-IMS-MS vs direct infusion at equal acquisition time (3-orders abundance ladder)",
        &[
            "platform",
            "unique ions ID'd",
            "weak ions ID'd",
            "features",
            "sep. peak capacity",
        ],
    );
    table.row(vec![
        "direct infusion IMS-MS".into(),
        format!("{}/{}", infusion.unique_count(), n_species),
        format!(
            "{}/{}",
            count_weak(&infusion.unique_species),
            weak_names.len()
        ),
        infusion.total_features.to_string(),
        f(ims_capacity),
    ]);
    table.row(vec![
        format!("LC-IMS-MS ({lc_steps} steps)"),
        format!("{}/{}", lc.unique_count(), n_species),
        format!("{}/{}", count_weak(&lc.unique_species), weak_names.len()),
        lc.total_features.to_string(),
        f(lc.lc_peak_capacity * ims_capacity),
    ]);
    table.note(format!(
        "{n_peptides} peptides → {n_species} ion species over 3 orders of abundance; {total_frames} total frames each"
    ));
    table.note("shape target: LC front end recovers the weak species infusion misses and multiplies peak capacity");
    table
}
