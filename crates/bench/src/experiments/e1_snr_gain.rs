//! E1 — SNR gain of multiplexing over signal averaging vs PRS order
//! (figure: SNR gain curve).
//!
//! Equal acquisition time (same number of IMS frames); continuous beam (no
//! trap) isolates the pure multiplex advantage. Shape target (Belov 2007,
//! entry 26): ~10× SNR at order 9; theory for shot-noise-limited data is
//! `√N / 2`.

use super::common;
use crate::table::{f, Table};
use htims_core::acquisition::GateSchedule;
use htims_core::deconvolution::Deconvolver;
use htims_core::metrics::species_snr;
use ims_physics::Workload;

/// Runs E1.
pub fn run(quick: bool) -> Table {
    let degrees: &[u32] = if quick { &[6, 7] } else { &[6, 7, 8, 9] };
    let frames = if quick { 60 } else { 200 };
    let mz_bins = if quick { 200 } else { 400 };

    let mut table = Table::new(
        "E1",
        "SNR gain: multiplexed vs signal averaging (equal time, continuous beam, dilute sample)",
        &["order n", "N", "SNR(SA)", "SNR(MP)", "gain", "theory √N/2"],
    );

    // The multiplex advantage exists in the detection-noise-limited regime:
    // dilute the µM-scale mix to ~nM so a single SA gate opening admits
    // only a handful of ions (the regime of the companion papers).
    let workload = Workload::three_peptide_mix().scaled(2e-3);
    for (i, &degree) in degrees.iter().enumerate() {
        let n = (1usize << degree) - 1;
        let inst = common::instrument(n, mz_bins, 0.05);
        let target = common::library_position(&inst, &workload, "RPPGFSPFR/2+")
            .expect("calibrant in library");

        let sa_schedule = GateSchedule::signal_averaging(n);
        let sa = common::acquire_with(
            &inst,
            &workload,
            &sa_schedule,
            frames,
            false,
            0.05,
            100 + i as u64,
        );
        let sa_map = Deconvolver::Identity.deconvolve(&sa_schedule, &sa);
        let snr_sa = species_snr(&sa_map, target.0, target.1, 3);

        let mp_schedule = GateSchedule::multiplexed(degree);
        let mp = common::acquire_with(
            &inst,
            &workload,
            &mp_schedule,
            frames,
            false,
            0.05,
            200 + i as u64,
        );
        let mp_map = Deconvolver::SimplexFast.deconvolve(&mp_schedule, &mp);
        let snr_mp = species_snr(&mp_map, target.0, target.1, 3);

        table.row(vec![
            degree.to_string(),
            n.to_string(),
            f(snr_sa),
            f(snr_mp),
            f(snr_mp / snr_sa.max(1e-9)),
            f((n as f64).sqrt() / 2.0),
        ]);
    }
    table.note("shape target: gain grows ~√N/2; ≈10x at n=9 (Belov et al. 2007)");
    table
}
