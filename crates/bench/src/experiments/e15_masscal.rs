//! E15 — regression mass recalibration (table).
//!
//! Source: entry 47 ("Elimination of systematic mass measurement errors …
//! using regression models and a priori partial knowledge of the sample
//! content"). Shape target: regression removes the systematic bias
//! entirely (σ shrinks 1.2–2×), and multi-replicate averaging shrinks the
//! remaining random error further (1.8–3.7× overall).

use super::common;
use crate::table::{f, Table};
use htims_core::acquisition::GateSchedule;
use htims_core::analysis::find_features;
use htims_core::calibration::{
    average_replicates, collect_measurements, rms_error_ppm, MassMeasurement, MassRecalibration,
};
use htims_core::deconvolution::Deconvolver;
use ims_physics::tof::MassError;
use ims_physics::Workload;

/// Runs E15.
pub fn run(quick: bool) -> Table {
    let degree = 7;
    let n = (1usize << degree) - 1;
    let replicates = if quick { 2 } else { 3 };
    let frames = if quick { 30 } else { 80 };

    // Fine m/z grid (0.05 Th bins) so the TOF peak spans > 1 bin and the
    // centroid resolves sub-100-ppm shifts.
    let mut inst = common::instrument(n, if quick { 16_000 } else { 40_000 }, 0.1);
    // The injected miscalibration to be discovered and removed.
    let injected = MassError {
        offset_ppm: 300.0,
        slope_ppm: 150.0,
    };
    inst.tof.mass_error = injected;

    let mut workload = Workload::three_peptide_mix();
    workload
        .species
        .extend(Workload::complex_digest(31, 3, 10.0).species);
    let schedule = GateSchedule::multiplexed(degree);
    let method = Deconvolver::Weighted { lambda: 1e-6 };

    // Replicate acquisitions → calibrant measurement sets.
    let mut runs = Vec::new();
    for r in 0..replicates {
        let data = common::acquire_with(&inst, &workload, &schedule, frames, true, 0.02, 1500 + r);
        let map = method.deconvolve(&schedule, &data);
        let features = find_features(&map, 10.0);
        runs.push(collect_measurements(
            &inst, &workload, &map, &features, 3, 10, 8,
        ));
    }
    let first = &runs[0];

    let mut table = Table::new(
        "E15",
        "Mass recalibration: regression + multi-replicate averaging",
        &["stage", "calibrants", "RMS error (ppm)", "improvement"],
    );
    let raw_rms = rms_error_ppm(first, None);
    table.row(vec![
        "raw (miscalibrated)".into(),
        first.len().to_string(),
        f(raw_rms),
        "1.0x".into(),
    ]);

    // Robust regression: contaminated/mismatched calibrants are trimmed
    // the way the paper restricts itself to confident identifications.
    let (cal, mask) = MassRecalibration::fit_robust(first, 3.0, 4).expect("enough calibrants");
    let inliers: Vec<MassMeasurement> = first
        .iter()
        .zip(mask.iter())
        .filter(|(_, &keep)| keep)
        .map(|(m, _)| *m)
        .collect();
    let cal_rms = rms_error_ppm(&inliers, Some(&cal));
    table.row(vec![
        "after robust regression".into(),
        format!(
            "{} ({} trimmed)",
            inliers.len(),
            first.len() - inliers.len()
        ),
        f(cal_rms),
        format!("{}x", f(raw_rms / cal_rms)),
    ]);

    // Averaging over replicates, restricted to the inlier species.
    let inlier_keys: std::collections::BTreeSet<u64> =
        inliers.iter().map(|m| m.true_mz.to_bits()).collect();
    let filtered_runs: Vec<Vec<MassMeasurement>> = runs
        .iter()
        .map(|r| {
            r.iter()
                .filter(|m| inlier_keys.contains(&m.true_mz.to_bits()))
                .copied()
                .collect()
        })
        .collect();
    let averaged = average_replicates(&filtered_runs, Some(&cal));
    let avg_rms = rms_error_ppm(&averaged, None);
    table.row(vec![
        format!("+ averaging ({replicates} runs)"),
        averaged.len().to_string(),
        f(avg_rms),
        format!("{}x", f(raw_rms / avg_rms)),
    ]);

    table.note(format!(
        "injected: offset {} ppm, slope {} ppm/kTh; fitted: offset {} ppm, slope {} ppm/kTh",
        injected.offset_ppm,
        injected.slope_ppm,
        f(cal.offset_ppm),
        f(cal.slope_ppm)
    ));
    table.note("shape target: regression removes the systematic bias; averaging shrinks the random floor further");
    table
}
