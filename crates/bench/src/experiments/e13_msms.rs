//! E13 — multiplexed CID: peptide identification by drift-profile
//! correlation (table).
//!
//! Source: Clowers et al. (entry 18): from a single multiplexed IMS
//! separation with all-precursor CID, 20 unique peptides of a BSA digest
//! were identified by correlating precursor and fragment drift profiles
//! and matching against in-silico fragments, at <1 % FDR. Shape target:
//! most sample peptides identified from one acquisition; decoy FDR far
//! below the naive (uncorrelated) assignment.

use super::common;
use crate::table::{f, Table};
use htims_core::acquisition::{AcquireOptions, GateSchedule};
use htims_core::deconvolution::Deconvolver;
use htims_core::msms::{acquire_msms, fdr, search, MsMsSample, MsMsSearch};
use ims_physics::fragment::CidCell;
use ims_physics::peptide::{spike_peptides, tryptic_digest, Peptide, UBIQUITIN};

/// Runs E13.
pub fn run(quick: bool) -> Table {
    let degree = 8;
    let n = (1usize << degree) - 1;
    let frames = if quick { 20 } else { 80 };

    // Sample: the spike panel + ubiquitin tryptic peptides (≥7 residues so
    // each has a usable fragment ladder).
    let mut peptides: Vec<Peptide> = spike_peptides();
    if !quick {
        peptides.extend(
            tryptic_digest(UBIQUITIN, 0, 7)
                .into_iter()
                .filter(|p| p.len() >= 7),
        );
    }
    let n_peptides = peptides.len();
    let sample = MsMsSample::uniform(peptides.clone(), 1.0);

    let mut inst = common::instrument(n, if quick { 900 } else { 1800 }, 0.1);
    inst.tof.mz_min = 100.0;
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = common::rng(1300);
    let data = acquire_msms(
        &inst,
        &sample,
        &CidCell::default(),
        &schedule,
        frames,
        AcquireOptions::default(),
        &mut rng,
    );
    let map = Deconvolver::Weighted { lambda: 1e-6 }.deconvolve(&schedule, &data);

    let mut table = Table::new(
        "E13",
        "Multiplexed CID: identification by precursor-fragment drift correlation",
        &[
            "setting",
            "targets ID'd",
            "decoys ID'd",
            "FDR",
            "mean frags",
            "mean corr",
        ],
    );

    for (name, cfg) in [
        (
            "correlation ≥0.9, ≥5 fragments",
            MsMsSearch {
                min_correlation: 0.9,
                min_fragments: 5,
                ..MsMsSearch::default()
            },
        ),
        ("correlation ≥0.8, ≥4 fragments", MsMsSearch::default()),
        (
            "no correlation gate (mass-only)",
            MsMsSearch {
                min_correlation: -1.0,
                ..MsMsSearch::default()
            },
        ),
    ] {
        let matches = search(&map, &inst, &peptides, &cfg, true);
        let targets: Vec<_> = matches.iter().filter(|m| !m.is_decoy).collect();
        let decoys = matches.len() - targets.len();
        let mean_frags = targets
            .iter()
            .map(|m| m.fragments_matched as f64)
            .sum::<f64>()
            / targets.len().max(1) as f64;
        let mean_corr =
            targets.iter().map(|m| m.mean_correlation).sum::<f64>() / targets.len().max(1) as f64;
        table.row(vec![
            name.to_string(),
            format!("{}/{}", targets.len(), n_peptides),
            decoys.to_string(),
            f(fdr(&matches)),
            f(mean_frags),
            f(mean_corr),
        ]);
    }
    table.note("one multiplexed acquisition; all precursors fragmented simultaneously");
    table.note("shape target: most peptides identified; drift-correlation gate keeps FDR low");
    table
}
