//! E18 — separating phosphopeptide localization variants by IMS (table).
//!
//! Source: entry 14 ("Ultrasensitive Identification of Localization
//! Variants of Modified Peptides Using IMS"): variants that co-elute in LC
//! and share MS¹ mass separate substantially in the drift tube even at a
//! moderate resolving power (~80) for the usual 2+ and 3+ ESI charge
//! states, and pre-heating the ions in the funnel trap adjusts the
//! conformer distribution for better separation. Shape target: a
//! substantial fraction of variant pairs resolve at R≈80–170; 3+ ions and
//! heated ions resolve more pairs.

use crate::table::{f, Table};
use ims_physics::modification::single_phospho_variants;
use ims_physics::peptide::Peptide;
use ims_physics::DriftTube;

/// Runs E18.
pub fn run(quick: bool) -> Table {
    // S/T/Y-rich tryptic peptides (kinase-substrate-like sequences).
    let peptides = [
        "LGSSEVEQVQLTAYR",
        "TFTDYAESVSQLK",
        "GSYSLTPGYSSPR",
        "VSTPTSPGSLRK",
        "AYSLFDTPSHSSK",
    ];
    let peptides: &[&str] = if quick { &peptides[..2] } else { &peptides };
    let tube = DriftTube::default();

    let mut table = Table::new(
        "E18",
        "Phosphopeptide localization variants resolved by drift-time separation",
        &[
            "condition",
            "variant pairs",
            "resolved",
            "fraction",
            "median |Δt|/FWHM",
        ],
    );

    for (label, charge, heating) in [
        ("2+, ambient trap", 2u32, 1.0),
        ("3+, ambient trap", 3u32, 1.0),
        ("2+, heated trap", 2u32, 1.6),
        ("3+, heated trap", 3u32, 1.6),
    ] {
        let mut pairs = 0usize;
        let mut resolved = 0usize;
        let mut separations = Vec::new();
        for seq in peptides {
            let base = Peptide::new(*seq);
            let variants = single_phospho_variants(&base);
            // Drift times and peak widths of every variant at this charge.
            let ions: Vec<(f64, f64)> = variants
                .iter()
                .map(|v| {
                    let sp = ims_physics::IonSpecies::new(
                        v.name(),
                        v.monoisotopic_mass(),
                        charge,
                        v.ccs_a2(charge, heating),
                        1.0,
                    );
                    let t = tube.drift_time_s(&sp);
                    let fwhm = t / tube.resolving_power(charge);
                    (t, fwhm)
                })
                .collect();
            for (i, a) in ions.iter().enumerate() {
                for b in ions.iter().skip(i + 1) {
                    pairs += 1;
                    let dt = (a.0 - b.0).abs();
                    let fwhm = a.1.max(b.1);
                    separations.push(dt / fwhm);
                    if dt > fwhm {
                        resolved += 1;
                    }
                }
            }
        }
        let median = ims_signal::stats::median(&separations);
        table.row(vec![
            label.to_string(),
            pairs.to_string(),
            resolved.to_string(),
            f(resolved as f64 / pairs.max(1) as f64),
            f(median),
        ]);
    }
    table.note(format!(
        "diffusion-limited R: {:.0} (2+), {:.0} (3+); resolved = |Δt| > FWHM",
        tube.resolving_power(2),
        tube.resolving_power(3)
    ));
    table.note("shape target: substantial fraction resolved at moderate R; 3+ and trap heating resolve more");
    table
}
