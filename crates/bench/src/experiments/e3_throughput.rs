//! E3 — deconvolution throughput: CPU software vs FPGA model, against the
//! real-time budget (table).
//!
//! One accumulated block (N = 511 drift × 1000 m/z) must be deconvolved
//! within its own acquisition period for the instrument to stream
//! indefinitely. Shape target: the modelled FPGA sustains real time with
//! margin; single-core software is marginal; multi-core software recovers
//! the margin (this is the XD1 story — the FPGA earns its keep).
//!
//! Every row drives the *same* unified pipeline graph (source → link →
//! accumulate → deconvolve), swapping only the deconvolution backend: the
//! scheduler-parallel software path timed from the deconvolve stage's busy time in the
//! `PipelineReport`, and the FPGA FWHT core timed from its modelled cycle
//! count at each device clock.

use super::common;
use crate::table::{f, Table};
use htims_core::acquisition::GateSchedule;
use htims_core::hybrid::{run_hybrid_with_backend, FrameGenerator, HybridConfig};
use htims_core::pipeline::DeconvBackend;
use ims_fpga::deconv::DeconvConfig;
use ims_fpga::FpgaDevice;
use ims_physics::Workload;
use ims_prs::MSequence;

/// Runs E3.
pub fn run(quick: bool) -> Table {
    let degree = 9;
    let n = (1usize << degree) - 1;
    let mz_bins = if quick { 200 } else { 1000 };
    let frames = if quick { 5 } else { 20 };

    let inst = common::instrument(n, mz_bins, 0.1);
    let workload = Workload::three_peptide_mix();
    let schedule = GateSchedule::multiplexed(degree);
    let data = common::acquire_with(&inst, &workload, &schedule, frames, true, 0.02, 31);
    let seq = MSequence::new(degree);
    let gen = FrameGenerator::new(&data, &inst.adc, 31);

    // The block budget: the accumulated block spans `frames` IMS frames.
    let block_period_s = frames as f64 * inst.frame_duration_s();

    let mut table = Table::new(
        "E3",
        "Deconvolution throughput per accumulated block (511 x m/z)",
        &["engine", "time/block (ms)", "blocks/s", "real-time margin"],
    );
    table.note(format!(
        "block = {} drift x {} m/z bins; acquisition period {:.1} ms; \
         all rows run the unified pipeline graph",
        n,
        mz_bins,
        block_period_s * 1e3
    ));

    let cfg = HybridConfig {
        frames,
        ..Default::default()
    };

    // Baseline row: the scalar per-column kernel (strided gather, fresh
    // allocations each column) on the same accumulated block — the path the
    // batched panel engine replaced. Same integer arithmetic, so the output
    // is bit-identical; only the schedule differs.
    {
        let core = ims_fpga::DeconvCore::new(&seq, cfg.deconv);
        let block: Vec<u64> = data
            .accumulated
            .data()
            .iter()
            .map(|&v| v.round() as u64)
            .collect();
        let secs = {
            let start = std::time::Instant::now();
            let mut out = vec![0i64; n * mz_bins];
            let mut column = vec![0u64; n];
            for mz in 0..mz_bins {
                for (d, c) in column.iter_mut().enumerate() {
                    *c = block[d * mz_bins + mz];
                }
                for (d, v) in core.deconvolve_column(&column).into_iter().enumerate() {
                    out[d * mz_bins + mz] = v;
                }
            }
            std::hint::black_box(out);
            start.elapsed().as_secs_f64()
        };
        table.row(vec![
            "software scalar-column (1 thr)".to_string(),
            f(secs * 1e3),
            f(1.0 / secs),
            f(block_period_s / secs),
        ]);
    }

    // Software rows: the pipeline with the software backend batching column
    // panels; time per block is the deconvolve stage's busy time from the
    // instrumented report.
    let mut counts = vec![1usize];
    if num_threads() > 1 {
        counts.push(num_threads());
    }
    for threads in counts {
        let result = run_hybrid_with_backend(
            &gen,
            &seq,
            &cfg,
            DeconvBackend::software(&seq, cfg.deconv, threads),
        );
        let secs = result
            .report
            .stage("deconvolve")
            .expect("deconvolve stage")
            .busy_seconds;
        table.row(vec![
            format!("software fixed-point ({threads} thr)"),
            f(secs * 1e3),
            f(1.0 / secs),
            f(block_period_s / secs),
        ]);
    }

    // FPGA rows: the same pipeline with the FWHT core; time per block from
    // the modelled cycle count at each device clock.
    for (device, cols, bfs) in [
        (FpgaDevice::xc2vp50(), 4usize, 4usize),
        (FpgaDevice::xc4vlx160(), 8, 8),
    ] {
        let fpga_cfg = HybridConfig {
            frames,
            deconv: DeconvConfig {
                parallel_columns: cols,
                butterflies_per_column: bfs,
                ..Default::default()
            },
            ..Default::default()
        };
        let result = run_hybrid_with_backend(
            &gen,
            &seq,
            &fpga_cfg,
            DeconvBackend::fpga(&seq, fpga_cfg.deconv),
        );
        let secs = result.deconv_cycles as f64 / device.clock_hz;
        table.row(vec![
            format!("FPGA model {} ({cols}col x {bfs}bf)", device.name),
            f(secs * 1e3),
            f(1.0 / secs),
            f(block_period_s / secs),
        ]);
    }

    table.note("shape target: FPGA model real-time with margin; 1-core software marginal");
    table
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}
