//! E3 — deconvolution throughput: CPU software vs FPGA model, against the
//! real-time budget (table).
//!
//! One accumulated block (N = 511 drift × 1000 m/z) must be deconvolved
//! within its own acquisition period for the instrument to stream
//! indefinitely. Shape target: the modelled FPGA sustains real time with
//! margin; single-core software is marginal; multi-core software recovers
//! the margin (this is the XD1 story — the FPGA earns its keep).

use super::common;
use crate::table::{f, Table};
use htims_core::acquisition::GateSchedule;
use htims_core::deconvolution::Deconvolver;
use htims_core::parallel::deconvolve_with_threads;
use ims_fpga::deconv::{DeconvConfig, DeconvCore};
use ims_fpga::FpgaDevice;
use ims_physics::Workload;
use ims_prs::MSequence;

/// Runs E3.
pub fn run(quick: bool) -> Table {
    let degree = 9;
    let n = (1usize << degree) - 1;
    let mz_bins = if quick { 200 } else { 1000 };
    let frames = if quick { 5 } else { 20 };

    let inst = common::instrument(n, mz_bins, 0.1);
    let workload = Workload::three_peptide_mix();
    let schedule = GateSchedule::multiplexed(degree);
    let data = common::acquire_with(&inst, &workload, &schedule, frames, true, 0.02, 31);

    // The block budget: the accumulated block spans `frames` IMS frames.
    let block_period_s = frames as f64 * inst.frame_duration_s();

    let mut table = Table::new(
        "E3",
        "Deconvolution throughput per accumulated block (511 x m/z)",
        &["engine", "time/block (ms)", "blocks/s", "real-time margin"],
    );
    table.note(format!(
        "block = {} drift x {} m/z bins; acquisition period {:.1} ms",
        n,
        mz_bins,
        block_period_s * 1e3
    ));

    // Software, 1 thread and all cores (deduplicated on 1-core machines).
    let method = Deconvolver::SimplexFast;
    let mut counts = vec![1usize];
    if num_threads() > 1 {
        counts.push(num_threads());
    }
    for threads in counts {
        let (_, secs) = deconvolve_with_threads(&method, &schedule, &data, threads);
        table.row(vec![
            format!("software simplex-fast ({threads} thr)"),
            f(secs * 1e3),
            f(1.0 / secs),
            f(block_period_s / secs),
        ]);
    }
    let weighted = Deconvolver::Weighted { lambda: 1e-6 };
    let (_, secs) = deconvolve_with_threads(&weighted, &schedule, &data, num_threads());
    table.row(vec![
        format!("software weighted-FFT ({} thr)", num_threads()),
        f(secs * 1e3),
        f(1.0 / secs),
        f(block_period_s / secs),
    ]);

    // FPGA model at two device clocks / parallelism points.
    let seq = MSequence::new(degree);
    for (device, cols, bfs) in [
        (FpgaDevice::xc2vp50(), 4usize, 4usize),
        (FpgaDevice::xc4vlx160(), 8, 8),
    ] {
        let core = DeconvCore::new(
            &seq,
            DeconvConfig {
                parallel_columns: cols,
                butterflies_per_column: bfs,
                ..Default::default()
            },
        );
        let cycles = core.cycles_per_block(mz_bins);
        let secs = cycles as f64 / device.clock_hz;
        table.row(vec![
            format!("FPGA model {} ({cols}col x {bfs}bf)", device.name),
            f(secs * 1e3),
            f(1.0 / secs),
            f(block_period_s / secs),
        ]);
    }

    table.note("shape target: FPGA model real-time with margin; 1-core software marginal");
    table
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}
