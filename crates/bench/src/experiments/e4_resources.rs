//! E4 — FPGA resource and bandwidth budget (table).
//!
//! Sweeps the capture/deconvolution design point (m/z bins retained on
//! chip, accumulator width, column parallelism) against the XD1's
//! Virtex-II Pro and the portability-target instrument board. Shape
//! target: full-m/z-resolution capture does NOT fit — on-chip m/z binning
//! is mandatory — and the design that fits also sustains real time.

use crate::table::{f, Table};
use ims_fpga::deconv::{DeconvConfig, DeconvCore};
use ims_fpga::{AccumulatorCore, DmaLink, FpgaDevice, MzBinner, ResourceReport};
use ims_prs::MSequence;

/// Runs E4.
pub fn run(quick: bool) -> Table {
    let degree = 9;
    let n = (1usize << degree) - 1;
    let seq = MSequence::new(degree);
    let frame_duration_s = 0.09; // default instrument frame
    let frames_per_block = 50;

    let mut table = Table::new(
        "E4",
        "FPGA resource & bandwidth budget (N = 511)",
        &[
            "device",
            "m/z bins",
            "acc bits",
            "cols",
            "BRAM used/avail",
            "DSP",
            "fits",
            "rt margin",
            "link util",
            "viable",
        ],
    );

    let points: &[(usize, u32, usize)] = if quick {
        &[(100, 32, 4), (2000, 32, 4)]
    } else {
        &[
            (50, 24, 2),
            (100, 32, 4),
            (200, 32, 4),
            (400, 32, 8),
            (1000, 32, 8),
            (2000, 32, 8),
        ]
    };

    for device in [FpgaDevice::xc2vp50(), FpgaDevice::instrument_board()] {
        for &(mz_bins, acc_bits, cols) in points {
            let acc = AccumulatorCore::new(n, mz_bins, acc_bits);
            let deconv = DeconvCore::new(
                &seq,
                DeconvConfig {
                    parallel_columns: cols,
                    butterflies_per_column: 4,
                    ..Default::default()
                },
            );
            let report = ResourceReport::evaluate(
                &device,
                &acc,
                &deconv,
                &DmaLink::rapidarray(),
                frames_per_block,
                frame_duration_s,
            );
            table.row(vec![
                device.name.clone(),
                mz_bins.to_string(),
                acc_bits.to_string(),
                cols.to_string(),
                format!("{}/{}", report.bram_used, report.bram_available),
                format!("{}/{}", report.dsp_used, report.dsp_available),
                report.fits.to_string(),
                f(report.realtime_margin),
                f(report.link_utilization),
                report.viable().to_string(),
            ]);
        }
    }
    // The design answer: full-resolution input with an on-chip 2000→100
    // binner in front of the accumulator.
    for device in [FpgaDevice::xc2vp50(), FpgaDevice::instrument_board()] {
        let binner = MzBinner::uniform(2000, 100);
        let acc = AccumulatorCore::new(n, 100, 32);
        let deconv = DeconvCore::new(
            &seq,
            DeconvConfig {
                parallel_columns: 4,
                butterflies_per_column: 4,
                ..Default::default()
            },
        );
        let report = ResourceReport::evaluate_with_binner(
            &device,
            &binner,
            &acc,
            &deconv,
            &DmaLink::rapidarray(),
            frames_per_block,
            frame_duration_s,
        );
        table.row(vec![
            device.name.clone(),
            "2000→100 (binned)".into(),
            "32".into(),
            "4".into(),
            format!("{}/{}", report.bram_used, report.bram_available),
            format!("{}/{}", report.dsp_used, report.dsp_available),
            report.fits.to_string(),
            f(report.realtime_margin),
            f(report.link_utilization),
            report.viable().to_string(),
        ]);
    }
    table.note(
        "shape target: ≤~200 m/z bins fits the XD1 FPGA; 2000 bins needs host-side processing",
    );
    table.note("the binned rows take the full-resolution stream and fold it on chip — the deployable design");
    table
}
