//! Smoke tests: the cheap experiments must run end to end in quick mode.
//! (The heavier ones are exercised by the `experiments` binary and CI-style
//! release runs; running them in debug-mode unit tests would be too slow.)

#[cfg(test)]
mod tests {
    use crate::experiments;

    fn run(id: &str) {
        let table = experiments::run(id, true).unwrap_or_else(|| panic!("unknown id {id}"));
        assert!(!table.rows.is_empty(), "{id} produced no rows");
        assert_eq!(table.id.to_lowercase(), id);
        // Render must not panic and should contain the id.
        assert!(table.render().contains(&table.id));
        // JSON must round-trip through the Table type.
        let back: crate::table::Table = serde_json::from_str(&table.to_json()).unwrap();
        assert_eq!(back.rows.len(), table.rows.len());
    }

    #[test]
    fn e4_resources_smoke() {
        run("e4");
    }

    #[test]
    fn e7_coulomb_smoke() {
        run("e7");
    }

    #[test]
    fn e9_agc_smoke() {
        run("e9");
    }

    #[test]
    fn e10_detectors_smoke() {
        run("e10");
    }

    #[test]
    fn e11_ablation_smoke() {
        run("e11");
    }

    #[test]
    fn e18_variants_smoke() {
        run("e18");
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(experiments::run("e999", true).is_none());
        assert!(experiments::run("nonsense", true).is_none());
    }

    #[test]
    fn all_ids_are_known() {
        for id in experiments::ALL {
            // Just resolve, don't run the heavy ones.
            assert!(
                id.starts_with('e'),
                "experiment id {id} must start with 'e'"
            );
        }
        assert_eq!(experiments::ALL.len(), 18);
    }
}
