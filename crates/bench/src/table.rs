//! Result tables: the uniform output format of every experiment.

use serde::{Deserialize, Serialize};

/// One experiment's result table (a paper table or the series behind a
/// figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id, e.g. "E1".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (pre-formatted strings).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (shape targets, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row; panics if the width differs from the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders the table as aligned ASCII.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// JSON form (for EXPERIMENTS.md regeneration).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serialises")
    }
}

/// Formats a float with 3 significant-ish decimals.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0", "demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let s = t.render();
        assert!(s.contains("E0"));
        assert!(s.contains("long-header"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn json_round_trip() {
        let mut t = Table::new("E1", "x", &["c"]);
        t.row(vec!["v".into()]);
        let j = t.to_json();
        let back: Table = serde_json::from_str(&j).unwrap();
        assert_eq!(back.rows[0][0], "v");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1.23456), "1.235");
        assert!(f(12345.0).contains('e'));
        assert!(f(0.0001).contains('e'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("E", "t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
