//! `ims_obs` overhead microbench: what instrumentation costs on the hot
//! path.
//!
//! The contract the pipeline relies on (see `crates/obs/src/trace.rs`):
//! a span with the tracer *disabled* is one relaxed atomic load — cheap
//! enough to leave in per-frame and per-panel loops unconditionally. This
//! bench pins that, alongside the always-on costs: a histogram record
//! (bucket index + five relaxed RMWs) and a counter increment, plus the
//! enabled-span cost for scale (timestamp + thread-local buffer push).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    // The headline number: disabled-tracer span cost. Expected ~1 ns —
    // one atomic load and an inert guard.
    ims_obs::trace::set_enabled(false);
    group.bench_function("span_disabled", |b| {
        b.iter(|| {
            let _g = ims_obs::span_cat(black_box("bench"), black_box("span"));
        })
    });

    // Reference baseline for the line above: a bare atomic load.
    let flag = std::sync::atomic::AtomicBool::new(false);
    group.bench_function("atomic_load_baseline", |b| {
        b.iter(|| black_box(flag.load(std::sync::atomic::Ordering::Relaxed)))
    });

    // Enabled span: timestamp ×2 + thread-local push. Orders of magnitude
    // above disabled, which is why enablement is a run-time switch.
    ims_obs::trace::set_enabled(true);
    group.bench_function("span_enabled", |b| {
        b.iter(|| {
            let _g = ims_obs::span_cat(black_box("bench"), black_box("span"));
        })
    });
    ims_obs::trace::set_enabled(false);
    ims_obs::trace::clear();

    // Always-on metrics: histogram record and counter increment.
    let hist = ims_obs::metrics::histogram("bench.obs_overhead.hist");
    let mut v = 0u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_add(997);
            hist.record(black_box(v));
        })
    });

    let counter = ims_obs::metrics::counter("bench.obs_overhead.counter");
    group.bench_function("counter_incr", |b| b.iter(|| counter.incr()));

    // The macro path used at instrumentation sites (adds one OnceLock get).
    group.bench_function("static_histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_add(997);
            ims_obs::static_histogram!("bench.obs_overhead.static_hist").record(black_box(v));
        })
    });

    // Flight-recorder record: the healthy-path cost of the always-on
    // black box — one relaxed claim (fetch_add) plus three stores into a
    // per-worker ring slot. Must stay in the same decade as a histogram
    // record for the per-frame taps to remain unconditional.
    let rec = ims_obs::FlightRecorder::new(8, 1024);
    let label = rec.register("bench");
    let mut item = 0u64;
    group.bench_function("flight_record", |b| {
        b.iter(|| {
            item = item.wrapping_add(1);
            rec.record(
                black_box(label),
                ims_obs::FlightKind::FrameIngress,
                black_box(item),
            );
        })
    });

    // The same record through the pipeline's optional tap: the cost when
    // the recorder is cloned into a stage meter (Arc deref + record).
    let tap: Option<(ims_obs::FlightRecorder, u16)> = Some((rec.clone(), label));
    group.bench_function("flight_record_via_tap", |b| {
        b.iter(|| {
            item = item.wrapping_add(1);
            if let Some((r, l)) = &tap {
                r.record(
                    black_box(*l),
                    ims_obs::FlightKind::FrameEgress,
                    black_box(item),
                );
            }
        })
    });

    // The profiler's dispatch cost: the one relaxed store a worker pays
    // per task to publish its current (session, stage, method) tag. This
    // is the entire profiler-off *and* profiler-on hot-path overhead —
    // sampling happens on the background thread — so it must stay in the
    // atomic-load decade for the scheduler to tag unconditionally.
    let guard = ims_obs::prof::register_worker();
    let tag = ims_obs::prof::intern_tag("bench", "obs_overhead", "prof");
    group.bench_function("prof_tag_store", |b| {
        b.iter(|| guard.slot().set_tag(black_box(tag)))
    });
    drop(guard);

    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
