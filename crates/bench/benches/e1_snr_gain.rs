//! E1 bench: wall cost of the full acquire→deconvolve pipeline per mode —
//! the time behind each point of the SNR-gain figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htims_core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims_core::deconvolution::Deconvolver;
use ims_physics::{Instrument, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_pipeline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let workload = Workload::three_peptide_mix();
    for degree in [7u32, 9] {
        let n = (1usize << degree) - 1;
        let mut inst = Instrument::with_drift_bins(n);
        inst.tof.n_bins = 200;
        for (label, schedule, method) in [
            (
                "signal-averaging",
                GateSchedule::signal_averaging(n),
                Deconvolver::Identity,
            ),
            (
                "multiplexed",
                GateSchedule::multiplexed(degree),
                Deconvolver::SimplexFast,
            ),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &schedule, |b, schedule| {
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(1);
                    let data = acquire(
                        &inst,
                        &workload,
                        schedule,
                        10,
                        AcquireOptions::default(),
                        &mut rng,
                    );
                    black_box(method.deconvolve(schedule, &data))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
