//! E8 bench: thread scaling of the software deconvolution backend, driven
//! through the unified pipeline graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htims_core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims_core::hybrid::{run_hybrid_with_backend, FrameGenerator, HybridConfig};
use htims_core::pipeline::DeconvBackend;
use ims_physics::{Instrument, Workload};
use ims_prs::MSequence;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let degree = 9u32;
    let n = (1usize << degree) - 1;
    let mut inst = Instrument::with_drift_bins(n);
    inst.tof.n_bins = 800;
    let workload = Workload::three_peptide_mix();
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let data = acquire(
        &inst,
        &workload,
        &schedule,
        5,
        AcquireOptions::default(),
        &mut rng,
    );
    let seq = MSequence::new(degree);
    let gen = FrameGenerator::new(&data, &inst.adc, 8);
    let cfg = HybridConfig {
        frames: 2,
        ..Default::default()
    };

    let max = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4);
    let mut group = c.benchmark_group("e8_thread_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let mut threads = 1usize;
    while threads <= max {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(run_hybrid_with_backend(
                    &gen,
                    &seq,
                    &cfg,
                    DeconvBackend::software(&seq, cfg.deconv, t),
                ))
            })
        });
        threads *= 2;
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
