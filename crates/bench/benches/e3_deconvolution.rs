//! E3 bench: per-block deconvolution throughput — software methods vs the
//! integer FPGA-model datapath (same block as the E3 table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htims_core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims_core::deconvolution::Deconvolver;
use htims_core::hybrid::{run_hybrid, FrameGenerator, HybridConfig};
use ims_fpga::deconv::{DeconvConfig, DeconvCore};
use ims_physics::{Instrument, Workload};
use ims_prs::MSequence;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_block(c: &mut Criterion) {
    let degree = 9u32;
    let n = (1usize << degree) - 1;
    let mz_bins = 200;
    let mut inst = Instrument::with_drift_bins(n);
    inst.tof.n_bins = mz_bins;
    let workload = Workload::three_peptide_mix();
    let schedule = GateSchedule::multiplexed(degree);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let data = acquire(
        &inst,
        &workload,
        &schedule,
        10,
        AcquireOptions::default(),
        &mut rng,
    );

    let mut group = c.benchmark_group("e3_block_deconvolution");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for method in [
        Deconvolver::SimplexFast,
        Deconvolver::Weighted { lambda: 1e-6 },
    ] {
        group.bench_with_input(
            BenchmarkId::new("software", method.name()),
            &method,
            |b, m| b.iter(|| black_box(m.deconvolve(&schedule, &data))),
        );
    }

    // Integer FPGA-model datapath (the functional simulation itself).
    let seq = MSequence::new(degree);
    let block: Vec<u64> = data
        .accumulated
        .data()
        .iter()
        .map(|&v| v.round() as u64)
        .collect();
    group.bench_function("fpga_model_integer_path", |b| {
        b.iter(|| {
            let mut core = DeconvCore::new(&seq, DeconvConfig::default());
            black_box(core.deconvolve_block(&block, mz_bins))
        })
    });

    // The whole unified pipeline graph, end to end (threaded executor):
    // source → link → accumulate → deconvolve over a small batch.
    let gen = FrameGenerator::new(&data, &inst.adc, 3);
    let cfg = HybridConfig {
        frames: 2,
        ..Default::default()
    };
    group.bench_function("unified_pipeline_threaded", |b| {
        b.iter(|| black_box(run_hybrid(&gen, &seq, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_block);
criterion_main!(benches);
