//! Batched deconvolution engine bench: the scalar per-column reference vs
//! the panel engine, by panel width and block size (same kernels as the
//! `htims bench deconv` CLI report, under the criterion harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htims_core::acquisition::{acquire, AcquireOptions, GateSchedule};
use htims_core::deconvolution::{apply_columnwise, Deconvolver};
use htims_core::BatchDeconvolver;
use ims_physics::{Instrument, Workload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_panels(c: &mut Criterion) {
    let degree = 9u32;
    let n = (1usize << degree) - 1;
    let workload = Workload::three_peptide_mix();
    let schedule = GateSchedule::multiplexed(degree);
    let method = Deconvolver::Weighted { lambda: 1e-6 };

    let mut group = c.benchmark_group("deconv_batch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    for mz_bins in [250usize, 1000] {
        let mut inst = Instrument::with_drift_bins(n);
        inst.tof.n_bins = mz_bins;
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let data = acquire(
            &inst,
            &workload,
            &schedule,
            10,
            AcquireOptions::default(),
            &mut rng,
        );

        let solver = method.column_solver(&schedule, &data);
        group.bench_with_input(
            BenchmarkId::new("weighted_scalar_column", mz_bins),
            &mz_bins,
            |b, _| b.iter(|| black_box(apply_columnwise(&data.accumulated, |col| solver(col)))),
        );

        for width in [8usize, 32, 128] {
            let engine = BatchDeconvolver::new(&method, &schedule, &data).with_panel_width(width);
            group.bench_with_input(
                BenchmarkId::new(format!("weighted_batched_p{width}"), mz_bins),
                &mz_bins,
                |b, _| b.iter(|| black_box(engine.deconvolve_map(&data.accumulated))),
            );
        }

        let engine = BatchDeconvolver::new(&method, &schedule, &data);
        group.bench_with_input(
            BenchmarkId::new("weighted_batched_parallel", mz_bins),
            &mz_bins,
            |b, _| b.iter(|| black_box(engine.deconvolve_map_parallel(&data.accumulated))),
        );

        let simplex = BatchDeconvolver::new(&Deconvolver::SimplexFast, &schedule, &data);
        group.bench_with_input(
            BenchmarkId::new("simplex_batched", mz_bins),
            &mz_bins,
            |b, _| b.iter(|| black_box(simplex.deconvolve_map(&data.accumulated))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_panels);
criterion_main!(benches);
